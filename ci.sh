#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full workspace test suite.
# No network access is required — all dependencies are path deps inside
# the repository (see compat/).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== incremental cache: warm/cold equivalence =="
cargo test -q --test incremental
cargo test -q --test properties warm_cache_compiles_are_invisible

echo "== compile service: bounded soak (seeded, zero lost, dedup floor) =="
# The soak drives the seeded many-client load through ccm2-serve with a
# deliberately tight queue and store budget: every request must get a
# response (shed ones via the retry protocol), identical in-flight
# requests must dedupe above a floor, and the shared store must never
# exceed its byte budget. The stress test adds eviction-pressure
# byte-equivalence against direct compiles.
cargo test -q -p ccm2-serve --test soak
cargo test -q -p ccm2-serve --test stress

echo "== fault injection: survival matrix smoke =="
# Every injected fault must degrade exactly one stream: the property
# tests sample the site x strategy x executor matrix, and the reproduce
# driver runs the full 56-cell matrix (zero hangs, zero aborts,
# non-faulted streams byte-identical to the fault-free run).
cargo test -q --test faults
cargo run -q --release -p ccm2-bench --bin reproduce -- faults

echo "== self-healing recovery: retry, watchdog edges, kill/restart =="
# Supervised stream retry must converge transient faults to the
# fault-free bytes and degrade persistent ones; watchdog edges (exact
# deadline, wedge-release vs late-signal race) must hold on both
# executors; the service must survive kill/restart with its snapshot
# journal (no lost requests, LRU order intact, torn images quarantined).
cargo test -q --test recover
cargo test -q --test watchdog
cargo test -q -p ccm2-serve --test restart
cargo run -q --release -p ccm2-bench --bin reproduce -- recover

echo "== compile fabric: fleet equivalence, failover, delta restart =="
# The sharded fleet must be observationally identical to one standalone
# service (byte-identical objects, same diagnostics) across every shard
# width AND across a seeded mid-stream shard kill; the reproduce driver
# additionally pins the failover drill (zero lost admitted requests)
# and the delta restart economics (journal tail < full CCM2SNAP image).
cargo test -q -p ccm2-fabric
cargo test -q --test fabric
cargo run -q --release -p ccm2-bench --bin reproduce -- fabric

echo "== chaosnet: seeded network-fault drill matrix =="
# The hardened control plane must survive the full chaos lifecycle on
# three seeds x both transports: partition -> heartbeat eviction ->
# serve through the hole -> heal -> warm rejoin -> cold join (>= 50%
# warm hits on the first post-join batch) -> crash-restart from durable
# CCM2RLOG replica logs -> failover absorb of the restored parked ops.
# Zero lost admitted requests, zero hangs, byte-identity to standalone.
# The split-brain drills add router-loss cells on the same seed x
# transport grid: router kill, router partition, and dueling routers.
# No epoch may ever see two live leaders and the fleet's durable
# membership must converge to one image.
cargo test -q --test chaosnet
cargo run -q --release -p ccm2-bench --bin reproduce -- chaosnet
grep -q '"schema":"ccm2-bench/chaosnet/v2"' BENCH_chaosnet.json
grep -q '"lost":0' BENCH_chaosnet.json
grep -q '"mismatched":0' BENCH_chaosnet.json
grep -q '"hangs":0' BENCH_chaosnet.json
grep -q '"split_brain"' BENCH_chaosnet.json
grep -q '"two_leader_epochs":0' BENCH_chaosnet.json
grep -q '"divergent_membership":0' BENCH_chaosnet.json

echo "== editor sessions: convergence, coalescing, error-unit determinism =="
# The watch loop must converge every seeded edit session — broken
# intermediates included — to the byte-identical output of a cold
# compile of the final sources, and a syntax error must degrade exactly
# the edited stream. The determinism guard pins the degraded output
# across the sequential compiler, all four DKY strategies, and both
# executors; the reproduce driver gates the seeded 100-edit session
# (warm-hit ratio >= 90%, aggregate check time below aggregate cold).
cargo test -q -p ccm2-watch
cargo test -q --test watch
cargo test -q --test watch error_unit_is_byte_identical_across_seq_dky_and_executors
cargo run -q --release -p ccm2-bench --bin reproduce -- watch

echo "== wire protocol: format-version bump guard =="
# Bumping WIRE_FORMAT_VERSION requires a matching cross-version
# rejection test (skewed frames must be refused, not misdecoded).
wver=$(grep -o 'WIRE_FORMAT_VERSION: u32 = [0-9]*' crates/fabric/src/wire.rs | grep -o '[0-9]*$')
if ! grep -q "wire_version_${wver}_mismatch_rejected" crates/fabric/src/wire.rs; then
  echo "WIRE_FORMAT_VERSION is ${wver} but crates/fabric/src/wire.rs has no" >&2
  echo "wire_version_${wver}_mismatch_rejected test — add one for the new version." >&2
  exit 1
fi

echo "== replica logs: format-version bump guard =="
# Same rule for the persisted CCM2RLOG replica-log images: bumping
# RLOG_FORMAT_VERSION requires a matching quarantine test (foreign
# versions must be quarantined and fall back, never misdecoded).
rver=$(grep -o 'RLOG_FORMAT_VERSION: u32 = [0-9]*' crates/fabric/src/durable.rs | grep -o '[0-9]*$')
if ! grep -q "rlog_version_${rver}_mismatch_quarantined" crates/fabric/src/durable.rs; then
  echo "RLOG_FORMAT_VERSION is ${rver} but crates/fabric/src/durable.rs has no" >&2
  echo "rlog_version_${rver}_mismatch_quarantined test — add one for the new version." >&2
  exit 1
fi

echo "== membership images: format-version bump guard =="
# And for the persisted CCM2MBRS membership images that routers use to
# mirror the ring and fail over: bumping MBRS_FORMAT_VERSION requires a
# matching quarantine test.
mver=$(grep -o 'MBRS_FORMAT_VERSION: u32 = [0-9]*' crates/fabric/src/durable.rs | grep -o '[0-9]*$')
if ! grep -q "mbrs_version_${mver}_mismatch_quarantined" crates/fabric/src/durable.rs; then
  echo "MBRS_FORMAT_VERSION is ${mver} but crates/fabric/src/durable.rs has no" >&2
  echo "mbrs_version_${mver}_mismatch_quarantined test — add one for the new version." >&2
  exit 1
fi

echo "== interprocedural lock-order analysis: static deadlock prediction =="
# Cross-procedure re-LOCK and lock-order-cycle predictions must be
# byte-identical to the sequential reference under every DKY strategy and
# both executors, survive warm re-analysis from the summary cache, and
# the reproduce driver must show zero static false negatives against the
# runtime wait-for-graph drills.
cargo test -q --test lockorder
cargo run -q --release -p ccm2-bench --bin reproduce -- locks

echo "== incremental cache: format-version bump guard =="
# Any change to the on-disk entry encoding must bump FORMAT_VERSION, and
# every bump must come with a mismatch-invalidation test for the new
# version (old entries must degrade to misses, not decode wrongly).
ver=$(grep -o 'FORMAT_VERSION: u32 = [0-9]*' crates/incr/src/entry.rs | grep -o '[0-9]*$')
if ! grep -q "version_${ver}_mismatch_invalidates" crates/incr/src/entry.rs; then
  echo "FORMAT_VERSION is ${ver} but crates/incr/src/entry.rs has no" >&2
  echo "version_${ver}_mismatch_invalidates test — add one for the new version." >&2
  exit 1
fi

echo "== lock summaries: format-version bump guard =="
# Same rule for the interprocedural lock-summary wire format: bumping
# SUMMARY_FORMAT_VERSION requires a matching mismatch-invalidation test
# (forged future-version blobs must read as cache misses).
sver=$(grep -o 'SUMMARY_FORMAT_VERSION: u32 = [0-9]*' crates/analysis/src/summary.rs | grep -o '[0-9]*$')
if ! grep -q "summary_version_${sver}_mismatch_invalidates" crates/analysis/src/summary.rs; then
  echo "SUMMARY_FORMAT_VERSION is ${sver} but crates/analysis/src/summary.rs has no" >&2
  echo "summary_version_${sver}_mismatch_invalidates test — add one for the new version." >&2
  exit 1
fi

echo "CI OK"
