#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full workspace test suite.
# No network access is required — all dependencies are path deps inside
# the repository (see compat/).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "CI OK"
