//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal benchmark harness with the criterion API its benches use:
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Timings are measured
//! with `std::time::Instant` and reported as a median per iteration.

use std::time::{Duration, Instant};

/// Hints how expensive batch setup is relative to the routine. The shim
/// runs every batch per-iteration regardless.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small input: setup is cheap.
    SmallInput,
    /// Large input: setup is expensive.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Prevents the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            iters_per_sample: 1,
            timings: Vec::new(),
        }
    }

    /// Runs `routine` repeatedly, timing each sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.timings
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Runs `routine` over fresh inputs from `setup`, timing only the
    /// routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.timings.is_empty() {
            return Duration::ZERO;
        }
        self.timings.sort();
        self.timings[self.timings.len() / 2]
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration; the shim accepts and ignores
    /// criterion's flags (`--bench`, filters) for drop-in compatibility.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: self.default_samples,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        run_one(&name.into(), self.default_samples, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    let med = b.median();
    println!("bench {label:<48} median {med:>12.3?} ({samples} samples)");
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut b = Bencher::new(4);
        let mut made = 0;
        b.iter_batched(
            || {
                made += 1;
                vec![made]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(made, 4);
        assert!(b.median() >= Duration::ZERO);
    }
}
