//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of the `parking_lot` API it actually uses, implemented
//! over `std::sync`. Semantics match `parking_lot` where they differ from
//! `std`: locks are not poisoned by panics (a panicking task must not take
//! the whole compiler down with `PoisonError`), and guards are obtained
//! without a `Result`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed; `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable compatible with [`Mutex`].
///
/// `wait` takes `&mut MutexGuard` (the parking_lot signature) rather than
/// consuming the guard as `std` does.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses; returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        res.timed_out()
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all parked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().expect("waiter");
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
