//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest used by its tests: the `proptest!` macro,
//! `ProptestConfig { cases, .. }`, `prop_assert!` / `prop_assert_eq!`,
//! integer-range strategies, a regex-subset string strategy, and
//! `collection::vec`.
//!
//! Cases are generated (not shrunk) from an rng seeded by the test name,
//! so a failure reproduces deterministically on every run.

use std::fmt;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Knobs for a `proptest!` block. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused by the shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property within a generated case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Value generators usable on the left of `in` inside `proptest!`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// String literals act as regex-subset strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        regex::generate(self, rng)
    }
}

mod regex {
    //! A small regex *generator*: char classes, literals, escapes, and the
    //! quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`. Enough for patterns like
    //! `"[ -~\n]{0,400}"` and `"[A-Za-z][A-Za-z0-9]{0,8}"`.

    use rand::rngs::SmallRng;
    use rand::Rng;

    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    pub fn generate(pattern: &str, rng: &mut SmallRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for a in &atoms {
            let n = rng.gen_range(a.min..=a.max);
            for _ in 0..n {
                out.push(a.choices[rng.gen_range(0..a.choices.len())]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1);
                    i = next;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![unescape(chars[i - 1])]
                }
                c => {
                    assert!(
                        !matches!(c, '(' | ')' | '|' | '.'),
                        "regex shim: unsupported metachar {c:?} in {pattern:?}"
                    );
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i);
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while chars[i] != ']' {
            let lo = if chars[i] == '\\' {
                i += 2;
                unescape(chars[i - 1])
            } else {
                i += 1;
                chars[i - 1]
            };
            if chars[i] == '-' && chars[i + 1] != ']' {
                let hi = if chars[i + 1] == '\\' {
                    i += 3;
                    unescape(chars[i - 1])
                } else {
                    i += 2;
                    chars[i - 1]
                };
                set.extend(lo..=hi);
            } else {
                set.push(lo);
            }
        }
        (set, i + 1)
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("regex shim: unterminated {quantifier}")
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("quantifier lo"),
                        hi.parse().expect("quantifier hi"),
                    ),
                    None => {
                        let n = body.parse().expect("quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size bound for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of another strategy's values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Drives one `proptest!`-declared test: owns the case rng.
    pub struct TestRunner {
        /// Rng shared by all strategies within the test.
        pub rng: SmallRng,
    }

    impl TestRunner {
        /// Seeds the runner from the test's name, so each test has a
        /// stable, independent value stream.
        pub fn new_for_test(name: &str) -> TestRunner {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRunner {
                rng: SmallRng::seed_from_u64(h),
            }
        }
    }
}

/// Re-exported so `$crate` paths in the macros resolve.
pub use rand as __rand;

/// Declares property tests. Supports the subset of the real grammar used
/// here: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(arg in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new_for_test(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner.rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}\n  inputs: {}",
                            stringify!($name),
                            cfg.cases,
                            [$(format!("{} = {:?}", stringify!($arg), &$arg)),+].join(", "),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts within a `proptest!` body, failing the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Equality assertion within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        format!($($fmt)*),
                        l,
                        r
                    )));
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn int_ranges_in_bounds(a in 0u64..100, b in -5i64..5) {
            prop_assert!(a < 100);
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn regex_identifier_shape(w in "[A-Za-z][A-Za-z0-9]{0,8}") {
            prop_assert!(!w.is_empty() && w.len() <= 9, "bad length {}", w.len());
            prop_assert!(w.chars().next().expect("nonempty").is_ascii_alphabetic());
            prop_assert!(w.chars().all(|c| c.is_ascii_alphanumeric()));
        }

        #[test]
        fn regex_printable_class(s in "[ -~\n]{0,40}") {
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..4, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn same_name_gives_same_stream() {
        use crate::Strategy;
        let mut a = crate::test_runner::TestRunner::new_for_test("t");
        let mut b = crate::test_runner::TestRunner::new_for_test("t");
        for _ in 0..32 {
            assert_eq!(
                (0u64..1000).generate(&mut a.rng),
                (0u64..1000).generate(&mut b.rng)
            );
        }
    }
}
