//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `rand 0.8` API the workload generator and tests
//! actually use: `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` over integer ranges, and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic for
//! a given seed, which is all the callers rely on (the workload suite is
//! keyed by seed, never by a particular upstream value stream).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Rngs seedable from integers or byte arrays.
pub trait SeedableRng: Sized {
    /// Builds an rng whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 bits of mantissa, same construction as rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a uniform sampler over an inclusive interval.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi)`; panics if empty.
    fn sample_exclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<G: RngCore>(rng: &mut G, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = mul_shift(rng.next_u64(), span);
                (lo as i128 + off as i128) as $t
            }
            fn sample_exclusive<G: RngCore>(rng: &mut G, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = mul_shift(rng.next_u64(), span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Ranges that can produce a uniform sample of `T`.
///
/// Single generic impls (as in real rand) so `0..len` infers its integer
/// type from the surrounding context, e.g. slice indexing.
pub trait SampleRange<T> {
    /// Draws one sample from the range using `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Maps a uniform `u64` onto `[0, span)` via 128-bit multiply-shift.
fn mul_shift(x: u64, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    (x as u128 * span) >> 64
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast rng (xoshiro256++), mirroring `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&w));
            let x = rng.gen_range(4usize..=12);
            assert!((4..=12).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }
}
