//! Per-unit call-graph and lock-event extraction.
//!
//! While [`analyze_unit`](crate::analyze_unit) walks a unit for the
//! intra-procedural lints it *also* records, in source order, the two
//! kinds of events the interprocedural pass needs:
//!
//! * every `LOCK` entered, together with the stack of designators
//!   already held at that point ([`LockAcquire`]);
//! * every call made, together with the held stack at the call site
//!   ([`CallSite`]).
//!
//! One [`UnitSummary`] per unit is the whole interface between the
//! per-unit walk and the interprocedural fixpoint of
//! [`lockorder`](crate::lockorder) — compact enough to cache through
//! `ccm2-incr` (see [`summary`](crate::summary) for the wire encoding).
//!
//! Units are named by their dotted code name (`M`, `M.P`, `M.P.Q`), the
//! same spelling both drivers derive during declaration analysis, so the
//! summaries produced by the sequential and the concurrent compiler are
//! identical structures. Call sites store the *canonical designator
//! string* of the callee (`Q`, `Lib.P`, `pv^`); resolution to a unit —
//! innermost enclosing scope first, exactly Modula-2's visibility rule —
//! happens later, in the fixpoint, where the full unit set is known.

use ccm2_support::source::Span;

/// One `LOCK` statement entered by a unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockAcquire {
    /// Designators already held when this LOCK is entered (outermost
    /// first — the linter's lock stack at that point).
    pub held: Vec<String>,
    /// Canonical designator string of the mutex being acquired.
    pub lock: String,
    /// Span of the LOCK statement.
    pub span: Span,
}

/// One call made by a unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Designators held at the call site (outermost first).
    pub held: Vec<String>,
    /// Canonical designator string of the callee (`Q` for a bare name,
    /// `Lib.P` for a qualified one). Resolved against the unit map by
    /// the interprocedural pass; unresolvable callees are ignored there.
    pub callee: String,
    /// Span of the callee expression at the call site.
    pub span: Span,
}

/// Everything the interprocedural lock-order pass needs to know about
/// one unit: its identity and its lock/call events in source order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnitSummary {
    /// Dotted code name (`M` for the module unit, `M.P.Q` for a nested
    /// procedure) — globally unique within one compilation.
    pub unit: String,
    /// LOCKs entered, in source order.
    pub acquires: Vec<LockAcquire>,
    /// Calls made, in source order.
    pub calls: Vec<CallSite>,
    /// True when this summary was replayed from the incremental cache
    /// rather than recomputed. Never encoded; only feeds
    /// [`LockStats`](crate::lockorder::LockStats).
    pub from_cache: bool,
}

impl UnitSummary {
    /// An empty summary for the named unit.
    pub fn new(unit: impl Into<String>) -> UnitSummary {
        UnitSummary {
            unit: unit.into(),
            ..UnitSummary::default()
        }
    }

    /// Shifts every recorded span by `delta` (used by the incremental
    /// cache to rebase carve-relative spans at splice time).
    pub fn shift_spans(&mut self, delta: u32) {
        for a in &mut self.acquires {
            a.span = Span::new(a.span.lo + delta, a.span.hi + delta);
        }
        for c in &mut self.calls {
            c.span = Span::new(c.span.lo + delta, c.span.hi + delta);
        }
    }
}
