//! Source-level dataflow lints over the parsed AST — the *analysis*
//! phase added on top of the paper's Figure-5 task structure.
//!
//! The same per-unit pass ([`analyze_unit`]) runs in both compilers:
//!
//! * the **sequential** baseline runs it in phase order, once per unit
//!   (the module body plus every procedure), after declaration analysis;
//! * the **concurrent** driver spawns one `Analyze` task per unit
//!   (priority between statement analysis and code generation, §2.3.4)
//!   and merges the per-unit used-name sets through an [`AnalysisHub`].
//!
//! Diagnostics must be byte-identical between the two drivers under
//! every DKY strategy and worker count. Three rules make that hold:
//!
//! 1. **Units are identical.** Both compilers analyze exactly the main
//!    implementation module plus one unit per procedure; definition
//!    modules are never linted (their `FileId` registration order is
//!    scheduling-dependent in the concurrent driver, while every unit of
//!    `Main.mod` has `FileId` 0 in both).
//! 2. **Nested procedure bodies are opaque.** The concurrent splitter
//!    diverts procedure bodies to their own streams, so a parent unit
//!    sees [`ProcBody::Remote`](ccm2_syntax::ast::ProcBody) where the
//!    sequential parser sees `Local`. The walk therefore never descends
//!    into a nested procedure's body — only its heading's parameter and
//!    return types — and each body is linted by its own unit instead.
//! 3. **No diagnostic is emitted from unordered iteration.** Findings
//!    are produced by walking declarations, statements and imports in
//!    source order; hash sets are only ever *queried*.
//!
//! The lints:
//!
//! * **use-before-initialization** — a `VAR` local read on a path where
//!   no assignment is guaranteed to have happened;
//! * **unreachable code** — a statement following `RETURN`, `EXIT` or
//!   `RAISE` in the same statement list;
//! * **unused local declarations** — procedure-unit declarations whose
//!   name is never mentioned in the unit;
//! * **unused imports** — `IMPORT M` / `FROM M IMPORT x` in the main
//!   module where the name is mentioned in *no* unit (checked once, at
//!   the end, against the union of per-unit used sets);
//! * **LOCK discipline** — re-`LOCK` of a mutex designator already held,
//!   and a call into module `M` while holding a mutex `M.…` (the
//!   Modula-2+ self-deadlock pattern).
//!
//! On top of the per-unit lints, the walk records each unit's lock/call
//! events as a [`UnitSummary`] ([`callgraph`]); the drivers collect the
//! summaries through the [`AnalysisHub`] and run the interprocedural
//! lock-order pass ([`lockorder`]) once, after every unit. Summaries
//! cache through `ccm2-incr` in the [`summary`] wire format.

use std::collections::{BTreeSet, HashMap, HashSet};

use parking_lot::Mutex;

use ccm2_support::diag::{Diagnostic, DiagnosticSink};
use ccm2_support::intern::{Interner, Symbol};
use ccm2_support::source::FileId;
use ccm2_syntax::ast::{
    CaseLabel, Decl, Expr, ExprKind, Import, ProcHeading, SetElem, Stmt, StmtKind, TypeExpr,
    TypeExprKind,
};

pub mod callgraph;
pub mod lockorder;
pub mod summary;

pub use callgraph::{CallSite, LockAcquire, UnitSummary};
pub use lockorder::{lock_order_pass, LockStats};
pub use summary::{decode_summary, encode_summary, SummaryDecodeError, SUMMARY_FORMAT_VERSION};

/// What kind of compilation unit a lint pass covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnitKind {
    /// The main module's own declarations and body. Module-level
    /// declarations may be used from any procedure, so the unused-local
    /// lint is skipped (it would need cross-unit reasoning).
    Module,
    /// One procedure's declarations and body.
    Procedure,
}

/// The result of analyzing one unit.
#[derive(Debug, Default)]
pub struct UnitAnalysis {
    /// Every name mentioned in the unit (for the unused-import union and
    /// the unused-local check).
    pub used: HashSet<Symbol>,
    /// The unit's lock/call events for the interprocedural pass.
    pub summary: UnitSummary,
    /// Diagnostics reported.
    pub findings: usize,
    /// AST nodes visited (the `Work::Analyze` charge).
    pub work: u64,
}

/// Order-independent accumulator for the per-unit used-name sets and
/// unit summaries; the concurrent driver's `Analyze` tasks absorb into
/// it in whatever order they finish. Set union is commutative, and the
/// lock-order pass sorts the summaries by unit name before use, so the
/// absorption order never shows in the output.
#[derive(Debug, Default)]
pub struct AnalysisHub {
    used: Mutex<HashSet<Symbol>>,
    summaries: Mutex<Vec<UnitSummary>>,
}

impl AnalysisHub {
    /// Creates an empty hub.
    pub fn new() -> AnalysisHub {
        AnalysisHub::default()
    }

    /// Merges one unit's used-name set.
    pub fn absorb(&self, used: HashSet<Symbol>) {
        self.used.lock().extend(used);
    }

    /// Takes the union (call once, after every unit's task completed).
    pub fn take_used(&self) -> HashSet<Symbol> {
        std::mem::take(&mut self.used.lock())
    }

    /// Deposits one unit's lock/call summary (live or cache-replayed).
    pub fn absorb_summary(&self, summary: UnitSummary) {
        self.summaries.lock().push(summary);
    }

    /// Takes every deposited summary (call once, for the lock-order
    /// pass). Order is absorption order; the pass sorts internally.
    pub fn take_summaries(&self) -> Vec<UnitSummary> {
        std::mem::take(&mut self.summaries.lock())
    }
}

/// Runs every per-unit lint over one unit and reports findings to
/// `sink`. `decls` and `body` are the unit's *own* declarations and
/// statement list; nested procedures among `decls` are analyzed as
/// separate units by the caller and treated as opaque here. `unit` is
/// the unit's dotted code name (`M`, `M.P.Q`), recorded on the summary
/// for the interprocedural lock-order pass.
pub fn analyze_unit(
    interner: &Interner,
    file: FileId,
    unit: &str,
    kind: UnitKind,
    decls: &[Decl],
    body: &[Stmt],
    sink: &DiagnosticSink,
) -> UnitAnalysis {
    let mut l = Linter {
        interner,
        file,
        sink,
        used: HashSet::new(),
        findings: 0,
        work: 0,
        tracked: HashMap::new(),
        reported_uninit: HashSet::new(),
        locks: Vec::new(),
        lock_reports: BTreeSet::new(),
        summary: UnitSummary::new(unit),
    };
    // Track the unit's own scalar VAR locals for use-before-init.
    for d in decls {
        if let Decl::Var { names, .. } = d {
            for n in names {
                l.tracked.insert(n.name, ());
            }
        }
    }
    for d in decls {
        l.walk_decl(d);
    }
    let mut assigned: HashSet<Symbol> = HashSet::new();
    l.walk_stmts(body, &mut assigned);
    // Unused locals: procedure units only (module-level names are
    // visible to every procedure unit, which this pass cannot see).
    if kind == UnitKind::Procedure {
        for d in decls {
            for ident in d.declared_names() {
                if !l.used.contains(&ident.name) {
                    let name = interner.resolve(ident.name);
                    l.report(ident.span, format!("unused local declaration `{name}`"));
                }
            }
        }
    }
    // Lock-discipline findings flush once, deduplicated and sorted by
    // (span, message): a site reached twice by the walk (branch arms are
    // walked in cloned states) still reports exactly once.
    let lock_reports = std::mem::take(&mut l.lock_reports);
    for (lo, hi, message) in lock_reports {
        l.report(ccm2_support::source::Span::new(lo, hi), message);
    }
    UnitAnalysis {
        used: l.used,
        summary: l.summary,
        findings: l.findings,
        work: l.work,
    }
}

/// Checks the main module's import list against the union of every
/// unit's used-name set. Runs once per compilation, after all units.
/// Returns the number of findings.
pub fn check_unused_imports(
    interner: &Interner,
    file: FileId,
    imports: &[Import],
    used: &HashSet<Symbol>,
    sink: &DiagnosticSink,
) -> usize {
    let mut findings = 0;
    for imp in imports {
        match imp {
            Import::Whole { module } => {
                if !used.contains(&module.name) {
                    let m = interner.resolve(module.name);
                    sink.report(Diagnostic::warning(
                        file,
                        module.span,
                        format!("unused import of module `{m}`"),
                    ));
                    findings += 1;
                }
            }
            Import::From { module, names } => {
                for n in names {
                    if !used.contains(&n.name) {
                        let name = interner.resolve(n.name);
                        let m = interner.resolve(module.name);
                        sink.report(Diagnostic::warning(
                            file,
                            n.span,
                            format!("unused import `{name}` from `{m}`"),
                        ));
                        findings += 1;
                    }
                }
            }
        }
    }
    findings
}

// ---- the walker --------------------------------------------------------

struct Linter<'a> {
    interner: &'a Interner,
    file: FileId,
    sink: &'a DiagnosticSink,
    used: HashSet<Symbol>,
    findings: usize,
    work: u64,
    /// VAR locals of this unit, tracked for use-before-init.
    tracked: HashMap<Symbol, ()>,
    /// Reported-once set for use-before-init.
    reported_uninit: HashSet<Symbol>,
    /// Stack of held mutex designators (canonical strings).
    locks: Vec<String>,
    /// Lock-discipline findings, deduplicated and sorted by
    /// `(span.lo, span.hi, message)`; flushed once at end of unit.
    lock_reports: BTreeSet<(u32, u32, String)>,
    /// Lock/call events recorded for the interprocedural pass.
    summary: UnitSummary,
}

impl Linter<'_> {
    fn report(&mut self, span: ccm2_support::source::Span, message: String) {
        self.sink
            .report(Diagnostic::warning(self.file, span, message));
        self.findings += 1;
    }

    /// Records a mention (for the unused lints) without an init check.
    fn mention(&mut self, name: Symbol) {
        self.used.insert(name);
    }

    /// Records a *read* of a name: a mention plus the init check.
    fn read(&mut self, ident: &ccm2_syntax::ast::Ident, assigned: &HashSet<Symbol>) {
        self.mention(ident.name);
        if self.tracked.contains_key(&ident.name)
            && !assigned.contains(&ident.name)
            && self.reported_uninit.insert(ident.name)
        {
            let name = self.interner.resolve(ident.name);
            self.report(
                ident.span,
                format!("possible use of `{name}` before initialization"),
            );
        }
    }

    // ---- declarations (headings of nested procedures are opaque) ------

    fn walk_decl(&mut self, decl: &Decl) {
        self.work += 1;
        match decl {
            Decl::Const { value, .. } => self.walk_expr_mentions(value),
            Decl::Type { ty, .. } => {
                if let Some(ty) = ty {
                    self.walk_type(ty);
                }
            }
            Decl::Var { ty, .. } => self.walk_type(ty),
            // Opaque: the body (Local or Remote) is another unit's job.
            Decl::Procedure(p) => self.walk_heading(&p.heading),
        }
    }

    fn walk_heading(&mut self, heading: &ProcHeading) {
        self.work += 1;
        for param in &heading.params {
            self.walk_type(&param.ty);
        }
        if let Some(ret) = &heading.ret {
            self.walk_type(ret);
        }
    }

    fn walk_type(&mut self, ty: &TypeExpr) {
        self.work += 1;
        match &ty.kind {
            TypeExprKind::Named { module, name } => {
                if let Some(m) = module {
                    self.mention(m.name);
                }
                self.mention(name.name);
            }
            TypeExprKind::Array { index, elem } => {
                self.walk_type(index);
                self.walk_type(elem);
            }
            TypeExprKind::OpenArray { elem } => self.walk_type(elem),
            TypeExprKind::Record { fields } => {
                for f in fields {
                    self.walk_type(&f.ty);
                }
            }
            TypeExprKind::Pointer { to } => self.walk_type(to),
            TypeExprKind::Set { of } => self.walk_type(of),
            TypeExprKind::Enumeration { .. } => {}
            TypeExprKind::Subrange { lo, hi } => {
                self.walk_expr_mentions(lo);
                self.walk_expr_mentions(hi);
            }
            TypeExprKind::ProcType { params, ret } => {
                for (_, ty) in params {
                    self.walk_type(ty);
                }
                if let Some(ret) = ret {
                    self.walk_type(ret);
                }
            }
        }
    }

    /// Walks an expression recording mentions only (no init checks):
    /// declaration initializers and constant expressions.
    fn walk_expr_mentions(&mut self, expr: &Expr) {
        let empty = HashSet::new();
        // `tracked` locals cannot legally appear in constant expressions,
        // and `read` would misfire on them; mention-walk via a shim that
        // suppresses the init check.
        let saved = std::mem::take(&mut self.tracked);
        self.walk_expr(expr, &empty);
        self.tracked = saved;
    }

    // ---- statements ---------------------------------------------------

    /// Walks a statement list, threading the assigned-set through it and
    /// reporting unreachable code after RETURN / EXIT / RAISE.
    fn walk_stmts(&mut self, stmts: &[Stmt], assigned: &mut HashSet<Symbol>) {
        let mut terminated: Option<&'static str> = None;
        for stmt in stmts {
            if let Some(kw) = terminated.take() {
                self.report(stmt.span, format!("unreachable code after {kw}"));
                // Keep walking so the used-set stays complete; later
                // statements in the same list report only once.
            }
            self.walk_stmt(stmt, assigned);
            terminated = match &stmt.kind {
                StmtKind::Return(_) => Some("RETURN"),
                StmtKind::Exit => Some("EXIT"),
                StmtKind::Raise(_) => Some("RAISE"),
                _ => None,
            };
        }
    }

    fn walk_stmt(&mut self, stmt: &Stmt, assigned: &mut HashSet<Symbol>) {
        self.work += 1;
        match &stmt.kind {
            StmtKind::Assign { lhs, rhs } => {
                self.walk_expr(rhs, assigned);
                self.walk_assign_target(lhs, assigned);
            }
            StmtKind::Call { call } => self.walk_call(call, assigned),
            StmtKind::If { arms, else_body } => {
                for (cond, _) in arms {
                    self.walk_expr(cond, assigned);
                }
                let mut branches: Vec<&[Stmt]> = arms.iter().map(|(_, b)| b.as_slice()).collect();
                if let Some(e) = else_body {
                    branches.push(e.as_slice());
                }
                self.walk_branches(&branches, else_body.is_some(), assigned);
            }
            StmtKind::While { cond, body } => {
                self.walk_expr(cond, assigned);
                self.walk_unpropagated(body, assigned);
            }
            StmtKind::Repeat { body, until } => {
                // Runs at least once: assignments propagate.
                self.walk_stmts(body, assigned);
                self.walk_expr(until, assigned);
            }
            StmtKind::For {
                var,
                from,
                to,
                by,
                body,
            } => {
                self.walk_expr(from, assigned);
                self.walk_expr(to, assigned);
                if let Some(by) = by {
                    self.walk_expr(by, assigned);
                }
                self.mention(var.name);
                assigned.insert(var.name);
                self.walk_unpropagated(body, assigned);
            }
            StmtKind::Loop { body } => self.walk_unpropagated(body, assigned),
            StmtKind::Case {
                scrutinee,
                arms,
                else_body,
            } => {
                self.walk_expr(scrutinee, assigned);
                for arm in arms {
                    for label in &arm.labels {
                        match label {
                            CaseLabel::Single(e) => self.walk_expr_mentions(e),
                            CaseLabel::Range(a, b) => {
                                self.walk_expr_mentions(a);
                                self.walk_expr_mentions(b);
                            }
                        }
                    }
                }
                let mut branches: Vec<&[Stmt]> = arms.iter().map(|a| a.body.as_slice()).collect();
                if let Some(e) = else_body {
                    branches.push(e.as_slice());
                }
                self.walk_branches(&branches, else_body.is_some(), assigned);
            }
            StmtKind::With { designator, body } => {
                self.walk_expr(designator, assigned);
                self.walk_stmts(body, assigned);
            }
            StmtKind::Return(e) | StmtKind::Raise(e) => {
                if let Some(e) = e {
                    self.walk_expr(e, assigned);
                }
            }
            StmtKind::LockStmt { designator, body } => {
                self.walk_expr(designator, assigned);
                self.lock_discipline(designator, stmt, body, assigned);
            }
            StmtKind::TryStmt {
                body,
                except,
                finally,
            } => {
                // The body may be cut short by an exception and the
                // except-arm may not run at all: neither propagates.
                self.walk_unpropagated(body, assigned);
                if let Some(except) = except {
                    self.walk_unpropagated(except, assigned);
                }
                if let Some(finally) = finally {
                    // FINALLY always runs.
                    self.walk_stmts(finally, assigned);
                }
            }
            StmtKind::Exit | StmtKind::Empty => {}
        }
    }

    /// Branch bodies: each walked in a copy of the entry state; the
    /// intersection of their assigned-sets propagates only when the
    /// branching is exhaustive (an ELSE exists).
    fn walk_branches(
        &mut self,
        branches: &[&[Stmt]],
        exhaustive: bool,
        assigned: &mut HashSet<Symbol>,
    ) {
        let mut out: Option<HashSet<Symbol>> = None;
        for body in branches {
            let mut branch_assigned = assigned.clone();
            self.walk_stmts(body, &mut branch_assigned);
            out = Some(match out {
                None => branch_assigned,
                Some(prev) => prev.intersection(&branch_assigned).copied().collect(),
            });
        }
        if exhaustive {
            if let Some(out) = out {
                assigned.extend(out);
            }
        }
    }

    /// Loop bodies that may execute zero times: walked for reports and
    /// mentions, assignments discarded.
    fn walk_unpropagated(&mut self, body: &[Stmt], assigned: &HashSet<Symbol>) {
        let mut copy = assigned.clone();
        self.walk_stmts(body, &mut copy);
    }

    /// LOCK discipline: nested re-LOCK of a held designator, and calls
    /// into the locking module while its mutex is held.
    fn lock_discipline(
        &mut self,
        designator: &Expr,
        stmt: &Stmt,
        body: &[Stmt],
        assigned: &mut HashSet<Symbol>,
    ) {
        let canon = self.canonical(designator);
        if self.locks.contains(&canon) {
            self.lock_reports.insert((
                stmt.span.lo,
                stmt.span.hi,
                format!("LOCK of `{canon}` while it is already held (nested re-LOCK)"),
            ));
        }
        self.summary.acquires.push(callgraph::LockAcquire {
            held: self.locks.clone(),
            lock: canon.clone(),
            span: stmt.span,
        });
        self.locks.push(canon);
        // The body runs exactly once: assignments propagate.
        self.walk_stmts(body, assigned);
        self.locks.pop();
    }

    /// Canonical display string for a mutex designator.
    fn canonical(&self, expr: &Expr) -> String {
        match &expr.kind {
            ExprKind::Name(id) => self.interner.resolve(id.name),
            ExprKind::Field { base, field } => {
                format!(
                    "{}.{}",
                    self.canonical(base),
                    self.interner.resolve(field.name)
                )
            }
            ExprKind::Index { base, .. } => format!("{}[]", self.canonical(base)),
            ExprKind::Deref { base } => format!("{}^", self.canonical(base)),
            _ => String::from("<expr>"),
        }
    }

    // ---- expressions --------------------------------------------------

    /// An assignment target: `x :=` assigns `x`; `a[i] :=` uses the
    /// indices and conservatively counts as assigning `a`; `r.f :=`
    /// assigns `r`; `p^ :=` *reads* `p`.
    fn walk_assign_target(&mut self, lhs: &Expr, assigned: &mut HashSet<Symbol>) {
        self.work += 1;
        match &lhs.kind {
            ExprKind::Name(id) => {
                self.mention(id.name);
                assigned.insert(id.name);
            }
            ExprKind::Index { base, indices } => {
                for ix in indices {
                    self.walk_expr(ix, assigned);
                }
                self.walk_assign_target(base, assigned);
            }
            ExprKind::Field { base, field } => {
                self.mention(field.name);
                self.walk_assign_target(base, assigned);
            }
            ExprKind::Deref { base } => self.walk_expr(base, assigned),
            _ => self.walk_expr(lhs, assigned),
        }
    }

    /// A call: the callee and non-name arguments are reads; a bare-name
    /// argument may be a VAR (out) parameter, so it is mentioned but not
    /// init-checked, and counts as assigned afterwards.
    fn walk_call(&mut self, call: &Expr, assigned: &mut HashSet<Symbol>) {
        self.work += 1;
        if let ExprKind::Call { callee, args } = &call.kind {
            self.walk_expr(callee, assigned);
            self.check_lock_reentry(callee);
            self.record_call(callee);
            let mut out_params: Vec<Symbol> = Vec::new();
            for arg in args {
                if let ExprKind::Name(id) = &arg.kind {
                    self.work += 1;
                    self.mention(id.name);
                    out_params.push(id.name);
                } else {
                    self.walk_expr(arg, assigned);
                }
            }
            assigned.extend(out_params);
        } else {
            self.walk_expr(call, assigned);
        }
    }

    /// While holding `M.mu`, a call whose callee is qualified `M.proc`
    /// may re-enter the locking module: the Modula-2+ self-deadlock
    /// pattern.
    fn check_lock_reentry(&mut self, callee: &Expr) {
        let ExprKind::Field { base, field } = &callee.kind else {
            return;
        };
        let ExprKind::Name(module) = &base.kind else {
            return;
        };
        let module_str = self.interner.resolve(module.name);
        let prefix = format!("{module_str}.");
        let Some(held) = self
            .locks
            .iter()
            .find(|held| held.starts_with(&prefix))
            .cloned()
        else {
            return;
        };
        let proc = self.interner.resolve(field.name);
        self.lock_reports.insert((
            callee.span.lo,
            callee.span.hi,
            format!(
                "call to `{module_str}.{proc}` while holding `{held}` may re-enter the locking module"
            ),
        ));
    }

    /// Records a call site (callee designator + held locks) on the
    /// unit's summary for the interprocedural pass.
    fn record_call(&mut self, callee: &Expr) {
        self.summary.calls.push(callgraph::CallSite {
            held: self.locks.clone(),
            callee: self.canonical(callee),
            span: callee.span,
        });
    }

    fn walk_expr(&mut self, expr: &Expr, assigned: &HashSet<Symbol>) {
        self.work += 1;
        match &expr.kind {
            ExprKind::IntLit(_)
            | ExprKind::RealLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::StrLit(_) => {}
            ExprKind::Name(id) => self.read(id, assigned),
            ExprKind::Field { base, field } => {
                self.mention(field.name);
                self.walk_expr(base, assigned);
            }
            ExprKind::Index { base, indices } => {
                self.walk_expr(base, assigned);
                for ix in indices {
                    self.walk_expr(ix, assigned);
                }
            }
            ExprKind::Deref { base } => self.walk_expr(base, assigned),
            ExprKind::Call { callee, args } => {
                // Expression (function) calls: same VAR-argument
                // conservatism as statement calls, but results feed into
                // the surrounding expression, so `assigned` is immutable
                // here; out-name arguments are simply not init-checked.
                self.walk_expr(callee, assigned);
                self.check_lock_reentry(callee);
                self.record_call(callee);
                for arg in args {
                    if let ExprKind::Name(id) = &arg.kind {
                        self.work += 1;
                        self.mention(id.name);
                    } else {
                        self.walk_expr(arg, assigned);
                    }
                }
            }
            ExprKind::Unary { operand, .. } => self.walk_expr(operand, assigned),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs, assigned);
                self.walk_expr(rhs, assigned);
            }
            ExprKind::SetCons { of_type, elems } => {
                if let Some(t) = of_type {
                    self.mention(t.name);
                }
                for e in elems {
                    match e {
                        SetElem::Single(x) => self.walk_expr(x, assigned),
                        SetElem::Range(a, b) => {
                            self.walk_expr(a, assigned);
                            self.walk_expr(b, assigned);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_support::diag::Severity;
    use ccm2_support::source::SourceMap;
    use ccm2_syntax::lexer::Lexer;
    use ccm2_syntax::parser::parse_implementation;

    /// Parses a module and runs the module-unit lints plus one
    /// procedure unit per Local procedure, then the interprocedural
    /// lock-order pass — mirroring the drivers.
    fn lint(source: &str) -> (Vec<String>, usize) {
        let interner = Interner::new();
        let sources = SourceMap::new();
        let file = sources.add("Main.mod", source);
        let sink = DiagnosticSink::new();
        let tokens: Vec<_> = Lexer::new(&file, &interner, &sink).collect();
        let module = parse_implementation(&tokens, &interner, &sink).expect("test module parses");
        assert!(!sink.has_errors(), "test module must be clean Modula-2+");
        let module_name = interner.resolve(module.name.name);
        let mut used = HashSet::new();
        let mut findings = 0;
        let mut summaries = Vec::new();
        let ua = analyze_unit(
            &interner,
            file.id(),
            &module_name,
            UnitKind::Module,
            &module.decls,
            &module.body,
            &sink,
        );
        findings += ua.findings;
        used.extend(ua.used);
        summaries.push(ua.summary);
        // Walk procedures (recursively) as separate units.
        let mut queue: Vec<(String, &Decl)> = module
            .decls
            .iter()
            .map(|d| (module_name.clone(), d))
            .collect();
        while let Some((prefix, d)) = queue.pop() {
            if let Decl::Procedure(p) = d {
                if let ccm2_syntax::ast::ProcBody::Local(local) = &p.body {
                    let name = format!("{prefix}.{}", interner.resolve(p.heading.name.name));
                    let ua = analyze_unit(
                        &interner,
                        file.id(),
                        &name,
                        UnitKind::Procedure,
                        &local.decls,
                        &local.body,
                        &sink,
                    );
                    findings += ua.findings;
                    used.extend(ua.used);
                    summaries.push(ua.summary);
                    queue.extend(local.decls.iter().map(|d| (name.clone(), d)));
                }
            }
        }
        findings += check_unused_imports(&interner, file.id(), &module.imports, &used, &sink);
        let (lock_diags, _) = lock_order_pass(&summaries, file.id());
        for d in lock_diags {
            sink.report(d);
        }
        let msgs = sink
            .take()
            .into_iter()
            .inspect(|d| assert_eq!(d.severity, Severity::Warning))
            .map(|d| d.message)
            .collect();
        (msgs, findings)
    }

    #[test]
    fn use_before_init_reported_once() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             PROCEDURE P(): INTEGER;
             VAR x: INTEGER;
             BEGIN
               RETURN x + x
             END P;
             BEGIN END T.",
        );
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("use of `x` before initialization"))
                .count(),
            1
        );
    }

    #[test]
    fn assignment_silences_use_before_init() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             PROCEDURE P(): INTEGER;
             VAR x: INTEGER;
             BEGIN
               x := 1;
               RETURN x
             END P;
             BEGIN END T.",
        );
        assert!(
            msgs.iter().all(|m| !m.contains("before initialization")),
            "{msgs:?}"
        );
    }

    #[test]
    fn if_without_else_does_not_guarantee_assignment() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             PROCEDURE P(c: INTEGER): INTEGER;
             VAR x: INTEGER;
             BEGIN
               IF c > 0 THEN x := 1 END;
               RETURN x
             END P;
             BEGIN END T.",
        );
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("use of `x` before initialization"))
                .count(),
            1,
            "{msgs:?}"
        );
    }

    #[test]
    fn if_with_else_assigning_both_arms_is_clean() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             PROCEDURE P(c: INTEGER): INTEGER;
             VAR x: INTEGER;
             BEGIN
               IF c > 0 THEN x := 1 ELSE x := 2 END;
               RETURN x
             END P;
             BEGIN END T.",
        );
        assert!(
            msgs.iter().all(|m| !m.contains("before initialization")),
            "{msgs:?}"
        );
    }

    #[test]
    fn unreachable_after_return() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             PROCEDURE P(): INTEGER;
             VAR x: INTEGER;
             BEGIN
               x := 1;
               RETURN x;
               x := 2
             END P;
             BEGIN END T.",
        );
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("unreachable code after RETURN"))
                .count(),
            1,
            "{msgs:?}"
        );
    }

    #[test]
    fn unused_local_reported_for_procedure_units_only() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             VAR g: INTEGER;
             PROCEDURE P();
             VAR dead: INTEGER;
             BEGIN
             END P;
             BEGIN g := 0 END T.",
        );
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("unused local declaration `dead`"))
                .count(),
            1,
            "{msgs:?}"
        );
        assert!(msgs.iter().all(|m| !m.contains("`g`")), "{msgs:?}");
    }

    #[test]
    fn unused_import_reported() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             IMPORT Dead;
             FROM Alive IMPORT f;
             VAR x: INTEGER;
             BEGIN
               f(x)
             END T.",
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("unused import of module `Dead`")),
            "{msgs:?}"
        );
        assert!(msgs.iter().all(|m| !m.contains("`f`")), "{msgs:?}");
    }

    #[test]
    fn nested_relock_and_reentry_reported() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             IMPORT Mu;
             BEGIN
               LOCK Mu.m DO
                 LOCK Mu.m DO
                   Mu.Touch()
                 END
               END
             END T.",
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("LOCK of `Mu.m` while it is already held")),
            "{msgs:?}"
        );
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("may re-enter the locking module"))
                .count(),
            1,
            "{msgs:?}"
        );
    }

    #[test]
    fn nested_procedure_bodies_are_opaque() {
        // The mention of `h` happens inside Q's body: the outer unit must
        // not see it (the concurrent parent sees a Remote body there), so
        // both drivers must agree `h` is used — via Q's own unit.
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             PROCEDURE P();
             VAR h: INTEGER;
               PROCEDURE Q();
               BEGIN
                 h := 1
               END Q;
             BEGIN
               Q()
             END P;
             BEGIN END T.",
        );
        // Known conservatism: `h` is reported unused in P's unit (the
        // nested body is opaque) — deterministically in both compilers.
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("unused local declaration `h`"))
                .count(),
            1,
            "{msgs:?}"
        );
    }

    #[test]
    fn repeat_body_propagates_assignment() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             PROCEDURE P(): INTEGER;
             VAR x: INTEGER;
             BEGIN
               REPEAT x := 1 UNTIL x > 0;
               RETURN x
             END P;
             BEGIN END T.",
        );
        assert!(
            msgs.iter().all(|m| !m.contains("before initialization")),
            "{msgs:?}"
        );
    }

    #[test]
    fn while_body_does_not_propagate_assignment() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             PROCEDURE P(c: INTEGER): INTEGER;
             VAR x: INTEGER;
             BEGIN
               WHILE c > 0 DO x := 1 END;
               RETURN x
             END P;
             BEGIN END T.",
        );
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("use of `x` before initialization"))
                .count(),
            1,
            "{msgs:?}"
        );
    }

    #[test]
    fn var_argument_counts_as_assignment() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             FROM IO IMPORT ReadInt;
             PROCEDURE P(): INTEGER;
             VAR x: INTEGER;
             BEGIN
               ReadInt(x);
               RETURN x
             END P;
             BEGIN END T.",
        );
        assert!(
            msgs.iter().all(|m| !m.contains("before initialization")),
            "{msgs:?}"
        );
    }

    #[test]
    fn relock_through_else_arm_reported() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             VAR gR: INTEGER;
             PROCEDURE P(c: INTEGER);
             VAR x: INTEGER;
             BEGIN
               LOCK gR DO
                 IF c > 0 THEN x := 1
                 ELSE LOCK gR DO x := 2 END
                 END
               END
             END P;
             BEGIN gR := 0 END T.",
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("LOCK of `gR` while it is already held")),
            "{msgs:?}"
        );
    }

    #[test]
    fn relock_through_loop_arm_reported() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             VAR gR: INTEGER;
             PROCEDURE P(c: INTEGER);
             VAR x: INTEGER;
             BEGIN
               LOCK gR DO
                 WHILE c > 0 DO LOCK gR DO x := 1 END END
               END
             END P;
             BEGIN gR := 0 END T.",
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("LOCK of `gR` while it is already held")),
            "{msgs:?}"
        );
    }

    #[test]
    fn lock_diagnostics_report_once_per_site() {
        // Two distinct re-LOCK sites under the same outer LOCK: one
        // report each, and the dedupe set must not merge them.
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             VAR gR: INTEGER;
             PROCEDURE P(c: INTEGER);
             VAR x: INTEGER;
             BEGIN
               LOCK gR DO
                 IF c > 0 THEN LOCK gR DO x := 1 END
                 ELSE LOCK gR DO x := 2 END
                 END
               END
             END P;
             BEGIN gR := 0 END T.",
        );
        assert_eq!(
            msgs.iter()
                .filter(|m| m.contains("LOCK of `gR` while it is already held"))
                .count(),
            2,
            "{msgs:?}"
        );
    }

    #[test]
    fn cross_procedure_relock_detected_from_source() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             VAR mu: INTEGER;
             PROCEDURE Grab();
             BEGIN
               LOCK mu DO mu := mu + 1 END
             END Grab;
             PROCEDURE P();
             BEGIN
               LOCK mu DO Grab() END
             END P;
             BEGIN END T.",
        );
        assert!(
            msgs.iter().any(
                |m| m.contains("call to `T.Grab` while holding `mu` may re-LOCK it")
                    && m.contains("chain: T.P -> T.Grab, LOCK `mu` in T.Grab")
            ),
            "{msgs:?}"
        );
    }

    #[test]
    fn lock_order_cycle_detected_from_source() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             VAR a, b: INTEGER;
             PROCEDURE GrabA();
             BEGIN LOCK a DO a := 1 END END GrabA;
             PROCEDURE GrabB();
             BEGIN LOCK b DO b := 1 END END GrabB;
             PROCEDURE P();
             BEGIN LOCK a DO GrabB() END END P;
             PROCEDURE Q();
             BEGIN LOCK b DO GrabA() END END Q;
             BEGIN P(); Q() END T.",
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("potential deadlock: lock-order cycle among `a`, `b`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn consistent_lock_order_from_source_is_silent() {
        let (msgs, _) = lint(
            "IMPLEMENTATION MODULE T;
             VAR a, b: INTEGER;
             PROCEDURE GrabB();
             BEGIN LOCK b DO b := 1 END END GrabB;
             PROCEDURE P();
             BEGIN LOCK a DO GrabB() END END P;
             PROCEDURE Q();
             BEGIN LOCK a DO LOCK b DO b := 2 END END END Q;
             BEGIN P(); Q() END T.",
        );
        assert!(
            msgs.iter()
                .all(|m| !m.contains("deadlock") && !m.contains("re-LOCK")),
            "{msgs:?}"
        );
    }

    #[test]
    fn analysis_is_deterministic() {
        let src = "IMPLEMENTATION MODULE T;
             IMPORT Dead;
             PROCEDURE P(c: INTEGER): INTEGER;
             VAR x, unused: INTEGER;
             BEGIN
               IF c > 0 THEN x := 1 END;
               RETURN x;
               x := 2
             END P;
             BEGIN END T.";
        let (a, fa) = lint(src);
        let (b, fb) = lint(src);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
        assert!(fa >= 4, "{a:?}");
    }
}
