//! Interprocedural lock-order analysis: summary propagation to a
//! fixpoint, cross-procedure re-LOCK detection, and static deadlock
//! prediction over the lock-order graph.
//!
//! The pass runs once per compilation, after every per-unit `Analyze`
//! task has deposited its [`UnitSummary`] (live or replayed from the
//! incremental cache). It is **pure**: summaries in, diagnostics and
//! [`LockStats`] out — the drivers decide where the diagnostics go.
//!
//! # Determinism
//!
//! The concurrent driver collects summaries in task-completion order,
//! which varies with the executor, worker count and DKY strategy. The
//! diagnostics must nevertheless be byte-identical to the sequential
//! compiler's. Four rules make that hold:
//!
//! 1. Summaries are **sorted by unit name** before anything else; every
//!    later structure (`BTreeMap`/`BTreeSet`) iterates in that order.
//! 2. The fixpoint is a **round-robin over sorted unit names**, and a
//!    lock's witness call-path is *never replaced* once recorded — the
//!    first path found under this fixed iteration order wins, so the
//!    final map is a pure function of the summary set.
//! 3. Lock-order edges keep the **first witness** under the same fixed
//!    order.
//! 4. Reports are deduplicated and emitted through a `BTreeSet` keyed
//!    by `(span.lo, span.hi, message)`.
//!
//! # What is reported
//!
//! * **Cross-procedure re-LOCK** — a call made while holding `mu`
//!   reaches (transitively) a `LOCK mu`. The intra-procedural nested
//!   re-LOCK lint in [`analyze_unit`](crate::analyze_unit) covers the
//!   same-unit case, so this pass only reports chains involving a call.
//! * **Lock-order cycles** — edge `a → b` whenever `b` is acquired
//!   (locally or via calls) while `a` is held; every strongly connected
//!   component with ≥ 2 locks is one deadlock-potential diagnostic
//!   naming all of its edges with their full call/lock chains.
//!
//! Callee names resolve innermost-scope-first against the unit map
//! (`M.P.Q` tries `M.P.Q.R`, `M.P.R`, `M.R`, `R` for a call of `R`) —
//! Modula-2's visibility rule. Qualified callees (`Lib.P`) name units
//! of *other* modules whose bodies this compilation never sees; they
//! stay unresolved here and are covered by the intra-unit
//! `check_lock_reentry` lint instead.

use std::collections::{BTreeMap, BTreeSet};

use ccm2_support::diag::Diagnostic;
use ccm2_support::source::{FileId, Span};

use crate::callgraph::UnitSummary;

/// What the interprocedural pass did — surfaced by `reproduce -- locks`
/// and asserted by the warm-cache tests. Diagnostics never depend on
/// these numbers; `from_cache`/`computed` differ between cold and warm
/// runs while the reported text stays identical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Units whose summaries entered the pass.
    pub units: usize,
    /// Summaries replayed from the incremental cache.
    pub from_cache: usize,
    /// Summaries recomputed live this run.
    pub computed: usize,
    /// Cached units whose transitive lock sets had to be re-propagated
    /// because they can reach a recomputed (dirty) unit.
    pub dependents: usize,
    /// Fixpoint rounds until stabilization.
    pub rounds: usize,
    /// Distinct lock-order edges.
    pub edges: usize,
    /// Lock-order cycles (SCCs with ≥ 2 locks).
    pub cycles: usize,
    /// Diagnostics produced.
    pub findings: usize,
}

/// Resolves a callee designator against the unit map, innermost
/// enclosing scope first. Returns `None` for qualified or otherwise
/// unknown callees (imported procedures, builtins, proc variables).
fn resolve(caller: &str, callee: &str, units: &BTreeMap<String, UnitSummary>) -> Option<String> {
    if callee.contains('.') {
        return None;
    }
    let segs: Vec<&str> = caller.split('.').collect();
    for depth in (0..=segs.len()).rev() {
        let candidate = if depth == 0 {
            callee.to_string()
        } else {
            format!("{}.{}", segs[..depth].join("."), callee)
        };
        if units.contains_key(&candidate) {
            return Some(candidate);
        }
    }
    None
}

fn render_chain(path: &[String], lock: &str) -> String {
    format!(
        "{}, LOCK `{lock}` in {}",
        path.join(" -> "),
        path[path.len() - 1]
    )
}

/// Runs the interprocedural pass over every unit summary of one
/// compilation. Returns the (deduplicated, deterministically ordered)
/// diagnostics and the run's statistics.
pub fn lock_order_pass(summaries: &[UnitSummary], file: FileId) -> (Vec<Diagnostic>, LockStats) {
    let mut stats = LockStats::default();

    // Rule 1: a sorted, name-keyed unit map is the only input.
    let mut units: BTreeMap<String, UnitSummary> = BTreeMap::new();
    for s in summaries {
        units.entry(s.unit.clone()).or_insert_with(|| s.clone());
    }
    stats.units = units.len();
    stats.from_cache = units.values().filter(|s| s.from_cache).count();
    stats.computed = stats.units - stats.from_cache;

    // Transitive acquisitions: unit -> lock -> witness call path (unit
    // names from the unit down to the acquirer, inclusive). Seeded from
    // local acquires, then propagated caller <- callee to a fixpoint.
    let mut acq: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    for (name, s) in &units {
        let entry = acq.entry(name.clone()).or_default();
        for a in &s.acquires {
            entry
                .entry(a.lock.clone())
                .or_insert_with(|| vec![name.clone()]);
        }
    }

    // Rule 2: round-robin over sorted names; first witness wins; the
    // map only grows, so this terminates.
    loop {
        stats.rounds += 1;
        let mut changed = false;
        for (name, s) in &units {
            for c in &s.calls {
                let Some(callee) = resolve(name, &c.callee, &units) else {
                    continue;
                };
                if callee == *name {
                    continue;
                }
                let reached: Vec<(String, Vec<String>)> = acq
                    .get(&callee)
                    .map(|m| m.iter().map(|(l, p)| (l.clone(), p.clone())).collect())
                    .unwrap_or_default();
                let mine = acq.entry(name.clone()).or_default();
                for (lock, path) in reached {
                    mine.entry(lock).or_insert_with(|| {
                        changed = true;
                        let mut full = Vec::with_capacity(path.len() + 1);
                        full.push(name.clone());
                        full.extend(path);
                        full
                    });
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Lock-order edges (held -> acquired) with their first witness, and
    // the cross-procedure re-LOCK reports.
    struct Edge {
        span: Span,
        desc: String,
    }
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut reports: BTreeSet<(u32, u32, String)> = BTreeSet::new();
    for (name, s) in &units {
        for a in &s.acquires {
            for h in &a.held {
                if h == &a.lock {
                    continue; // same-unit nested re-LOCK: analyze_unit's lint
                }
                edges.entry((h.clone(), a.lock.clone())).or_insert(Edge {
                    span: a.span,
                    desc: format!("LOCK `{}` in {name} while `{h}` held", a.lock),
                });
            }
        }
        for c in &s.calls {
            let Some(callee) = resolve(name, &c.callee, &units) else {
                continue;
            };
            let Some(reached) = acq.get(&callee) else {
                continue;
            };
            for (lock, path) in reached {
                let mut full = Vec::with_capacity(path.len() + 1);
                full.push(name.clone());
                full.extend(path.iter().cloned());
                let chain = render_chain(&full, lock);
                for h in &c.held {
                    if h == lock {
                        reports.insert((
                            c.span.lo,
                            c.span.hi,
                            format!(
                                "call to `{callee}` while holding `{lock}` may re-LOCK it \
                                 (chain: {chain})"
                            ),
                        ));
                    } else {
                        edges.entry((h.clone(), lock.clone())).or_insert(Edge {
                            span: c.span,
                            desc: format!("`{lock}` acquired via {chain} while `{h}` held"),
                        });
                    }
                }
            }
        }
    }
    stats.edges = edges.len();

    // Cycles: SCCs of the lock-order graph (self-edges are excluded by
    // construction above — they are the re-LOCK case, not an ordering
    // inversion). Deterministic: nodes and adjacency iterate sorted.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
        adj.entry(to.as_str()).or_default();
    }
    for scc in sccs(&adj) {
        if scc.len() < 2 {
            continue;
        }
        stats.cycles += 1;
        let members: BTreeSet<&str> = scc.iter().copied().collect();
        let mut lines = Vec::new();
        let mut span = Span::new(u32::MAX, u32::MAX);
        for ((from, to), e) in &edges {
            if members.contains(from.as_str()) && members.contains(to.as_str()) {
                lines.push(format!("`{from}` -> `{to}` ({})", e.desc));
                if (e.span.lo, e.span.hi) < (span.lo, span.hi) {
                    span = e.span;
                }
            }
        }
        let locks = members
            .iter()
            .map(|l| format!("`{l}`"))
            .collect::<Vec<_>>()
            .join(", ");
        reports.insert((
            span.lo,
            span.hi,
            format!(
                "potential deadlock: lock-order cycle among {locks}: {}",
                lines.join("; ")
            ),
        ));
    }

    // Warm-run bookkeeping: a cached unit is a re-propagated dependent
    // when it can reach a recomputed unit through resolved call edges.
    let call_targets: BTreeMap<&str, Vec<String>> = units
        .iter()
        .map(|(name, s)| {
            let mut t: Vec<String> = s
                .calls
                .iter()
                .filter_map(|c| resolve(name, &c.callee, &units))
                .collect();
            t.sort();
            t.dedup();
            (name.as_str(), t)
        })
        .collect();
    for (name, s) in &units {
        if !s.from_cache {
            continue;
        }
        let mut stack: Vec<&str> = vec![name.as_str()];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut reaches_dirty = false;
        while let Some(u) = stack.pop() {
            if !seen.insert(u) {
                continue;
            }
            if u != name.as_str() && units.get(u).is_some_and(|t| !t.from_cache) {
                reaches_dirty = true;
                break;
            }
            if let Some(ts) = call_targets.get(u) {
                stack.extend(ts.iter().map(String::as_str));
            }
        }
        if reaches_dirty {
            stats.dependents += 1;
        }
    }

    stats.findings = reports.len();
    // Rule 4: emit in BTreeSet order (the sink re-sorts totally anyway).
    let diags = reports
        .into_iter()
        .map(|(lo, hi, message)| Diagnostic::warning(file, Span::new(lo, hi), message))
        .collect();
    (diags, stats)
}

/// Strongly connected components of `adj` (nodes and edges iterated in
/// sorted order), via iterative Tarjan. Output order is deterministic.
fn sccs<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>) -> Vec<Vec<&'a str>> {
    #[derive(Default, Clone)]
    struct Node {
        index: Option<usize>,
        low: usize,
        on_stack: bool,
    }
    let mut nodes: BTreeMap<&str, Node> = adj.keys().map(|&k| (k, Node::default())).collect();
    let mut next_index = 0;
    let mut stack: Vec<&'a str> = Vec::new();
    let mut out: Vec<Vec<&'a str>> = Vec::new();
    let empty: Vec<&str> = Vec::new();

    for &root in adj.keys() {
        if nodes.get(root).and_then(|n| n.index).is_some() {
            continue;
        }
        // (node, next successor position) — explicit DFS stack.
        let mut work: Vec<(&'a str, usize)> = vec![(root, 0)];
        while let Some(&(v, pos)) = work.last() {
            if pos == 0 {
                let n = nodes.entry(v).or_default();
                n.index = Some(next_index);
                n.low = next_index;
                n.on_stack = true;
                next_index += 1;
                stack.push(v);
            }
            let succs = adj.get(v).unwrap_or(&empty);
            if let Some(&w) = succs.get(pos) {
                if let Some(frame) = work.last_mut() {
                    frame.1 += 1;
                }
                let (w_index, w_on_stack) = nodes
                    .get(w)
                    .map(|n| (n.index, n.on_stack))
                    .unwrap_or((None, false));
                match w_index {
                    None => work.push((w, 0)),
                    Some(wi) if w_on_stack => {
                        if let Some(n) = nodes.get_mut(v) {
                            n.low = n.low.min(wi);
                        }
                    }
                    Some(_) => {}
                }
            } else {
                work.pop();
                let (v_low, v_index) = nodes
                    .get(v)
                    .map(|n| (n.low, n.index.unwrap_or(0)))
                    .unwrap_or((0, 0));
                if let Some(&(parent, _)) = work.last() {
                    if let Some(n) = nodes.get_mut(parent) {
                        n.low = n.low.min(v_low);
                    }
                }
                if v_low == v_index {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        if let Some(n) = nodes.get_mut(w) {
                            n.on_stack = false;
                        }
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{CallSite, LockAcquire};

    fn unit(name: &str) -> UnitSummary {
        UnitSummary::new(name)
    }

    fn acquire(lock: &str, held: &[&str], lo: u32) -> LockAcquire {
        LockAcquire {
            held: held.iter().map(|s| s.to_string()).collect(),
            lock: lock.to_string(),
            span: Span::new(lo, lo + 10),
        }
    }

    fn call(callee: &str, held: &[&str], lo: u32) -> CallSite {
        CallSite {
            held: held.iter().map(|s| s.to_string()).collect(),
            callee: callee.to_string(),
            span: Span::new(lo, lo + 1),
        }
    }

    fn messages(diags: &[Diagnostic]) -> Vec<String> {
        diags.iter().map(|d| d.message.clone()).collect()
    }

    #[test]
    fn cross_procedure_relock_reported_with_chain() {
        // M.P: LOCK a DO Q()   M.Q: LOCK a
        let mut p = unit("M.P");
        p.calls.push(call("Q", &["a"], 20));
        let mut q = unit("M.Q");
        q.acquires.push(acquire("a", &[], 50));
        let (diags, stats) = lock_order_pass(&[p, q, unit("M")], FileId(0));
        let msgs = messages(&diags);
        assert_eq!(stats.findings, 1, "{msgs:?}");
        assert!(
            msgs[0].contains("call to `M.Q` while holding `a` may re-LOCK it")
                && msgs[0].contains("M.P -> M.Q, LOCK `a` in M.Q"),
            "{msgs:?}"
        );
    }

    #[test]
    fn transitive_relock_names_full_chain() {
        // M.P: LOCK a DO Q()   M.Q: R()   M.R: LOCK a
        let mut p = unit("M.P");
        p.calls.push(call("Q", &["a"], 20));
        let mut q = unit("M.Q");
        q.calls.push(call("R", &[], 40));
        let mut r = unit("M.R");
        r.acquires.push(acquire("a", &[], 60));
        let (diags, _) = lock_order_pass(&[p, q, r], FileId(0));
        let msgs = messages(&diags);
        assert!(
            msgs.iter()
                .any(|m| m.contains("chain: M.P -> M.Q -> M.R, LOCK `a` in M.R")),
            "{msgs:?}"
        );
    }

    #[test]
    fn lock_order_cycle_across_procedures_reported() {
        // M.P: LOCK a DO GrabB()   M.Q: LOCK b DO GrabA()
        let mut p = unit("M.P");
        p.calls.push(call("GrabB", &["a"], 20));
        let mut q = unit("M.Q");
        q.calls.push(call("GrabA", &["b"], 40));
        let mut ga = unit("M.GrabA");
        ga.acquires.push(acquire("a", &[], 60));
        let mut gb = unit("M.GrabB");
        gb.acquires.push(acquire("b", &[], 80));
        let (diags, stats) = lock_order_pass(&[p, q, ga, gb], FileId(0));
        assert_eq!(stats.cycles, 1);
        let msgs = messages(&diags);
        assert!(
            msgs.iter().any(
                |m| m.contains("potential deadlock: lock-order cycle among `a`, `b`")
                    && m.contains("`a` -> `b`")
                    && m.contains("`b` -> `a`")
            ),
            "{msgs:?}"
        );
    }

    #[test]
    fn acyclic_order_is_silent() {
        // Consistent order a < b everywhere: no cycle, no re-LOCK.
        let mut p = unit("M.P");
        p.acquires.push(acquire("a", &[], 10));
        p.acquires.push(acquire("b", &["a"], 20));
        let mut q = unit("M.Q");
        q.calls.push(call("GrabB", &["a"], 40));
        let mut gb = unit("M.GrabB");
        gb.acquires.push(acquire("b", &[], 60));
        let (diags, stats) = lock_order_pass(&[p, q, gb], FileId(0));
        assert!(diags.is_empty(), "{:?}", messages(&diags));
        assert_eq!(stats.cycles, 0);
        assert!(stats.edges >= 1);
    }

    #[test]
    fn recursive_relock_under_own_lock_reported() {
        // M.P: LOCK a DO P() — recursion re-executes the LOCK.
        let mut p = unit("M.P");
        p.acquires.push(acquire("a", &[], 10));
        p.calls.push(call("P", &["a"], 20));
        let (diags, _) = lock_order_pass(&[p], FileId(0));
        let msgs = messages(&diags);
        assert!(
            msgs.iter()
                .any(|m| m.contains("call to `M.P` while holding `a` may re-LOCK it")),
            "{msgs:?}"
        );
    }

    #[test]
    fn innermost_scope_wins_resolution() {
        // M.P calls Q; both M.P.Q (locks a) and M.Q (locks b) exist —
        // the nested one shadows, so only `a` is reached.
        let mut p = unit("M.P");
        p.calls.push(call("Q", &["a"], 20));
        let mut inner = unit("M.P.Q");
        inner.acquires.push(acquire("a", &[], 40));
        let mut outer = unit("M.Q");
        outer.acquires.push(acquire("b", &[], 60));
        let (diags, _) = lock_order_pass(&[p, inner, outer], FileId(0));
        let msgs = messages(&diags);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(
            msgs[0].contains("call to `M.P.Q` while holding `a`"),
            "{msgs:?}"
        );
    }

    #[test]
    fn qualified_callees_are_ignored() {
        let mut p = unit("M.P");
        p.calls.push(call("Lib.Touch", &["a"], 20));
        let (diags, stats) = lock_order_pass(&[p], FileId(0));
        assert!(diags.is_empty());
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn pass_is_deterministic_under_input_permutation() {
        let mut p = unit("M.P");
        p.calls.push(call("GrabB", &["a"], 20));
        let mut q = unit("M.Q");
        q.calls.push(call("GrabA", &["b"], 40));
        let mut ga = unit("M.GrabA");
        ga.acquires.push(acquire("a", &[], 60));
        let mut gb = unit("M.GrabB");
        gb.acquires.push(acquire("b", &[], 80));
        let base = vec![p, q, ga, gb];
        let (d0, s0) = lock_order_pass(&base, FileId(0));
        // Every rotation of the input must give identical output.
        for rot in 1..base.len() {
            let mut perm = base.clone();
            perm.rotate_left(rot);
            let (d, s) = lock_order_pass(&perm, FileId(0));
            assert_eq!(messages(&d), messages(&d0), "rotation {rot}");
            assert_eq!(s, s0, "rotation {rot}");
        }
    }

    #[test]
    fn dependents_counts_cached_units_reaching_dirty_ones() {
        let mut p = unit("M.P"); // cached, calls Q (dirty) → dependent
        p.calls.push(call("Q", &[], 20));
        p.from_cache = true;
        let q = unit("M.Q"); // dirty (recomputed)
        let mut r = unit("M.R"); // cached, no path to dirty
        r.from_cache = true;
        r.calls.push(call("Lib.X", &[], 40));
        let (_, stats) = lock_order_pass(&[p, q, r], FileId(0));
        assert_eq!(stats.units, 3);
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.from_cache, 2);
        assert_eq!(stats.dependents, 1);
    }
}
