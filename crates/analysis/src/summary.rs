//! Versioned, checksummed wire encoding for [`UnitSummary`] — the
//! per-procedure digest cached through `ccm2-incr`.
//!
//! The bytes ride inside an incremental cache entry as an *opaque*
//! field, so this format guards itself exactly like the outer entry
//! does:
//!
//! ```text
//! magic "CCM2LOCK" · version u32 · payload · checksum Fp128
//! ```
//!
//! Spans are encoded **relative to a caller-supplied base** (the
//! stream's carve start), mirroring how cached diagnostics store
//! carve-relative offsets: a cached summary stays valid when unrelated
//! edits shift the procedure inside the file, and the driver rebases it
//! at splice time via the same `carve.lo` it uses for diagnostics.
//!
//! Bumping [`SUMMARY_FORMAT_VERSION`] invalidates every cached summary:
//! the driver treats an undecodable summary as a cache miss for the
//! whole entry and recompiles that stream. `ci.sh` greps this constant
//! and requires the matching `summary_version_N_mismatch_invalidates`
//! test below, so the constant cannot change without the test renaming
//! to prove the invalidation path.

use ccm2_support::hash::Fp128;
use ccm2_support::source::Span;

use crate::callgraph::{CallSite, LockAcquire, UnitSummary};

/// Bump on ANY change to the summary encoding below, and rename the
/// `summary_version_N_mismatch_invalidates` test to match.
pub const SUMMARY_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"CCM2LOCK";

/// Why a summary blob was rejected. Every variant is a cache *miss*,
/// never a panic: the driver recompiles the stream and reports a Note.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryDecodeError {
    /// Shorter than magic + version + checksum.
    TooShort,
    /// Leading magic bytes are not `CCM2LOCK`.
    BadMagic,
    /// Encoded by a different summary format version.
    Version {
        /// The version found in the blob.
        found: u32,
    },
    /// Trailing checksum does not match the body.
    Checksum,
    /// Structurally invalid payload.
    Malformed(&'static str),
}

impl std::fmt::Display for SummaryDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummaryDecodeError::TooShort => write!(f, "summary truncated"),
            SummaryDecodeError::BadMagic => write!(f, "bad summary magic"),
            SummaryDecodeError::Version { found } => {
                write!(
                    f,
                    "summary format version {found} (expected {SUMMARY_FORMAT_VERSION})"
                )
            }
            SummaryDecodeError::Checksum => write!(f, "summary checksum mismatch"),
            SummaryDecodeError::Malformed(what) => write!(f, "malformed summary: {what}"),
        }
    }
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn strs(&mut self, v: &[String]) {
        self.u32(v.len() as u32);
        for s in v {
            self.str(s);
        }
    }

    fn span(&mut self, span: Span, base: u32) {
        self.u32(span.lo.saturating_sub(base));
        self.u32(span.hi.saturating_sub(base));
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = Result<T, SummaryDecodeError>;

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SummaryDecodeError::Malformed("out of bounds"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn str(&mut self) -> DecodeResult<String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| SummaryDecodeError::Malformed("non-utf8 string"))
    }

    fn strs(&mut self) -> DecodeResult<Vec<String>> {
        let n = self.u32()? as usize;
        let mut v = Vec::new();
        for _ in 0..n {
            v.push(self.str()?);
        }
        Ok(v)
    }

    fn span(&mut self, base: u32) -> DecodeResult<Span> {
        let lo = self.u32()?;
        let hi = self.u32()?;
        Ok(Span::new(base + lo, base + hi))
    }

    fn done(&self) -> DecodeResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SummaryDecodeError::Malformed("trailing bytes"))
        }
    }
}

/// Serializes one unit summary with spans stored relative to `base`
/// (the stream's carve start; pass 0 for absolute spans).
pub fn encode_summary(s: &UnitSummary, base: u32) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(64),
    };
    w.buf.extend_from_slice(MAGIC);
    w.u32(SUMMARY_FORMAT_VERSION);
    w.str(&s.unit);
    w.u32(s.acquires.len() as u32);
    for a in &s.acquires {
        w.strs(&a.held);
        w.str(&a.lock);
        w.span(a.span, base);
    }
    w.u32(s.calls.len() as u32);
    for c in &s.calls {
        w.strs(&c.held);
        w.str(&c.callee);
        w.span(c.span, base);
    }
    let checksum = Fp128::of(&w.buf);
    w.buf.extend_from_slice(&checksum.hi.to_le_bytes());
    w.buf.extend_from_slice(&checksum.lo.to_le_bytes());
    w.buf
}

/// Deserializes a summary, validating magic, checksum and version, and
/// rebasing every span onto `base`. Never panics on malformed input.
pub fn decode_summary(bytes: &[u8], base: u32) -> DecodeResult<UnitSummary> {
    if bytes.len() < MAGIC.len() + 4 + 16 {
        return Err(SummaryDecodeError::TooShort);
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 16);
    let mut hi = [0u8; 8];
    let mut lo = [0u8; 8];
    hi.copy_from_slice(&checksum_bytes[..8]);
    lo.copy_from_slice(&checksum_bytes[8..]);
    let stored = Fp128 {
        hi: u64::from_le_bytes(hi),
        lo: u64::from_le_bytes(lo),
    };
    if &body[..MAGIC.len()] != MAGIC {
        return Err(SummaryDecodeError::BadMagic);
    }
    if Fp128::of(body) != stored {
        return Err(SummaryDecodeError::Checksum);
    }
    let mut r = Reader {
        bytes: body,
        pos: MAGIC.len(),
    };
    let version = r.u32()?;
    if version != SUMMARY_FORMAT_VERSION {
        return Err(SummaryDecodeError::Version { found: version });
    }
    let unit = r.str()?;
    let n_acquires = r.u32()? as usize;
    let mut acquires = Vec::new();
    for _ in 0..n_acquires {
        let held = r.strs()?;
        let lock = r.str()?;
        let span = r.span(base)?;
        acquires.push(LockAcquire { held, lock, span });
    }
    let n_calls = r.u32()? as usize;
    let mut calls = Vec::new();
    for _ in 0..n_calls {
        let held = r.strs()?;
        let callee = r.str()?;
        let span = r.span(base)?;
        calls.push(CallSite { held, callee, span });
    }
    r.done()?;
    Ok(UnitSummary {
        unit,
        acquires,
        calls,
        from_cache: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UnitSummary {
        UnitSummary {
            unit: String::from("M.P"),
            acquires: vec![LockAcquire {
                held: vec![String::from("muA")],
                lock: String::from("muB"),
                span: Span::new(110, 140),
            }],
            calls: vec![CallSite {
                held: vec![String::from("muA"), String::from("muB")],
                callee: String::from("Q"),
                span: Span::new(120, 121),
            }],
            from_cache: false,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample();
        let bytes = encode_summary(&s, 0);
        let back = decode_summary(&bytes, 0).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn spans_rebase_through_base() {
        // Encode relative to carve start 100, splice back at 250.
        let s = sample();
        let bytes = encode_summary(&s, 100);
        let back = decode_summary(&bytes, 250).expect("roundtrip");
        assert_eq!(back.acquires[0].span, Span::new(260, 290));
        assert_eq!(back.calls[0].span, Span::new(270, 271));
    }

    #[test]
    fn summary_version_1_mismatch_invalidates() {
        // Guard: SUMMARY_FORMAT_VERSION must change in lockstep with the
        // encoding, and a version mismatch must read as a cache miss.
        // When bumping the constant, rename this test to the new version
        // after confirming old-format blobs are rejected.
        assert_eq!(SUMMARY_FORMAT_VERSION, 1);
        let bytes = encode_summary(&sample(), 0);
        // Forge a blob claiming the next version, checksum recomputed so
        // only the version check can reject it.
        let mut forged = bytes[..bytes.len() - 16].to_vec();
        let at = MAGIC.len();
        forged[at..at + 4].copy_from_slice(&(SUMMARY_FORMAT_VERSION + 1).to_le_bytes());
        let checksum = Fp128::of(&forged);
        forged.extend_from_slice(&checksum.hi.to_le_bytes());
        forged.extend_from_slice(&checksum.lo.to_le_bytes());
        assert_eq!(
            decode_summary(&forged, 0),
            Err(SummaryDecodeError::Version {
                found: SUMMARY_FORMAT_VERSION + 1
            })
        );
    }

    #[test]
    fn every_corruption_is_detected() {
        let bytes = encode_summary(&sample(), 0);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_summary(&bad, 0).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        for len in 0..bytes.len() {
            assert!(
                decode_summary(&bytes[..len], 0).is_err(),
                "truncation to {len} went undetected"
            );
        }
    }

    #[test]
    fn empty_summary_roundtrips() {
        let s = UnitSummary::new("M");
        let back = decode_summary(&encode_summary(&s, 0), 0).expect("roundtrip");
        assert_eq!(back, s);
    }
}
