//! Ablation benches for the design choices DESIGN.md calls out:
//! DKY strategy (§2.2, ~10% variation), heading information flow (§2.4,
//! alternative 3 ~3% slower), and the §4.2 concurrency overhead
//! (sequential vs 1-processor concurrent).

use criterion::{criterion_group, criterion_main, Criterion};

use ccm2::Options;
use ccm2_bench::{seq_virtual_time, sim_compile};
use ccm2_sema::declare::HeadingMode;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_workload::{generate, suite_params};

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let m = generate(&suite_params(15));

    for strategy in DkyStrategy::ALL {
        g.bench_function(format!("dky_{}", strategy.name()), |b| {
            b.iter(|| {
                sim_compile(
                    &m,
                    8,
                    Options {
                        strategy,
                        ..Options::default()
                    },
                )
            })
        });
    }

    for (name, mode) in [
        ("heading_copy_to_child", HeadingMode::CopyToChild),
        ("heading_reprocess", HeadingMode::Reprocess),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                sim_compile(
                    &m,
                    8,
                    Options {
                        heading_mode: mode,
                        ..Options::default()
                    },
                )
            })
        });
    }

    g.bench_function("overhead_seq_baseline", |b| b.iter(|| seq_virtual_time(&m)));
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
