//! Figures 4 & 7 bench: trace collection and WatchTool rendering, plus
//! the Figure 2 best-case (Synth) compilation.

use criterion::{criterion_group, criterion_main, Criterion};

use ccm2::Options;
use ccm2_bench::{sim_compile, sim_compile_src};
use ccm2_sched::render_watchtool;
use ccm2_workload::{generate, suite_params, synth_module, SynthParams};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    let m = generate(&suite_params(12));
    let run = sim_compile(&m, 8, Options::default());
    g.bench_function("fig4_render_watchtool", |b| {
        b.iter(|| render_watchtool(&run.report.trace, 8, 100))
    });

    let synth = synth_module(SynthParams {
        procedures: 32,
        stmts_per_proc: 40,
    });
    g.bench_function("fig2_synth_compile_p8", |b| {
        b.iter(|| sim_compile_src(&synth, 8))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
