//! Table 1 bench: suite generation and sequential compilation throughput
//! (the "Seq. Compile Time" column is derived from these code paths).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ccm2_workload::{generate, suite_params};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);

    g.bench_function("generate_median_module", |b| {
        b.iter(|| generate(&suite_params(18)))
    });

    let median = generate(&suite_params(18));
    g.bench_function("seq_compile_median_module", |b| {
        b.iter_batched(
            || (median.source.clone(), median.defs.clone()),
            |(src, defs)| {
                let out = ccm2_seq::compile(&src, &defs);
                assert!(out.is_ok());
                out
            },
            BatchSize::SmallInput,
        )
    });

    let small = generate(&suite_params(0));
    g.bench_function("seq_compile_smallest_module", |b| {
        b.iter(|| {
            let out = ccm2_seq::compile(&small.source, &small.defs);
            assert!(out.is_ok());
            out
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
