//! Table 2 bench: concurrent symbol-table search under each DKY strategy
//! (the mechanism whose statistics Table 2 reports).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use ccm2_sema::builtins::BuiltinTable;
use ccm2_sema::stats::LookupStats;
use ccm2_sema::symtab::{
    DkyStrategy, NullWaiter, Resolver, ScopeKind, SymbolEntry, SymbolKind, SymbolTables,
};
use ccm2_sema::types::TypeId;
use ccm2_sema::value::ConstValue;
use ccm2_support::source::{FileId, Span};
use ccm2_support::{Interner, NullMeter};

fn build_chain(
    interner: &Arc<Interner>,
    depth: usize,
    entries_per_scope: usize,
) -> (
    Arc<SymbolTables>,
    ccm2_support::ids::ScopeId,
    Vec<ccm2_support::intern::Symbol>,
) {
    let tables = Arc::new(SymbolTables::new());
    let mut parent = None;
    let mut innermost = None;
    let mut names = Vec::new();
    for d in 0..depth {
        let kind = if d == 0 {
            ScopeKind::MainModule
        } else {
            ScopeKind::Procedure
        };
        let scope = tables.new_scope(kind, interner.intern(&format!("S{d}")), parent, FileId(0));
        for e in 0..entries_per_scope {
            let name = interner.intern(&format!("v{d}x{e}"));
            names.push(name);
            tables
                .insert(
                    scope,
                    SymbolEntry {
                        name,
                        kind: SymbolKind::Const {
                            value: ConstValue::Int(e as i64),
                            ty: TypeId::INTEGER,
                        },
                        span: Span::default(),
                    },
                )
                .expect("fresh");
        }
        tables.mark_complete(scope);
        parent = Some(scope);
        innermost = Some(scope);
    }
    (tables, innermost.expect("depth >= 1"), names)
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_lookup");
    let interner = Arc::new(Interner::new());
    let (tables, inner, names) = build_chain(&interner, 6, 32);
    let builtin_name = interner.intern("TRUE");

    for strategy in DkyStrategy::ALL {
        let resolver = Resolver::new(
            Arc::clone(&tables),
            Arc::new(BuiltinTable::new(&interner)),
            Arc::new(LookupStats::new()),
            strategy,
            Arc::new(NullWaiter),
            Arc::new(NullMeter),
        );
        g.bench_function(format!("chain_search_{}", strategy.name()), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 17) % names.len();
                resolver.lookup(inner, names[i]).expect("found")
            })
        });
    }

    let resolver = Resolver::new(
        Arc::clone(&tables),
        Arc::new(BuiltinTable::new(&interner)),
        Arc::new(LookupStats::new()),
        DkyStrategy::Skeptical,
        Arc::new(NullWaiter),
        Arc::new(NullMeter),
    );
    g.bench_function("builtin_lookup", |b| {
        b.iter(|| resolver.lookup(inner, builtin_name).expect("builtin"))
    });
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
