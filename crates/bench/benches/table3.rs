//! Table 3 / Figures 1–3 bench: the simulated-multiprocessor compilation
//! that produces the speedup data, at 1 and 8 virtual processors, plus
//! the real threaded executor.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use ccm2::{compile_concurrent, Options};
use ccm2_bench::sim_compile;
use ccm2_support::Interner;
use ccm2_workload::{generate, suite_params};

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_speedup");
    g.sample_size(10);
    let m = generate(&suite_params(12));

    for procs in [1u32, 8] {
        g.bench_function(format!("sim_compile_p{procs}"), |b| {
            b.iter(|| sim_compile(&m, procs, Options::default()))
        });
    }

    g.bench_function("threaded_compile_w2", |b| {
        b.iter(|| {
            let out = compile_concurrent(
                &m.source,
                Arc::new(m.defs.clone()),
                Arc::new(Interner::new()),
                Options::threads(2),
            );
            assert!(out.is_ok());
            out
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
