//! `reproduce` — regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p ccm2-bench --bin reproduce -- all
//! cargo run --release -p ccm2-bench --bin reproduce -- table1 table2
//! cargo run --release -p ccm2-bench --bin reproduce -- table3 fig1 fig2 fig3
//! cargo run --release -p ccm2-bench --bin reproduce -- fig4 fig5 fig7
//! cargo run --release -p ccm2-bench --bin reproduce -- overhead dky headings workcrews
//! cargo run --release -p ccm2-bench --bin reproduce -- analyze
//! cargo run --release -p ccm2-bench --bin reproduce -- locks
//! cargo run --release -p ccm2-bench --bin reproduce -- incr
//! cargo run --release -p ccm2-bench --bin reproduce -- serve
//! cargo run --release -p ccm2-bench --bin reproduce -- fabric
//! cargo run --release -p ccm2-bench --bin reproduce -- chaosnet
//! cargo run --release -p ccm2-bench --bin reproduce -- chaosnet --heartbeat-ms=10
//! cargo run --release -p ccm2-bench --bin reproduce -- watch
//! cargo run --release -p ccm2-bench --bin reproduce -- faults
//! cargo run --release -p ccm2-bench --bin reproduce -- faults --list-sites
//! cargo run --release -p ccm2-bench --bin reproduce -- recover
//! cargo run --release -p ccm2-bench --bin reproduce -- sites
//! ```

use ccm2_bench as bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let all = args.contains(&"all");
    let want = |name: &str| all || args.contains(&name);

    if want("table1") {
        println!("{}\n", bench::table1());
    }
    if want("table2") {
        println!("{}\n", bench::table2());
    }
    // Table 3 and Figures 1-3 share one expensive measurement.
    let needs_speedups = want("table3") || want("fig1") || want("fig2") || want("fig3");
    if needs_speedups {
        eprintln!("measuring suite speedups (37 modules x 8 processor counts)...");
        let summary = bench::measure_all();
        if want("table3") {
            println!("{}\n", bench::table3(&summary));
        }
        if want("fig1") {
            println!("{}\n", bench::fig1(&summary));
        }
        if want("fig2") {
            println!("{}\n", bench::fig2(&summary));
        }
        if want("fig3") {
            println!("{}\n", bench::fig3(&summary));
        }
    }
    if want("fig4") {
        println!("{}\n", bench::fig4());
    }
    if want("fig5") {
        println!("{}\n", bench::fig5());
    }
    if want("fig7") {
        println!("{}\n", bench::fig7());
    }
    if want("overhead") {
        println!("{}\n", bench::overhead());
    }
    if want("dky") {
        println!("{}\n", bench::dky_strategies());
    }
    if want("headings") {
        println!("{}\n", bench::heading_alternatives());
    }
    if want("workcrews") {
        println!("{}\n", bench::workcrews());
    }
    if want("earlysplit") {
        println!("{}\n", bench::early_split());
    }
    if want("analyze") {
        println!("{}\n", bench::analyze());
    }
    if want("locks") {
        println!("{}\n", bench::locks());
    }
    if want("incr") {
        println!("{}\n", bench::incr());
    }
    if want("serve") {
        println!("{}\n", bench::serve());
    }
    if want("fabric") {
        println!("{}\n", bench::fabric());
    }
    if want("chaosnet") {
        // --heartbeat-ms=N tunes the wall-clock detector leg's period.
        let heartbeat_ms = args
            .iter()
            .find_map(|a| a.strip_prefix("--heartbeat-ms="))
            .and_then(|v| v.parse().ok())
            .unwrap_or(25);
        println!(
            "{}\n",
            bench::chaosnet_with(
                &[0xC4A0, 0xC4A1, 0xC4A2],
                heartbeat_ms,
                Some(std::path::Path::new("BENCH_chaosnet.json")),
            )
        );
    }
    if want("watch") {
        println!("{}\n", bench::watch());
    }
    if want("faults") && !args.contains(&"--list-sites") {
        println!("{}\n", bench::faults());
    }
    if want("recover") {
        println!("{}\n", bench::recover());
    }
    if want("sites") || args.contains(&"--list-sites") {
        println!("{}\n", bench::fault_sites());
    }
}
