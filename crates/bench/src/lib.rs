//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§4).
//!
//! Each `table*`/`fig*` function returns the formatted report the
//! `reproduce` binary prints; the underlying measurement functions return
//! data for the Criterion benches and integration tests. See DESIGN.md's
//! experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
//!
//! All speedup experiments run on the virtual-time simulator
//! ([`ccm2_sched::sim`]) with the calibrated Firefly cost model — the
//! evaluation host has one CPU, so wall-clock speedup is unobservable;
//! the simulator executes the real compiler tasks and charges their real
//! work (see DESIGN.md's substitution table).

use std::sync::Arc;

use ccm2::{compile_concurrent, ConcurrentOutput, Executor, Options};
use ccm2_sched::{render_watchtool, SimConfig};
use ccm2_sema::declare::HeadingMode;
use ccm2_sema::stats::LookupStats;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_support::defs::DefLibrary;
use ccm2_support::work::{CountingMeter, Work};
use ccm2_support::Interner;
use ccm2_workload::{generate_suite, suite_stats, synth_module, GeneratedModule, SynthParams};

/// Processor counts swept by the paper (Figures 1–3, Table 3).
pub const PROCS: [u32; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Compiles one module on the simulator with `procs` processors.
pub fn sim_compile(m: &GeneratedModule, procs: u32, options_base: Options) -> ConcurrentOutput {
    let mut options = options_base;
    options.executor = Executor::Sim(SimConfig::firefly(procs));
    let out = compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(Interner::new()),
        options,
    );
    assert!(
        out.is_ok(),
        "{} failed to compile: {:?}",
        m.name,
        &out.diagnostics[..out.diagnostics.len().min(3)]
    );
    out
}

/// Compiles one source string on the simulator.
pub fn sim_compile_src(source: &str, procs: u32) -> ConcurrentOutput {
    let out = compile_concurrent(
        source,
        Arc::new(DefLibrary::new()),
        Arc::new(Interner::new()),
        Options {
            executor: Executor::Sim(SimConfig::firefly(procs)),
            ..Options::default()
        },
    );
    assert!(
        out.is_ok(),
        "{:?}",
        &out.diagnostics[..out.diagnostics.len().min(3)]
    );
    out
}

/// The *sequential* compiler's virtual time for a module: its real work
/// units weighted by the same cost model (no scheduling overheads — that
/// difference is exactly the §4.2 "concurrency overhead" experiment).
pub fn seq_virtual_time(m: &GeneratedModule) -> u64 {
    let meter = Arc::new(CountingMeter::new());
    let out = ccm2_seq::compile_with(
        &m.source,
        &m.defs,
        Arc::new(Interner::new()),
        Arc::clone(&meter) as Arc<dyn ccm2_support::WorkMeter>,
        HeadingMode::CopyToChild,
    );
    assert!(
        out.is_ok(),
        "{}: {:?}",
        m.name,
        &out.diagnostics[..out.diagnostics.len().min(3)]
    );
    let cost = SimConfig::firefly(1).cost;
    Work::ALL
        .iter()
        .map(|&w| (meter.units(w) as f64 * cost[w as usize]).ceil() as u64)
        .sum()
}

/// Calibration constant mapping virtual units to the paper's "seconds":
/// chosen so the largest suite program lands near the paper's largest
/// sequential compile time (107.85 s).
pub fn units_per_second(suite_t1_max: u64) -> f64 {
    suite_t1_max as f64 / 107.85
}

/// One module's virtual compile times across processor counts.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Module name.
    pub name: String,
    /// `t[p-1]` = virtual time on `p` processors.
    pub t: Vec<u64>,
}

impl SpeedupRow {
    /// Self-relative speedup on `p` processors.
    pub fn speedup(&self, p: u32) -> f64 {
        self.t[0] as f64 / self.t[p as usize - 1] as f64
    }
}

/// Measures the whole suite across all processor counts (the bulk of the
/// evaluation; a few minutes of real time).
pub fn measure_suite(procs: &[u32]) -> Vec<SpeedupRow> {
    let suite = generate_suite();
    suite
        .iter()
        .map(|m| SpeedupRow {
            name: m.name.clone(),
            t: procs
                .iter()
                .map(|&p| {
                    sim_compile(m, p, Options::default())
                        .report
                        .virtual_time
                        .expect("sim time")
                })
                .collect(),
        })
        .collect()
}

/// Measures `Synth.mod` across processor counts.
pub fn measure_synth(procs: &[u32]) -> SpeedupRow {
    let src = synth_module(SynthParams::default());
    SpeedupRow {
        name: "Synth".to_string(),
        t: procs
            .iter()
            .map(|&p| {
                sim_compile_src(&src, p)
                    .report
                    .virtual_time
                    .expect("sim time")
            })
            .collect(),
    }
}

/// The paper's quartile sizes (0–5 s: 10 programs, 5–10 s: 8, 10–30 s:
/// 10, 30–109 s: 9). We split the suite by 1-processor-time rank into the
/// same group sizes.
pub const QUARTILE_SIZES: [usize; 4] = [10, 8, 10, 9];

/// Partitions suite rows (sorted by 1-processor time) into the paper's
/// quartile groups; returns per-quartile index lists.
pub fn quartiles(rows: &[SpeedupRow]) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by_key(|&i| rows[i].t[0]);
    let mut out = Vec::new();
    let mut at = 0;
    for &sz in &QUARTILE_SIZES {
        let take = sz.min(order.len().saturating_sub(at));
        out.push(order[at..at + take].to_vec());
        at += take;
    }
    out
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// Regenerates Table 1: gross characteristics of the test suite.
pub fn table1() -> String {
    let suite = generate_suite();
    let stats = suite_stats(&suite);
    let mut times: Vec<u64> = suite.iter().map(seq_virtual_time).collect();
    times.sort_unstable();
    let ups = units_per_second(*times.last().expect("nonempty"));
    let sec = |u: u64| u as f64 / ups;
    let mut out = String::new();
    out.push_str("Table 1: Description of Test Suite (regenerated)\n");
    out.push_str("Attribute                 |  Minimum |   Median |  Maximum\n");
    out.push_str("--------------------------+----------+----------+---------\n");
    out.push_str(&format!(
        "Module size (bytes)       | {:>8} | {:>8} | {:>8}\n",
        stats.size.0, stats.size.1, stats.size.2
    ));
    out.push_str(&format!(
        "Seq. Compile Time (sec)   | {:>8.2} | {:>8.2} | {:>8.2}\n",
        sec(times[0]),
        sec(times[times.len() / 2]),
        sec(times[times.len() - 1])
    ));
    out.push_str(&format!(
        "Imported Interfaces       | {:>8} | {:>8} | {:>8}\n",
        stats.interfaces.0, stats.interfaces.1, stats.interfaces.2
    ));
    out.push_str(&format!(
        "Import Nesting Depth      | {:>8} | {:>8} | {:>8}\n",
        stats.depth.0, stats.depth.1, stats.depth.2
    ));
    out.push_str(&format!(
        "Number of Procedures      | {:>8} | {:>8} | {:>8}\n",
        stats.procedures.0, stats.procedures.1, stats.procedures.2
    ));
    out.push_str(&format!(
        "Number of Streams         | {:>8} | {:>8} | {:>8}\n",
        stats.streams.0, stats.streams.1, stats.streams.2
    ));
    out.push_str(
        "(paper: sizes 2,371/13,180/336,312; time 2.30/10.27/107.85 s; \
         interfaces 4/17/133; depth 1/5/12; procedures 2/16/221; streams 15/37/315)\n",
    );
    out
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// Regenerates Table 2: identifier-lookup statistics for one compilation
/// of the whole test suite under Skeptical handling (8 processors).
pub fn table2() -> String {
    let suite = generate_suite();
    let total = LookupStats::new();
    for m in &suite {
        let out = sim_compile(m, 8, Options::default());
        total.merge(&out.stats);
    }
    let mut out = String::new();
    out.push_str("Table 2: Identifier Lookup Statistics (regenerated, Skeptical, 8 procs)\n\n");
    out.push_str("Simple identifiers:\n");
    out.push_str("Found when  scope   completeness |   number |     %\n");
    out.push_str("---------------------------------+----------+------\n");
    for (label, n, pct) in total.simple_rows() {
        out.push_str(&format!("{label:<33}| {n:>8} | {pct:>5.2}\n"));
    }
    out.push_str(&format!(
        "total simple lookups: {}\n\n",
        total.simple_total()
    ));
    out.push_str("Qualified identifiers:\n");
    out.push_str("Found when  completeness |   number |     %\n");
    out.push_str("-------------------------+----------+------\n");
    for (label, n, pct) in total.qualified_rows() {
        out.push_str(&format!("{label:<25}| {n:>8} | {pct:>5.2}\n"));
    }
    out.push_str(&format!(
        "total qualified lookups: {}\nDKY blockages: {}\n",
        total.qualified_total(),
        total.dky_blockages()
    ));
    out.push_str(
        "(paper: simple first-try-self 57.87%, builtin 15.14%, outer-search 17.73%, \
         after-DKY 0.08%; qualified first-try-complete 93.30%, after-DKY 2.70%)\n",
    );
    out
}

// ---------------------------------------------------------------------
// Table 3 / Figures 1–3
// ---------------------------------------------------------------------

/// The measured speedup summary backing Table 3 and Figures 1–3.
#[derive(Clone, Debug)]
pub struct SpeedupSummary {
    /// Per-module rows.
    pub rows: Vec<SpeedupRow>,
    /// `Synth.mod` row.
    pub synth: SpeedupRow,
    /// Index of the best human module ("VM" in the paper).
    pub best: usize,
    /// Quartile membership (indices into `rows`).
    pub quartiles: Vec<Vec<usize>>,
}

/// Measures everything Table 3 needs.
pub fn measure_all() -> SpeedupSummary {
    let rows = measure_suite(&PROCS);
    let synth = measure_synth(&PROCS);
    let best = (0..rows.len())
        .max_by(|&a, &b| {
            rows[a]
                .speedup(8)
                .partial_cmp(&rows[b].speedup(8))
                .expect("comparable")
        })
        .expect("nonempty suite");
    let quartiles = quartiles(&rows);
    SpeedupSummary {
        synth,
        best,
        quartiles,
        rows,
    }
}

/// Formats Table 3 from a measurement.
pub fn table3(s: &SpeedupSummary) -> String {
    let mut out = String::new();
    out.push_str("Table 3: Summary of Speedup Data (regenerated, self-relative)\n");
    out.push_str("  N |      Test Suite      | BestCase      |        Quartiles\n");
    out.push_str("    |  Min   Mean    Max   | Synth   Best  |   Q1    Q2    Q3    Q4\n");
    out.push_str("----+----------------------+---------------+------------------------\n");
    for &p in &PROCS[1..] {
        let speedups: Vec<f64> = s.rows.iter().map(|r| r.speedup(p)).collect();
        let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
        let max = speedups.iter().cloned().fold(0.0, f64::max);
        let mn = mean(speedups.iter().cloned());
        let q: Vec<f64> = s
            .quartiles
            .iter()
            .map(|ix| mean(ix.iter().map(|&i| s.rows[i].speedup(p))))
            .collect();
        out.push_str(&format!(
            "  {p} | {min:>5.2} {mn:>6.2} {max:>6.2} | {:>5.2} {:>6.2}  | {:>5.2} {:>5.2} {:>5.2} {:>5.2}\n",
            s.synth.speedup(p),
            s.rows[s.best].speedup(p),
            q[0],
            q[1],
            q[2],
            q[3],
        ));
    }
    out.push_str(
        "(paper at N=8: min 1.95, mean 4.34, max 5.47; Synth 6.67, VM 5.32; \
         Q1 2.43, Q2 2.89, Q3 4.19, Q4 5.02)\n",
    );
    out
}

/// Figure 1: test-suite self-relative speedup (min/mean/max curves).
pub fn fig1(s: &SpeedupSummary) -> String {
    let mut out = String::from("Figure 1: Test Suite Self Relative Speedup\n");
    out.push_str(&ascii_curves(
        &PROCS,
        &[
            (
                "mean",
                PROCS
                    .iter()
                    .map(|&p| mean(s.rows.iter().map(|r| r.speedup(p))))
                    .collect(),
            ),
            (
                "min",
                PROCS
                    .iter()
                    .map(|&p| s.rows.iter().map(|r| r.speedup(p)).fold(f64::MAX, f64::min))
                    .collect(),
            ),
            (
                "max",
                PROCS
                    .iter()
                    .map(|&p| s.rows.iter().map(|r| r.speedup(p)).fold(0.0, f64::max))
                    .collect(),
            ),
        ],
    ));
    out
}

/// Figure 2: best-case speedup (Synth, best module, linear reference).
pub fn fig2(s: &SpeedupSummary) -> String {
    let mut out = String::from("Figure 2: Best Case Self Relative Speedup\n");
    out.push_str(&ascii_curves(
        &PROCS,
        &[
            ("linear", PROCS.iter().map(|&p| p as f64).collect()),
            ("Synth", PROCS.iter().map(|&p| s.synth.speedup(p)).collect()),
            (
                "best module",
                PROCS.iter().map(|&p| s.rows[s.best].speedup(p)).collect(),
            ),
        ],
    ));
    out
}

/// Figure 3: speedup by compile-time quartiles.
pub fn fig3(s: &SpeedupSummary) -> String {
    let mut out = String::from("Figure 3: Speedup by Quartiles\n");
    let curves: Vec<(String, Vec<f64>)> = s
        .quartiles
        .iter()
        .enumerate()
        .map(|(qi, ix)| {
            (
                format!("Q{}", qi + 1),
                PROCS
                    .iter()
                    .map(|&p| mean(ix.iter().map(|&i| s.rows[i].speedup(p))))
                    .collect(),
            )
        })
        .collect();
    let refs: Vec<(&str, Vec<f64>)> = curves
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    out.push_str(&ascii_curves(&PROCS, &refs));
    out
}

/// Renders small ASCII speedup-vs-processors curves.
fn ascii_curves(procs: &[u32], curves: &[(&str, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str("  N |");
    for (name, _) in curves {
        out.push_str(&format!(" {name:>11} |"));
    }
    out.push('\n');
    for (ix, &p) in procs.iter().enumerate() {
        out.push_str(&format!("  {p} |"));
        for (_, v) in curves {
            out.push_str(&format!(" {:>11.2} |", v[ix]));
        }
        out.push('\n');
    }
    let max = curves
        .iter()
        .flat_map(|(_, v)| v.iter().cloned())
        .fold(1.0, f64::max);
    for (name, v) in curves {
        out.push_str(&format!("{name:>14}: "));
        for val in v {
            let h = ((val / max) * 40.0).round() as usize;
            out.push_str(&format!("{}|", "=".repeat(h)));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Figures 4, 5, 7
// ---------------------------------------------------------------------

/// Figure 4: WatchTool snapshots — one compilation per quartile plus
/// `Synth.mod`, on 8 simulated processors.
pub fn fig4() -> String {
    let suite = generate_suite();
    let mut rows: Vec<(usize, u64)> = suite
        .iter()
        .enumerate()
        .map(|(i, m)| (i, seq_virtual_time(m)))
        .collect();
    rows.sort_by_key(|&(_, t)| t);
    let picks = [
        rows[rows.len() / 8].0,
        rows[rows.len() * 3 / 8].0,
        rows[rows.len() * 5 / 8].0,
        rows[rows.len() * 7 / 8].0,
    ];
    let mut out = String::from(
        "Figure 4: WatchTool snapshots (8 processors; one program per quartile, then Synth)\n\n",
    );
    for (qi, &i) in picks.iter().enumerate() {
        let m = &suite[i];
        let run = sim_compile(m, 8, Options::default());
        out.push_str(&format!(
            "-- Q{} ({}; {} streams, vtime {}):\n{}\n",
            qi + 1,
            m.name,
            run.streams,
            run.report.virtual_time.expect("sim"),
            render_watchtool(&run.report.trace, 8, 100)
        ));
    }
    let synth = synth_module(SynthParams::default());
    let run = sim_compile_src(&synth, 8);
    out.push_str(&format!(
        "-- Synth.mod (vtime {}):\n{}\n",
        run.report.virtual_time.expect("sim"),
        render_watchtool(&run.report.trace, 8, 100)
    ));
    out
}

/// Figure 5: the task structure per stream kind (structural; printed from
/// the implementation rather than measured).
pub fn fig5() -> String {
    "Figure 5: Compiler Task Structure (as implemented)\n\
     \n\
     definition-module stream   implementation stream      procedure stream\n\
     ------------------------   ---------------------      ----------------\n\
     Lexor(def)                 Lexor(main)                (tokens from Splitter)\n\
     Importer(def)              Importer(main)\n\
     Parser/DeclAnalyzer(def)   Splitter ----------------> [stream created,\n\
                                Parser/DeclAnalyzer(main)   gated on heading event]\n\
                                StmtAnalyzer/CodeGen(body) Parser/DeclAnalyzer(proc)\n\
                                                           StmtAnalyzer/CodeGen(proc)\n\
     \n\
     All streams feed the Merge step (concatenation of per-procedure code\n\
     units, any order). 2-5 tasks per stream, as in the paper.\n\
     Priority order (2.3.4, extended): Lexor > Splitter > CacheSplice >\n\
     Importer > DefModParse > ModuleParse > ProcParse > Analyze >\n\
     LongCodeGen > ShortCodeGen > Merge. CacheSplice (warm incremental\n\
     runs) outranks everything that follows the split so cached units\n\
     land before live parsing competes for workers; Analyze slots between\n\
     parsing and code generation.\n"
        .to_string()
}

/// Figure 7: the activity view of one typical large compilation.
pub fn fig7() -> String {
    let suite = generate_suite();
    let m = &suite[30];
    let run = sim_compile(m, 8, Options::default());
    format!(
        "Figure 7: Concurrent Compiler Processor Activity ({}, 8 processors)\n\
         {}\nutilization: {:.2}  tasks: {}  vtime: {}\n\
         (expected shape: lexing early; def-module and main parses in the\n\
         middle; a lull while DKYs and procedure headings resolve; then\n\
         dense statement-analysis/code-generation to the end)\n",
        m.name,
        render_watchtool(&run.report.trace, 8, 110),
        run.report.trace.utilization(8),
        run.report.tasks_run,
        run.report.virtual_time.expect("sim"),
    )
}

// ---------------------------------------------------------------------
// Text experiments: overhead, DKY strategies, heading alternatives
// ---------------------------------------------------------------------

/// §4.2: concurrent compiler on one processor vs the sequential compiler
/// (paper: 4.3% slower).
pub fn overhead() -> String {
    let suite = generate_suite();
    let mut ratios = Vec::new();
    let mut out = String::from("Concurrency overhead: sim(1 processor) vs sequential compiler\n");
    for m in &suite {
        let seq = seq_virtual_time(m);
        let conc = sim_compile(m, 1, Options::default())
            .report
            .virtual_time
            .expect("sim");
        ratios.push(conc as f64 / seq as f64);
    }
    let mean_ratio = mean(ratios.iter().cloned());
    out.push_str(&format!(
        "mean slowdown: {:.1}% (paper: 4.3%); range {:.1}%..{:.1}%\n",
        (mean_ratio - 1.0) * 100.0,
        (ratios.iter().cloned().fold(f64::MAX, f64::min) - 1.0) * 100.0,
        (ratios.iter().cloned().fold(0.0, f64::max) - 1.0) * 100.0,
    ));
    out
}

/// §2.2: DKY strategy choice caused about 10% variation in compiler
/// performance.
pub fn dky_strategies() -> String {
    let suite = generate_suite();
    // The larger half of the suite exercises DKY meaningfully.
    let subset: Vec<&GeneratedModule> = suite.iter().skip(18).collect();
    let mut out =
        String::from("DKY strategy comparison (8 processors, total suite virtual time)\n");
    let mut totals = Vec::new();
    for strategy in DkyStrategy::ALL {
        let total: u64 = subset
            .iter()
            .map(|m| {
                sim_compile(
                    m,
                    8,
                    Options {
                        strategy,
                        ..Options::default()
                    },
                )
                .report
                .virtual_time
                .expect("sim")
            })
            .sum();
        totals.push((strategy, total));
        out.push_str(&format!("  {:<12} {total:>12} units\n", strategy.name()));
    }
    let best = totals.iter().map(|&(_, t)| t).min().expect("nonempty");
    let worst = totals.iter().map(|&(_, t)| t).max().expect("nonempty");
    out.push_str(&format!(
        "variation worst/best: {:.1}% (paper: about 10%)\n",
        (worst as f64 / best as f64 - 1.0) * 100.0
    ));
    out
}

/// §2.4: heading alternative 3 (reprocess in both scopes) vs alternative 1
/// (copy to child) — paper: about 3% slower — plus the dual mode (copy +
/// child-side verification), which pays the verification in the child
/// where alternative 3 already parses the heading.
pub fn heading_alternatives() -> String {
    let suite = generate_suite();
    let subset: Vec<&GeneratedModule> = suite.iter().skip(18).collect();
    let mut out = String::from("Procedure-heading information flow (2.4), 8 processors\n");
    let mut totals = Vec::new();
    for (label, mode) in [
        ("alternative 1 (copy to child)", HeadingMode::CopyToChild),
        ("dual (copy + child verify)", HeadingMode::Dual),
        ("alternative 3 (reprocess)", HeadingMode::Reprocess),
    ] {
        let total: u64 = subset
            .iter()
            .map(|m| {
                sim_compile(
                    m,
                    8,
                    Options {
                        heading_mode: mode,
                        ..Options::default()
                    },
                )
                .report
                .virtual_time
                .expect("sim")
            })
            .sum();
        totals.push(total);
        out.push_str(&format!("  {label:<32} {total:>12} units\n"));
    }
    out.push_str(&format!(
        "alternative 3 slower by: {:.1}% (paper: about 3%)\n",
        (totals[2] as f64 / totals[0] as f64 - 1.0) * 100.0
    ));
    out.push_str(&format!(
        "dual verification overhead: {:.1}% (bounded by alternative 3's {:.1}%)\n",
        (totals[1] as f64 / totals[0] as f64 - 1.0) * 100.0,
        (totals[2] as f64 / totals[0] as f64 - 1.0) * 100.0
    ));
    out
}

/// §2.3.2 ablation: Supervisors (blocked workers are rescheduled onto
/// eligible tasks) versus plain WorkCrews (blocked workers just wait).
/// The paper extended WorkCrews precisely because compiler tasks block;
/// with rescheduling disabled, some compilations get slower and some
/// wedge outright (every processor stuck on a DKY chain) — which is the
/// point.
pub fn workcrews() -> String {
    let suite = generate_suite();
    let picks = [8usize, 18, 26, 30];
    let mut out = String::from(
        "Supervisors vs plain WorkCrews (8 processors; rescheduling of blocked workers off)\n",
    );
    for &i in &picks {
        let m = &suite[i];
        let supervisors = sim_compile(m, 8, Options::default())
            .report
            .virtual_time
            .expect("sim");
        let mut cfg = SimConfig::firefly(8);
        cfg.reschedule_blocked = false;
        let m2 = m.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let out = compile_concurrent(
                &m2.source,
                Arc::new(m2.defs.clone()),
                Arc::new(Interner::new()),
                Options {
                    executor: Executor::Sim(cfg),
                    ..Options::default()
                },
            );
            out.report.virtual_time.expect("sim")
        }));
        match result {
            Ok(workcrews) => out.push_str(&format!(
                "  {:<10} supervisors {:>9}  workcrews {:>9}  (+{:.1}%)\n",
                m.name,
                supervisors,
                workcrews,
                (workcrews as f64 / supervisors as f64 - 1.0) * 100.0
            )),
            Err(_) => out.push_str(&format!(
                "  {:<10} supervisors {:>9}  workcrews DEADLOCKED (all workers blocked)\n",
                m.name, supervisors
            )),
        }
    }
    out.push_str(
        "(the paper extended WorkCrews to handle blockable tasks for exactly this reason)\n",
    );
    out
}

// ---------------------------------------------------------------------
// Static analysis: lint counts and analysis-phase speedup
// ---------------------------------------------------------------------

/// The lint categories `ccm2-analysis` emits, with the message substring
/// that identifies each (used only for report bucketing).
pub const LINT_CATEGORIES: [(&str, &str); 6] = [
    ("use-before-init", "before initialization"),
    ("unreachable", "unreachable code after"),
    ("unused-local", "unused local declaration"),
    ("unused-import", "unused import"),
    ("nested-re-lock", "nested re-LOCK"),
    ("lock-re-entry", "may re-enter the locking module"),
];

/// The elapsed span covered by `Analyze` tasks in a sim trace: last end
/// minus first start. Total analysis *work* is constant across processor
/// counts; the span shrinks as the per-procedure lint passes overlap.
pub fn analysis_span(trace: &ccm2_sched::Trace) -> u64 {
    let mut lo = u64::MAX;
    let mut hi = 0;
    for s in &trace.segments {
        if s.kind == ccm2_sched::TaskKind::Analyze {
            lo = lo.min(s.start);
            hi = hi.max(s.end);
        }
    }
    hi.saturating_sub(lo.min(hi))
}

/// Regenerates the static-analysis report: per-category lint counts over
/// the lint-seeded 37-module suite (sequential reference vs the
/// concurrent compiler), and the analysis-phase speedup on 1–8 simulated
/// processors.
pub fn analyze() -> String {
    let suite: Vec<GeneratedModule> = (0..ccm2_workload::SUITE_SIZE)
        .map(|i| {
            let mut p = ccm2_workload::suite_params(i);
            p.lint_seeds = true;
            ccm2_workload::generate(&p)
        })
        .collect();
    let mut out =
        String::from("Static analysis over the 37-module suite (lint-seeded variant)\n\n");

    // Lint counts: sequential reference, then the concurrent compiler on
    // 8 simulated processors — the totals must agree.
    let mut seq_counts = [0usize; LINT_CATEGORIES.len()];
    let mut conc_counts = [0usize; LINT_CATEGORIES.len()];
    let mut seq_total = 0usize;
    let mut conc_total = 0usize;
    for m in &suite {
        let seq = ccm2_seq::compile_full(
            &m.source,
            &m.defs,
            Arc::new(Interner::new()),
            Arc::new(ccm2_support::work::NullMeter),
            HeadingMode::CopyToChild,
            true,
        );
        assert!(
            seq.is_ok(),
            "{}: {:?}",
            m.name,
            &seq.diagnostics[..3.min(seq.diagnostics.len())]
        );
        let conc = sim_compile(
            m,
            8,
            Options {
                analyze: true,
                ..Options::default()
            },
        );
        for (diags, counts, total) in [
            (&seq.diagnostics, &mut seq_counts, &mut seq_total),
            (&conc.diagnostics, &mut conc_counts, &mut conc_total),
        ] {
            for d in diags.iter() {
                for (ix, (_, needle)) in LINT_CATEGORIES.iter().enumerate() {
                    if d.message.contains(needle) {
                        counts[ix] += 1;
                        *total += 1;
                    }
                }
            }
        }
    }
    out.push_str("Lint category     | sequential | concurrent(8)\n");
    out.push_str("------------------+------------+--------------\n");
    for (ix, (label, _)) in LINT_CATEGORIES.iter().enumerate() {
        out.push_str(&format!(
            "{label:<18}| {:>10} | {:>13}\n",
            seq_counts[ix], conc_counts[ix]
        ));
    }
    out.push_str(&format!(
        "total             | {seq_total:>10} | {conc_total:>13}  ({})\n\n",
        if seq_counts == conc_counts {
            "identical"
        } else {
            "MISMATCH"
        }
    ));

    // Analysis-phase speedup: elapsed Analyze span summed over the suite,
    // per processor count.
    let spans: Vec<u64> = PROCS
        .iter()
        .map(|&p| {
            suite
                .iter()
                .map(|m| {
                    analysis_span(
                        &sim_compile(
                            m,
                            p,
                            Options {
                                analyze: true,
                                ..Options::default()
                            },
                        )
                        .report
                        .trace,
                    )
                })
                .sum()
        })
        .collect();
    out.push_str("Analysis-phase elapsed span (suite total, virtual units)\n");
    out.push_str("  N |        span |  speedup\n");
    out.push_str("----+-------------+---------\n");
    for (ix, &p) in PROCS.iter().enumerate() {
        out.push_str(&format!(
            "  {p} | {:>11} | {:>7.2}\n",
            spans[ix],
            spans[0] as f64 / spans[ix] as f64
        ));
    }
    out.push_str(
        "(per-procedure lint passes run as Supervisors tasks and overlap on\n\
         multiple processors; the span at N=8 must beat N=1)\n",
    );
    out
}

/// §2.1 ablation: *early* splitting (during lexical analysis, the paper's
/// contribution) versus splitting at parse time (prior designs — all
/// parsing and declaration analysis serialized, code generation still
/// parallel per procedure).
pub fn early_split() -> String {
    let suite = generate_suite();
    let picks = [12usize, 22, 30, 36];
    let mut out = String::from(
        "Early splitting (2.1) vs splitting during parsing (8 processors, speedup vs 1 processor)\n",
    );
    for &i in &picks {
        let m = &suite[i];
        let t1 = sim_compile(m, 1, Options::default())
            .report
            .virtual_time
            .expect("sim");
        let with_split = sim_compile(m, 8, Options::default())
            .report
            .virtual_time
            .expect("sim");
        let without = sim_compile(
            m,
            8,
            Options {
                early_split: false,
                ..Options::default()
            },
        )
        .report
        .virtual_time
        .expect("sim");
        out.push_str(&format!(
            "  {:<10} early-split {:>5.2}x   parse-time split {:>5.2}x\n",
            m.name,
            t1 as f64 / with_split as f64,
            t1 as f64 / without as f64,
        ));
    }
    out.push_str(
        "(the paper credits its speedups to aggressive early splitting; prior\n\
         compilers that split during parsing saturate at the serial front end —\n\
         compare Vandevoorde's 2.5–3.3x on large programs)\n",
    );
    out
}

/// Incremental recompilation report: cold-vs-warm virtual time over the
/// 37-module suite after a one-procedure edit, at P ∈ {1, 4, 8}.
///
/// Cold populates an empty in-memory store; warm rebuilds the whole
/// suite after one procedure body of one module changed, so every other
/// stream resplices from the cache. The warm/cold ratio isolates what
/// the cache saves *on top of* task-level concurrency.
pub fn incr() -> String {
    use ccm2_incr::{ArtifactStore, IncrStats, MemStore};
    use ccm2_workload::{apply_edits, body_edits};

    let suite = generate_suite();
    let edited_index = 17;
    let edited = apply_edits(&suite[edited_index], &body_edits(1, 0xED17));
    assert_ne!(suite[edited_index].source, edited.source, "edit must land");
    let mut out = String::from(
        "Incremental recompilation (content-addressed cache, in-memory store)\n\
         cold: full 37-module suite against an empty store;\n\
         warm: full rebuild after editing one procedure body in suite[17]\n\n",
    );
    out.push_str("  N |   cold time |   warm time | speedup | hit rate | spliced | recompiled\n");
    out.push_str("----+-------------+-------------+---------+----------+---------+-----------\n");
    for &p in &[1u32, 4, 8] {
        let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
        let opts = || Options {
            incremental: Some(Arc::clone(&store)),
            ..Options::default()
        };
        let mut cold_total = 0u64;
        for m in &suite {
            cold_total += sim_compile(m, p, opts()).report.virtual_time.expect("sim");
        }
        let mut warm_total = 0u64;
        let mut stats = IncrStats::default();
        for (i, m) in suite.iter().enumerate() {
            let target = if i == edited_index { &edited } else { m };
            let w = sim_compile(target, p, opts());
            warm_total += w.report.virtual_time.expect("sim");
            stats.absorb(w.incr.expect("incremental active"));
        }
        out.push_str(&format!(
            "  {p} | {cold_total:>11} | {warm_total:>11} | {:>6.2}x | {:>7.1}% | {:>7} | {:>10}\n",
            cold_total as f64 / warm_total as f64,
            100.0 * stats.hit_rate(),
            stats.spliced,
            stats.recompiled,
        ));
    }
    out.push_str(
        "(a warm rebuild replaces each hit stream's Parser/DeclAnalyzer and\n\
         StmtAnalyzer/CodeGen tasks with one CacheSplice task; only the edited\n\
         procedure — plus any procedures nested inside it — recompiles)\n",
    );
    out
}

/// The `reproduce -- locks` experiment: the interprocedural lock-order
/// analysis end to end. Proves (1) the static diagnostics are
/// byte-identical across the sequential compiler and the concurrent one
/// under all 4 DKY strategies × both executors; (2) every runtime
/// deadlock the wait-for-graph detector finds on the seeded drill set
/// is also predicted statically — zero false negatives; (3) a warm
/// incremental re-analysis after a single-procedure edit recomputes
/// only the dirty summary plus its fixpoint dependents.
pub fn locks() -> String {
    use ccm2_incr::{ArtifactStore, MemStore};
    use ccm2_sched::WaitForGraph;
    use ccm2_support::ids::EventId;

    let m = ccm2_workload::generate(&ccm2_workload::GenParams {
        lock_seeds: true,
        ..ccm2_workload::GenParams::small("Lk", 0x10C)
    });
    // Interner-independent rendering; every lock diagnostic lives in
    // Main.mod, which is FileId(0) in both compilers.
    let render = |diags: &[ccm2_support::diag::Diagnostic]| -> Vec<String> {
        diags
            .iter()
            .filter(|d| d.file == ccm2_support::source::FileId(0))
            .map(|d| {
                format!(
                    "{:?}@{}..{}: {}",
                    d.severity, d.span.lo, d.span.hi, d.message
                )
            })
            .collect()
    };

    let seq = ccm2_seq::compile_full(
        &m.source,
        &m.defs,
        Arc::new(Interner::new()),
        Arc::new(ccm2_support::work::NullMeter),
        HeadingMode::CopyToChild,
        true,
    );
    assert!(
        seq.is_ok(),
        "{:?}",
        &seq.diagnostics[..seq.diagnostics.len().min(3)]
    );
    let baseline = render(&seq.diagnostics);
    let s = seq.locks.clone().expect("analysis ran");
    let lock_msgs: Vec<String> = seq
        .diagnostics
        .iter()
        .filter(|d| d.message.contains("lock-order cycle") || d.message.contains("may re-LOCK"))
        .map(|d| d.message.clone())
        .collect();
    let mut out =
        String::from("Interprocedural lock-order analysis (call graph + procedure summaries)\n\n");
    out.push_str(&format!(
        "static pass over the seeded module: {} units, {} fixpoint rounds,\n\
         {} lock-order edges, {} cycle(s), {} finding(s)\n\n",
        s.units, s.rounds, s.edges, s.cycles, s.findings
    ));

    // (1) Determinism matrix: seq vs every strategy × both executors.
    out.push_str("diagnostic byte-identity vs sequential reference\n");
    out.push_str("  strategy    |    sim(3) | threads(2)\n");
    out.push_str("--------------+-----------+-----------\n");
    for strategy in DkyStrategy::ALL {
        let mut cells: Vec<&str> = Vec::new();
        for threads in [false, true] {
            let options = Options {
                analyze: true,
                strategy,
                executor: if threads {
                    Executor::Threads(2)
                } else {
                    Executor::Sim(SimConfig::firefly(3))
                },
                ..Options::default()
            };
            let conc = compile_concurrent(
                &m.source,
                Arc::new(m.defs.clone()),
                Arc::new(Interner::new()),
                options,
            );
            assert!(conc.is_ok(), "{strategy:?}: {:?}", &conc.diagnostics[..3]);
            assert_eq!(
                render(&conc.diagnostics),
                baseline,
                "{strategy:?} threads={threads}: diagnostics diverged"
            );
            assert_eq!(
                conc.locks.as_ref().map(|l| l.findings),
                Some(s.findings),
                "{strategy:?} threads={threads}: finding count diverged"
            );
            cells.push("identical");
        }
        out.push_str(&format!(
            "  {:<11} | {:>9} | {:>9}\n",
            format!("{strategy:?}"),
            cells[0],
            cells[1]
        ));
    }

    // (2) Runtime cross-validation: drive the executors' wait-for-graph
    // detector with each drill schedule (thread holds its outer lock,
    // waits for the one its callee acquires) and check the runtime
    // verdict against the static prediction.
    out.push_str("\nruntime wait-for-graph drills vs static prediction\n");
    out.push_str("  scenario     | runtime  | static    | verdict\n");
    out.push_str("---------------+----------+-----------+--------\n");
    for sc in ccm2_workload::lock_seed_scenarios() {
        let mut locks_seen: Vec<&str> = Vec::new();
        let mut id_of = |lock: &'static str| -> EventId {
            match locks_seen.iter().position(|&l| l == lock) {
                Some(i) => EventId(i as u32),
                None => {
                    locks_seen.push(lock);
                    EventId((locks_seen.len() - 1) as u32)
                }
            }
        };
        let mut g = WaitForGraph::new();
        for &(entry, held, wants) in &sc.threads {
            let held_ev = id_of(held);
            let wants_ev = id_of(wants);
            g.add_waiter(entry, vec![wants_ev]);
            g.add_signaler(held_ev, entry);
            g.name_event(held_ev, held);
            g.name_event(wants_ev, wants);
        }
        let runtime = g.find_cycle();
        assert_eq!(
            runtime.is_some(),
            sc.deadlocks,
            "{}: runtime verdict unexpected",
            sc.name
        );
        let predicted = match sc.cycle.len() {
            0 => false,
            1 => lock_msgs.iter().any(|msg| {
                msg.contains("may re-LOCK") && msg.contains(&format!("`{}`", sc.cycle[0]))
            }),
            _ => lock_msgs.iter().any(|msg| {
                msg.contains("lock-order cycle")
                    && sc.cycle.iter().all(|l| msg.contains(&format!("`{l}`")))
            }),
        };
        // The acceptance bar: zero static false negatives on the drills.
        assert!(
            !sc.deadlocks || predicted,
            "{}: runtime deadlock NOT statically predicted (false negative)",
            sc.name
        );
        out.push_str(&format!(
            "  {:<12} | {:<8} | {:<9} | {}\n",
            sc.name,
            if sc.deadlocks { "deadlock" } else { "clean" },
            if predicted { "predicted" } else { "silent" },
            if sc.deadlocks == predicted {
                "agree"
            } else {
                "static-only" // sound over-approximation on a partial schedule
            }
        ));
    }

    // (3) Incremental re-analysis: cold, warm, and warm after editing
    // one grabber's body. Diagnostics stay identical; only the dirty
    // summary is recomputed and only its callers re-propagate.
    let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
    let opts = || Options {
        analyze: true,
        incremental: Some(Arc::clone(&store)),
        ..Options::default()
    };
    let cold = sim_compile(&m, 4, opts());
    let warm = sim_compile(&m, 4, opts());
    assert_eq!(
        render(&warm.diagnostics),
        render(&cold.diagnostics),
        "warm diagnostics diverged from cold"
    );
    let mut edited = m.clone();
    edited.source = m.source.replacen(
        "LOCK lkC DO l0 := p0 + p1 END",
        "LOCK lkC DO l0 := p0 + p1 + 1 END",
        1,
    );
    assert_ne!(edited.source, m.source, "edit must land");
    let warm_edit = sim_compile(&edited, 4, opts());
    let [cs, ws, es] = [&cold, &warm, &warm_edit].map(|o| o.locks.clone().expect("stats"));
    out.push_str("\nincremental summary cache (edit = LockGrabC body)\n");
    out.push_str("  run             | units | computed | cached | dependents\n");
    out.push_str("------------------+-------+----------+--------+-----------\n");
    for (label, st) in [("cold", &cs), ("warm", &ws), ("warm after edit", &es)] {
        out.push_str(&format!(
            "  {label:<15} | {:>5} | {:>8} | {:>6} | {:>10}\n",
            st.units, st.computed, st.from_cache, st.dependents
        ));
    }
    assert_eq!(cs.from_cache, 0, "cold run must compute everything");
    assert_eq!(
        ws.computed, 1,
        "plain warm run recomputes only the module unit (its analysis always runs live)"
    );
    assert_eq!(
        es.computed, 2,
        "warm edit recomputes the module unit and the edited procedure"
    );
    assert_eq!(
        es.dependents, 1,
        "exactly one cached caller (LockEdgeBC) re-propagates"
    );
    assert!(
        render(&warm_edit.diagnostics)
            .iter()
            .any(|d| d.contains("lock-order cycle")),
        "cycle prediction must survive the warm re-analysis"
    );
    out.push_str(
        "(the plain warm run replays every procedure summary from the cache;\n\
         after the edit only the dirty grabber is recomputed and its one\n\
         cached caller re-propagates — diagnostics byte-identical throughout)\n",
    );
    out
}

/// The `reproduce -- serve` experiment: drives the `ccm2-serve` compile
/// service with the seeded many-client load and reports throughput,
/// single-flight dedup ratio, shared-store hit rate and eviction
/// behaviour. Also proves service outputs byte-identical to standalone
/// compiles under all 4 DKY strategies × both executors.
pub fn serve() -> String {
    serve_with(
        &ccm2_workload::ServeLoadParams::default(),
        ccm2_serve::ServeConfig {
            workers: 2,
            queue_capacity: 16,
            store_budget: 8 * 1024,
            paused: false,
            ..ccm2_serve::ServeConfig::default()
        },
    )
}

/// [`serve`] with explicit load parameters and service configuration
/// (tests use a smaller load).
pub fn serve_with(
    load: &ccm2_workload::ServeLoadParams,
    config: ccm2_serve::ServeConfig,
) -> String {
    use ccm2_serve::{CompileRequest, CompileService, ExecChoice, Response};
    use ccm2_workload::serve_load;
    use std::collections::HashMap;

    let mut out =
        String::from("Compile service (ccm2-serve): seeded many-client edit/rebuild load\n");
    out.push_str(&format!(
        "  load: projects={} clients={} events={} edit every {} (interface every {}th edit), seed {:#x}\n",
        load.projects, load.clients, load.events, load.edit_every, load.interface_every, load.seed
    ));
    out.push_str(&format!(
        "  service: workers={} queue_capacity={} store_budget={} B\n\n",
        config.workers, config.queue_capacity, config.store_budget
    ));

    // Part 1 — equivalence matrix: every DKY strategy x both executors,
    // served outcome vs a standalone compile_concurrent of the same
    // request (no service, no shared store).
    let probe = ccm2_workload::generate(&ccm2_workload::GenParams::small("ServeEq", 0xE9));
    let execs = [ExecChoice::Sim(4), ExecChoice::Threads(2)];
    out.push_str("equivalence: served output vs standalone compile\n");
    let svc = CompileService::start(config);
    for strategy in DkyStrategy::ALL {
        for exec in execs {
            let req = CompileRequest {
                client: 0,
                module: probe.name.clone(),
                source: probe.source.clone(),
                defs: Arc::new(probe.defs.clone()),
                strategy,
                exec,
                analyze: false,
                faults: None,
                task_deadline: None,
                max_stream_retries: 0,
            };
            let served = svc.submit(req.clone()).ticket().expect("admitted").wait();
            let standalone = standalone_compile(&req);
            assert_eq!(
                (served.object.clone(), served.diagnostics.clone()),
                standalone,
                "served != standalone for {} / {}",
                strategy.name(),
                exec.name()
            );
            out.push_str(&format!(
                "  {:<11} x {:<10} : identical ({} B object)\n",
                strategy.name(),
                exec.name(),
                served.object.as_ref().map(Vec::len).unwrap_or(0)
            ));
        }
    }
    drop(svc);

    // Part 2 — the seeded load, fresh service. Shed requests are
    // resubmitted in the next wave (the client back-off protocol).
    let events = serve_load(load);
    let svc = CompileService::start(config);
    let mk_request = |e: &ccm2_workload::ServeEvent| CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ExecChoice::Sim(4),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    };

    // Expected bytes per unique (project, revision), from standalone
    // compiles — every served response must match.
    let mut expected: HashMap<ccm2_support::hash::Fp128, (Option<Vec<u8>>, Vec<String>)> =
        HashMap::new();
    for e in &events {
        let req = mk_request(e);
        expected
            .entry(req.fingerprint())
            .or_insert_with(|| standalone_compile(&req));
    }

    let started = std::time::Instant::now();
    let mut pending: Vec<CompileRequest> = events.iter().map(mk_request).collect();
    let mut waves = 0usize;
    let mut served = 0usize;
    let mut mismatches = 0usize;
    while !pending.is_empty() {
        waves += 1;
        assert!(waves <= 1 + events.len(), "shed requests must drain");
        let batch = std::mem::take(&mut pending);
        let requests = batch.clone();
        for (req, resp) in requests.into_iter().zip(svc.serve_batch(batch)) {
            match resp {
                Response::Done(outcome) => {
                    served += 1;
                    assert!(outcome.ok, "{:?}", outcome.diagnostics);
                    let want = &expected[&req.fingerprint()];
                    if (outcome.object.clone(), outcome.diagnostics.clone()) != *want {
                        mismatches += 1;
                    }
                }
                Response::Retry => pending.push(req),
            }
        }
    }
    let elapsed = started.elapsed();
    assert_eq!(mismatches, 0, "served bytes must match standalone compiles");

    let stats = svc.stats();
    let store = svc.store().stats();
    assert_eq!(served, events.len(), "no request lost");
    assert!(store.peak_bytes <= store.budget, "budget invariant");
    out.push_str(&format!(
        "\nload: {} events served in {} waves, 0 lost, 0 mismatched vs standalone\n",
        served, waves
    ));
    out.push_str(&format!(
        "throughput: {:.1} requests/s ({} ms total, wall)\n",
        served as f64 / elapsed.as_secs_f64().max(1e-9),
        elapsed.as_millis()
    ));
    out.push_str(&format!(
        "single-flight: {} compiles served {} requests; dedup ratio {:.1}% (joined {}, shed {})\n",
        stats.compiled,
        served,
        100.0 * stats.dedup_ratio(),
        stats.joined,
        stats.shed
    ));
    out.push_str(&format!(
        "store: {} hits / {} misses ({:.1}% hit rate), {} insertions, {} evictions\n",
        store.hits,
        store.misses,
        100.0 * store.hit_rate(),
        store.insertions,
        store.evictions
    ));
    out.push_str(&format!(
        "       occupancy {} B, peak {} B of {} B budget (never exceeded)\n",
        store.bytes_in_use, store.peak_bytes, store.budget
    ));
    out
}

/// A standalone (serviceless, storeless) compile of `req`, in the same
/// comparable encoding the service reports.
fn standalone_compile(req: &ccm2_serve::CompileRequest) -> (Option<Vec<u8>>, Vec<String>) {
    let out = compile_concurrent(
        &req.source,
        Arc::clone(&req.defs) as Arc<dyn ccm2_support::defs::DefProvider>,
        Arc::new(Interner::new()),
        Options {
            strategy: req.strategy,
            executor: req.exec.to_executor(),
            analyze: req.analyze,
            incremental: None,
            ..Options::default()
        },
    );
    ccm2_incr::comparable_output(
        out.image.as_ref(),
        &out.diagnostics,
        &out.sources,
        &out.interner,
    )
}

// ---- fabric fleet drill --------------------------------------------------

/// The `reproduce -- fabric` drill: a shard-count sweep of the loopback
/// fleet (byte-identical to standalone at every width), a seeded
/// mid-stream shard-kill failover with zero lost admitted requests, and
/// the snapshot + delta-journal restart path (fewer journal bytes than
/// a full `CCM2SNAP` image). Writes the machine-readable
/// `BENCH_fabric.json` into the working directory — the start of the
/// perf trajectory the ROADMAP asks for.
pub fn fabric() -> String {
    fabric_with(
        &ccm2_workload::ServeLoadParams {
            seed: 0xFAB,
            projects: 3,
            clients: 6,
            events: 48,
            edit_every: 6,
            interface_every: 3,
        },
        &[1, 2, 3, 4],
        Some(std::path::Path::new("BENCH_fabric.json")),
    )
}

/// [`fabric`] with explicit load, shard sweep and JSON destination
/// (tests use a smaller load and skip the JSON).
pub fn fabric_with(
    load: &ccm2_workload::ServeLoadParams,
    sweep: &[usize],
    json_path: Option<&std::path::Path>,
) -> String {
    use ccm2_fabric::{Fabric, FabricResponse};
    use ccm2_serve::{
        CompileRequest, CompileService, DeltaJournal, ExecChoice, Response, ServeConfig,
        SnapshotStore,
    };
    use ccm2_workload::{serve_load, shard_kill_schedule};
    use std::collections::HashMap;

    let config = ServeConfig {
        workers: 2,
        queue_capacity: 32,
        store_budget: 64 * 1024,
        ..ServeConfig::default()
    };

    let mut out =
        String::from("Compile fabric (ccm2-fabric): sharded fleet over CCM2WIRE loopback\n");
    out.push_str(&format!(
        "  load: projects={} clients={} events={} edit every {} (interface every {}th edit), seed {:#x}\n",
        load.projects, load.clients, load.events, load.edit_every, load.interface_every, load.seed
    ));
    out.push_str(&format!(
        "  per-shard service: workers={} queue_capacity={} store_budget={} B\n\n",
        config.workers, config.queue_capacity, config.store_budget
    ));

    let events = serve_load(load);
    let mk_request = |e: &ccm2_workload::ServeEvent| CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ExecChoice::Sim(4),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    };

    // Ground truth: standalone compiles per unique fingerprint. Every
    // routed response in every part below must match these bytes.
    let mut expected: HashMap<ccm2_support::hash::Fp128, (Option<Vec<u8>>, Vec<String>)> =
        HashMap::new();
    for e in &events {
        let req = mk_request(e);
        expected
            .entry(req.fingerprint())
            .or_insert_with(|| standalone_compile(&req));
    }

    // Drives `reqs` through the fleet with the wave/back-off protocol;
    // asserts zero lost and byte-identical to standalone. Returns waves.
    let drive = |fabric: &Fabric, reqs: &[CompileRequest]| -> usize {
        let mut pending: Vec<CompileRequest> = reqs.to_vec();
        let mut waves = 0usize;
        while !pending.is_empty() {
            waves += 1;
            assert!(waves <= 1 + reqs.len(), "fabric retry protocol must drain");
            let batch = std::mem::take(&mut pending);
            let resubmit = batch.clone();
            for (req, resp) in resubmit
                .into_iter()
                .zip(fabric.router().serve_batch(&batch))
            {
                match resp {
                    FabricResponse::Done(o) => {
                        assert!(o.ok, "{:?}", o.diagnostics);
                        let want = &expected[&req.fingerprint()];
                        assert!(
                            (o.object.clone(), o.diagnostics.clone()) == *want,
                            "routed bytes diverged from standalone for {}",
                            req.module
                        );
                    }
                    FabricResponse::Retry { .. } => pending.push(req),
                }
            }
        }
        waves
    };

    // Part 1 — shard-count sweep.
    out.push_str("shard sweep: every width byte-identical to standalone\n");
    out.push_str(
        "  shards | waves | wall ms | req/s | router joins | fleet compiles | delta ships\n",
    );
    out.push_str(
        "  -------+-------+---------+-------+--------------+----------------+------------\n",
    );
    let mut sweep_json = String::new();
    for &n in sweep {
        let fabric = Fabric::start(n, config);
        let requests: Vec<CompileRequest> = events.iter().map(&mk_request).collect();
        let started = std::time::Instant::now();
        let waves = drive(&fabric, &requests);
        let elapsed = started.elapsed();
        let rstats = fabric.router().stats();
        let compiles = fabric.total_compiles();
        let rps = events.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        out.push_str(&format!(
            "  {:>6} | {:>5} | {:>7} | {:>5.0} | {:>12} | {:>14} | {:>11}\n",
            n,
            waves,
            elapsed.as_millis(),
            rps,
            rstats.joined,
            compiles,
            rstats.ships
        ));
        if !sweep_json.is_empty() {
            sweep_json.push(',');
        }
        sweep_json.push_str(&format!(
            "{{\"shards\":{n},\"events\":{},\"waves\":{waves},\"wall_micros\":{},\"throughput_rps\":{rps:.1},\"router_joined\":{},\"fleet_compiles\":{compiles},\"delta_ships\":{}}}",
            events.len(),
            elapsed.as_micros(),
            rstats.joined,
            rstats.ships
        ));
    }

    // Part 2 — seeded mid-stream shard kill at 3 shards.
    let shards = 3usize;
    let (kill_at, victim) = shard_kill_schedule(load, shards as u32, 1)
        .first()
        .copied()
        .unwrap_or((events.len() / 2, 0));
    let fabric = Fabric::start(shards, config);
    let head: Vec<CompileRequest> = events[..kill_at].iter().map(&mk_request).collect();
    let tail: Vec<CompileRequest> = events[kill_at..].iter().map(&mk_request).collect();
    drive(&fabric, &head);
    let t0 = std::time::Instant::now();
    fabric.router().kill_shard(victim);
    let failover = t0.elapsed();
    drive(&fabric, &tail);
    let live = fabric.router().live_shards();
    assert!(!live.contains(&victim), "victim must leave the ring");
    assert_eq!(live.len(), shards - 1);
    let absorbed: u64 = fabric
        .nodes()
        .iter()
        .filter(|node| node.id() != victim)
        .map(|node| node.stats().absorbed_ops)
        .sum();
    let rstats = fabric.router().stats();
    out.push_str(&format!(
        "\nkill drill ({} shards): shard {} killed before event {} (seeded schedule)\n",
        shards, victim, kill_at
    ));
    out.push_str(&format!(
        "  failover: ring rebalance + {} survivor absorbs in {} us; {} replicated ops warmed survivors\n",
        rstats.absorbs,
        failover.as_micros(),
        absorbed
    ));
    out.push_str(&format!(
        "  served {}+{} events across the kill: 0 lost, 0 mismatched vs standalone\n",
        kill_at,
        events.len() - kill_at
    ));

    // Part 3 — restart from snapshot + delta replay, cheaper than a
    // fresh full image.
    let dir = std::env::temp_dir().join(format!("ccm2-fabric-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let snaps = SnapshotStore::new(dir.join("snap")).expect("snapshot dir");
    let journal = DeltaJournal::new(dir.join("delta")).expect("journal dir");
    let svc = CompileService::start(config);
    let serve_half = |svc: &CompileService, half: &[ccm2_workload::ServeEvent]| {
        let mut pending: Vec<CompileRequest> = half.iter().map(&mk_request).collect();
        let mut waves = 0usize;
        while !pending.is_empty() {
            waves += 1;
            assert!(waves <= 1 + half.len(), "restart drill must drain");
            let batch = std::mem::take(&mut pending);
            let resubmit = batch.clone();
            for (req, resp) in resubmit.into_iter().zip(svc.serve_batch(batch)) {
                match resp {
                    Response::Done(o) => assert!(o.ok, "{:?}", o.diagnostics),
                    Response::Retry => pending.push(req),
                }
            }
        }
    };
    // The production cadence: the journal ships continuously, snapshots
    // cut occasionally. A restart reads the newest snapshot plus only
    // the journal tail past its cut — so the tail, not the whole
    // journal, is the incremental restart cost.
    let cut = events.len() * 3 / 4;
    serve_half(&svc, &events[..cut]);
    svc.journal_deltas(&journal, &snaps)
        .expect("journal the head");
    snaps.save(svc.store()).expect("snapshot at the cut");
    let journal_bytes_at_cut = journal.total_bytes().expect("journal size at cut");
    serve_half(&svc, &events[cut..]);
    let shipped = svc
        .journal_deltas(&journal, &snaps)
        .expect("journal the tail");
    let delta_bytes = journal.total_bytes().expect("journal size") - journal_bytes_at_cut;
    let full_snaps = SnapshotStore::new(dir.join("full")).expect("comparison dir");
    let full_path = full_snaps.save(svc.store()).expect("full image");
    let full_bytes = std::fs::metadata(&full_path).expect("image size").len();
    let restored = CompileService::restore_with_deltas(config, &snaps, &journal).expect("restart");
    let canon = |svc: &CompileService| {
        let mut entries = svc.store().export();
        entries.sort();
        entries
    };
    assert_eq!(
        canon(&restored),
        canon(&svc),
        "snapshot + delta replay must rebuild the exact store"
    );
    assert!(
        shipped > 0 && delta_bytes < full_bytes,
        "delta restart must beat the full image ({delta_bytes} B vs {full_bytes} B, {shipped} ops)"
    );
    let restored_entries = restored.store().export().len();
    drop(restored);
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    out.push_str(&format!(
        "\ndelta restart: snapshot at event {} + {} journaled ops replay the tail\n",
        cut, shipped
    ));
    out.push_str(&format!(
        "  journal tail {} B vs full CCM2SNAP image {} B ({:.1}% of full); {} entries rebuilt bit-identically\n",
        delta_bytes,
        full_bytes,
        100.0 * delta_bytes as f64 / full_bytes as f64,
        restored_entries
    ));

    if let Some(path) = json_path {
        let json = format!(
            "{{\"schema\":\"ccm2-bench/fabric/v1\",\"load\":{{\"seed\":{},\"projects\":{},\"clients\":{},\"events\":{}}},\"sweep\":[{sweep_json}],\"kill_drill\":{{\"shards\":{shards},\"victim\":{victim},\"kill_at_event\":{kill_at},\"failover_micros\":{},\"absorbed_ops\":{absorbed},\"lost\":0,\"mismatched\":0}},\"delta_restart\":{{\"journaled_ops\":{shipped},\"journal_bytes\":{delta_bytes},\"full_image_bytes\":{full_bytes},\"restored_entries\":{restored_entries}}}}}\n",
            load.seed,
            load.projects,
            load.clients,
            load.events,
            failover.as_micros(),
        );
        std::fs::write(path, json).expect("write BENCH_fabric.json");
        out.push_str(&format!("\nwrote {}\n", path.display()));
    }
    out
}

// ---- chaosnet: seeded network-fault drill matrix -------------------------

/// Either side of the chaosnet matrix: the deterministic loopback (link
/// faults via `ccm2-faults` sites) or real TCP sockets (explicit
/// partition switches). One enum so each drill cell runs the identical
/// script on both.
enum ChaosNet {
    Loopback(Arc<ccm2_fabric::LoopbackTransport>),
    Tcp {
        transport: Arc<ccm2_fabric::TcpTransport>,
        servers: Vec<ccm2_fabric::TcpShardServer>,
    },
}

impl ChaosNet {
    fn new(tcp: bool) -> ChaosNet {
        if tcp {
            ChaosNet::Tcp {
                transport: Arc::new(ccm2_fabric::TcpTransport::new()),
                servers: Vec::new(),
            }
        } else {
            ChaosNet::Loopback(Arc::new(ccm2_fabric::LoopbackTransport::new()))
        }
    }

    fn register(&mut self, node: &Arc<ccm2_fabric::ShardNode>) {
        let handler = Arc::clone(node) as Arc<dyn ccm2_fabric::FrameHandler>;
        match self {
            ChaosNet::Loopback(t) => t.register(node.id(), handler),
            ChaosNet::Tcp { transport, servers } => {
                let server = ccm2_fabric::TcpShardServer::serve(handler).expect("tcp shard server");
                transport.register(node.id(), server.addr());
                servers.push(server);
            }
        }
    }

    fn transport(&self) -> Arc<dyn ccm2_fabric::Transport> {
        match self {
            ChaosNet::Loopback(t) => Arc::clone(t) as Arc<dyn ccm2_fabric::Transport>,
            ChaosNet::Tcp { transport, .. } => {
                Arc::clone(transport) as Arc<dyn ccm2_fabric::Transport>
            }
        }
    }

    /// Opens (`true`) or heals (`false`) a standing partition of the
    /// link to `shard`.
    fn cut(&self, shard: u32, on: bool) {
        match self {
            ChaosNet::Loopback(t) => t.set_link_faults(on.then(|| {
                Arc::new(ccm2_faults::FaultPlan::single(
                    format!("link:{shard}#c*"),
                    ccm2_faults::FaultKind::Panic,
                ))
            })),
            ChaosNet::Tcp { transport, .. } => transport.set_partitioned(shard, on),
        }
    }
}

/// One cell of the chaosnet matrix (a seed on a transport), reduced to
/// the numbers the report and `BENCH_chaosnet.json` carry. Every cell
/// also carries the hard assertions — zero lost admitted requests, zero
/// hangs, byte-identity to standalone, the warm-hit floor — so a
/// regression fails the drill instead of skewing a number.
struct ChaosCell {
    seed: u64,
    transport: &'static str,
    events: usize,
    victim: u32,
    ticks_to_evict: usize,
    warm_hits: u64,
    warm_lookups: u64,
    restored_parked_ops: usize,
    absorbed_after_restart: u64,
    rlog_writes: u64,
}

/// The `reproduce -- chaosnet` drill: a seeded network-fault matrix
/// (three seeds x both transports) over the hardened fabric control
/// plane. Each cell runs one full lifecycle — partition opens on the
/// seeded schedule, the heartbeat detector suspects then evicts the
/// victim, the fleet serves through the hole, the partition heals and
/// the victim warm-rejoins, a cold shard joins through the warm-up path
/// (>= 50% warm hits on its first post-join batch), and finally the
/// whole fleet is crash-restarted from its durable `CCM2RLOG` replica
/// logs and a failover absorbs the restored parked ops. Zero lost
/// admitted requests, zero hangs, byte-identity to a standalone
/// service, everywhere. Writes `BENCH_chaosnet.json`.
pub fn chaosnet() -> String {
    chaosnet_with(
        &[0xC4A0, 0xC4A1, 0xC4A2],
        25,
        Some(std::path::Path::new("BENCH_chaosnet.json")),
    )
}

/// [`chaosnet`] with explicit seeds, wall-clock heartbeat period (ms,
/// the `--heartbeat-ms` flag) and JSON destination.
pub fn chaosnet_with(
    seeds: &[u64],
    heartbeat_ms: u64,
    json_path: Option<&std::path::Path>,
) -> String {
    let mut out = String::from(
        "Chaosnet: seeded network-fault drills over the fabric control plane\n\
           each cell: partition -> heartbeat eviction -> serve through the hole -> heal\n\
           -> warm rejoin -> cold join (warm-hit floor) -> CCM2RLOG crash-restart -> absorb\n\n",
    );
    out.push_str(
        "  seed   | transport | evict ticks | warm hits | restored ops | absorbed | events\n",
    );
    out.push_str(
        "  -------+-----------+-------------+-----------+--------------+----------+-------\n",
    );
    let mut cells = Vec::new();
    for &seed in seeds {
        for tcp in [false, true] {
            let cell = chaosnet_cell(seed, tcp);
            out.push_str(&format!(
                "  {:#6x} | {:>9} | {:>11} | {:>4}/{:<4} | {:>12} | {:>8} | {:>6}\n",
                cell.seed,
                cell.transport,
                cell.ticks_to_evict,
                cell.warm_hits,
                cell.warm_lookups,
                cell.restored_parked_ops,
                cell.absorbed_after_restart,
                cell.events,
            ));
            cells.push(cell);
        }
    }
    out.push_str(&format!(
        "  {} cells: 0 lost admitted requests, 0 hangs, 0 mismatched vs standalone\n",
        cells.len()
    ));

    // Split-brain matrix: the same seeds on both transports, each
    // running all three router disturbances (kill / partition / duel)
    // against a two-router fleet with the epoch lease.
    out.push_str(
        "\nsplit-brain drills: two routers, epoch-leased eviction authority, client failover\n",
    );
    out.push_str(
        "  seed   | transport | drill     | epoch | promote ticks | rotations | epoch rejects\n",
    );
    out.push_str(
        "  -------+-----------+-----------+-------+---------------+-----------+--------------\n",
    );
    let mut sb_cells = Vec::new();
    for &seed in seeds {
        for tcp in [false, true] {
            for kind in [
                ccm2_workload::RouterDrillKind::Kill,
                ccm2_workload::RouterDrillKind::Partition,
                ccm2_workload::RouterDrillKind::Duel,
            ] {
                let cell = split_brain_cell(seed, tcp, kind);
                out.push_str(&format!(
                    "  {:#6x} | {:>9} | {:>9} | {:>5} | {:>13} | {:>9} | {:>13}\n",
                    cell.seed,
                    cell.transport,
                    cell.kind,
                    cell.promoted_epoch,
                    cell.promote_ticks,
                    cell.client_rotations,
                    cell.epoch_rejects,
                ));
                sb_cells.push(cell);
            }
        }
    }
    out.push_str(&format!(
        "  {} cells: 0 lost, 0 hangs, no epoch with two leaders, membership converged\n",
        sb_cells.len()
    ));

    // Wall-clock detector smoke: the same eviction on real sockets and
    // real time, driven by `start_heartbeats` at --heartbeat-ms.
    let wall = chaosnet_wall_clock(heartbeat_ms);
    out.push_str(&format!(
        "\nwall-clock detector (tcp, --heartbeat-ms={}): partitioned shard evicted in {} ms\n",
        heartbeat_ms,
        wall.as_millis()
    ));

    if let Some(path) = json_path {
        let mut cell_json = String::new();
        for c in &cells {
            if !cell_json.is_empty() {
                cell_json.push(',');
            }
            cell_json.push_str(&format!(
                "{{\"seed\":{},\"transport\":\"{}\",\"events\":{},\"victim\":{},\"ticks_to_evict\":{},\"warm_hits\":{},\"warm_lookups\":{},\"restored_parked_ops\":{},\"absorbed_after_restart\":{},\"rlog_writes\":{},\"lost\":0,\"mismatched\":0,\"hangs\":0}}",
                c.seed,
                c.transport,
                c.events,
                c.victim,
                c.ticks_to_evict,
                c.warm_hits,
                c.warm_lookups,
                c.restored_parked_ops,
                c.absorbed_after_restart,
                c.rlog_writes,
            ));
        }
        let mut sb_json = String::new();
        for c in &sb_cells {
            if !sb_json.is_empty() {
                sb_json.push(',');
            }
            sb_json.push_str(&format!(
                "{{\"seed\":{},\"transport\":\"{}\",\"drill\":\"{}\",\"events\":{},\"promoted_epoch\":{},\"promote_ticks\":{},\"demotions\":{},\"epoch_rejects\":{},\"client_rotations\":{},\"transcript_lines\":{},\"two_leader_epochs\":0,\"divergent_membership\":0,\"lost\":0,\"hangs\":0}}",
                c.seed,
                c.transport,
                c.kind,
                c.events,
                c.promoted_epoch,
                c.promote_ticks,
                c.a_demotions,
                c.epoch_rejects,
                c.client_rotations,
                c.transcript.len(),
            ));
        }
        let json = format!(
            "{{\"schema\":\"ccm2-bench/chaosnet/v2\",\"cells\":[{cell_json}],\"split_brain\":{{\"cells\":[{sb_json}],\"two_leader_epochs\":0,\"divergent_membership\":0}},\"wall_clock\":{{\"heartbeat_ms\":{heartbeat_ms},\"evicted_in_micros\":{}}},\"lost\":0,\"mismatched\":0,\"hangs\":0}}\n",
            wall.as_micros()
        );
        std::fs::write(path, json).expect("write BENCH_chaosnet.json");
        out.push_str(&format!("\nwrote {}\n", path.display()));
    }
    out
}

/// One chaosnet cell; see [`chaosnet`] for the script it runs.
fn chaosnet_cell(seed: u64, tcp: bool) -> ChaosCell {
    use ccm2_fabric::{
        FabricResponse, FabricRouter, HealthState, HeartbeatConfig, ReplicaLogStore, ShardNode,
    };
    use ccm2_serve::{CompileRequest, ExecChoice, ServeConfig};
    use ccm2_workload::{serve_load, shard_partition_schedule, ServeLoadParams};
    use std::collections::HashMap;

    const SHARDS: u32 = 3;
    const JOINER: u32 = 9;
    let params = ServeLoadParams {
        seed,
        projects: 3,
        clients: 4,
        events: 60,
        edit_every: 12,
        interface_every: 3,
    };
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 32,
        store_budget: 128 * 1024,
        ..ServeConfig::default()
    };
    let events = serve_load(&params);
    let mk_request = |e: &ccm2_workload::ServeEvent| CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ExecChoice::Sim(4),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    };
    let mut expected: HashMap<ccm2_support::hash::Fp128, (Option<Vec<u8>>, Vec<String>)> =
        HashMap::new();
    for e in &events {
        let req = mk_request(e);
        expected
            .entry(req.fingerprint())
            .or_insert_with(|| standalone_compile(&req));
    }
    // The drive protocol with the hang guard and byte-identity check:
    // every admitted request must come back `Done` with the standalone
    // bytes within a bounded number of retry waves.
    let drive = |router: &FabricRouter, slice: &[ccm2_workload::ServeEvent]| {
        let mut pending: Vec<CompileRequest> = slice.iter().map(&mk_request).collect();
        let mut waves = 0usize;
        while !pending.is_empty() {
            waves += 1;
            assert!(waves <= 1 + slice.len(), "chaosnet drive must drain (hang)");
            let batch = std::mem::take(&mut pending);
            let resubmit = batch.clone();
            for (req, resp) in resubmit.into_iter().zip(router.serve_batch(&batch)) {
                match resp {
                    FabricResponse::Done(o) => {
                        assert!(o.ok, "{:?}", o.diagnostics);
                        let want = &expected[&req.fingerprint()];
                        assert!(
                            (o.object.clone(), o.diagnostics.clone()) == *want,
                            "chaosnet bytes diverged from standalone for {}",
                            req.module
                        );
                    }
                    FabricResponse::Retry { .. } => pending.push(req),
                }
            }
        }
    };

    let dir = std::env::temp_dir().join(format!(
        "ccm2-chaosnet-{}-{seed:x}-{}",
        std::process::id(),
        if tcp { "tcp" } else { "loop" }
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mk_node = |id: u32| -> Arc<ShardNode> {
        let rlogs = ReplicaLogStore::new(dir.join(format!("rlog-{id}"))).expect("rlog dir");
        Arc::new(
            ShardNode::start(id, config)
                .with_durable_log(rlogs)
                .expect("durable replica logs"),
        )
    };
    let nodes: Vec<Arc<ShardNode>> = (0..SHARDS).map(mk_node).collect();
    let mut net = ChaosNet::new(tcp);
    for node in &nodes {
        net.register(node);
    }
    let heartbeat = HeartbeatConfig {
        suspect_misses: 1,
        evict_misses: 2,
    };
    let router = FabricRouter::new(net.transport()).with_heartbeat(heartbeat);

    // The partition window is drawn over the first two-thirds of the
    // load so the final third is always the cold joiner's first batch.
    let sched_params = ServeLoadParams {
        events: params.events * 2 / 3,
        ..params
    };
    let window = shard_partition_schedule(&sched_params, SHARDS, 1)[0];
    let victim = window.shard;

    // Phase 1 — healthy fleet up to the partition point.
    drive(&router, &events[..window.from]);

    // Phase 2 — the link to the victim drops; the detector suspects,
    // then evicts, in a deterministic number of virtual-time ticks.
    net.cut(victim, true);
    let mut ticks = 0usize;
    while router.health(victim) != HealthState::Evicted {
        ticks += 1;
        assert!(ticks <= 4, "failure detector hung past its miss budget");
        router.heartbeat_tick();
    }
    assert_eq!(
        ticks, heartbeat.evict_misses as usize,
        "deterministic clock"
    );
    assert!(
        !router.live_shards().contains(&victim),
        "evicted shard still owns keys"
    );
    drive(&router, &events[window.from..window.until]);

    // Phase 3 — heal and warm-rejoin the victim through admit_shard.
    net.cut(victim, false);
    router.admit_shard(victim);
    assert_eq!(router.health(victim), HealthState::Alive);
    drive(&router, &events[window.until..params.events * 2 / 3]);

    // Warm probes: the seeded load reuses a handful of fingerprints, so
    // on an unlucky seed the consistent-hash ring may hand the joiner
    // none of them. Synthesize modules the post-join ring provably
    // routes to the joiner and serve them now, pre-join, so they land
    // warm in a current member's store (and thus in the head-ship
    // image). Their post-join replay is guaranteed joiner traffic.
    let post_join_ring =
        ccm2_fabric::HashRing::new(&[0, 1, 2, JOINER], ccm2_fabric::DEFAULT_VNODES);
    let mk_probe = |n: u32| {
        let mut req = CompileRequest::new(
            u64::from(n),
            format!("ChaosProbe{n}"),
            format!("MODULE ChaosProbe{n}; VAR x: INTEGER; BEGIN x := {n}; END ChaosProbe{n}."),
            Arc::new(ccm2_support::defs::DefLibrary::new()),
        );
        req.exec = ExecChoice::Sim(4);
        req
    };
    let probes: Vec<CompileRequest> = (0..200u32)
        .map(mk_probe)
        .filter(|req| post_join_ring.route(req.fingerprint()) == Some(JOINER))
        .take(6)
        .collect();
    assert!(!probes.is_empty(), "no probe routed to the joiner");
    for resp in router.serve_batch(&probes) {
        match resp {
            FabricResponse::Done(o) => assert!(o.ok, "{:?}", o.diagnostics),
            FabricResponse::Retry { .. } => panic!("probe shed by an idle fleet"),
        }
    }

    // Phase 4 — cold join: the joiner is warmed (head-ship from every
    // member + delta catch-up) before the ring hands it keys, so its
    // first post-join batch — the final third of the load plus the
    // probe replays — must hit at least half the time.
    let joiner = mk_node(JOINER);
    net.register(&joiner);
    router.admit_shard(JOINER);
    let before = joiner.service().store().stats();
    drive(&router, &events[params.events * 2 / 3..]);
    for resp in router.serve_batch(&probes) {
        match resp {
            FabricResponse::Done(o) => assert!(o.ok, "{:?}", o.diagnostics),
            FabricResponse::Retry { .. } => panic!("probe replay shed by an idle fleet"),
        }
    }
    let after = joiner.service().store().stats();
    let warm_hits = after.hits - before.hits;
    let warm_lookups = warm_hits + (after.misses - before.misses);
    assert!(warm_lookups > 0, "the joiner saw no post-join traffic");
    assert!(
        warm_hits * 2 >= warm_lookups,
        "cold joiner served too cold: {warm_hits}/{warm_lookups} warm"
    );

    // Phase 5 — crash-restart: drop the whole fleet (routers, sockets,
    // nodes) and rebuild the original shards from their durable
    // CCM2RLOG stores. Every parked replica op must come back.
    let parked = |nodes: &[Arc<ShardNode>]| -> Vec<Vec<usize>> {
        nodes
            .iter()
            .map(|n| {
                [0, 1, 2, JOINER]
                    .iter()
                    .map(|&o| n.replica_len(o))
                    .collect()
            })
            .collect()
    };
    let parked_before = parked(&nodes);
    let rlog_writes: u64 = nodes.iter().map(|n| n.stats().rlog_writes).sum();
    let restored_parked_ops: usize = parked_before.iter().flatten().sum();
    assert!(
        restored_parked_ops > 0,
        "no parked replica ops to survive the crash — the drill is vacuous"
    );
    drop(router);
    drop(net);
    drop(nodes);
    drop(joiner);
    let nodes: Vec<Arc<ShardNode>> = (0..SHARDS).map(mk_node).collect();
    assert_eq!(
        parked(&nodes),
        parked_before,
        "restart lost or invented parked replica ops"
    );
    let mut net = ChaosNet::new(tcp);
    for node in &nodes {
        net.register(node);
    }
    let router = FabricRouter::new(net.transport());
    // Kill the origin with the most ops parked on its peers: the
    // failover absorb must replay the restored logs into live stores.
    let origin = (0..SHARDS)
        .max_by_key(|&o| {
            nodes
                .iter()
                .filter(|n| n.id() != o)
                .map(|n| n.replica_len(o))
                .sum::<usize>()
        })
        .expect("three shards");
    router.kill_shard(origin);
    let absorbed_after_restart: u64 = nodes
        .iter()
        .filter(|n| n.id() != origin)
        .map(|n| n.stats().absorbed_ops)
        .sum();
    assert!(
        absorbed_after_restart > 0,
        "failover after restart absorbed nothing from the durable logs"
    );
    // The restarted, post-failover fleet still serves standalone bytes.
    drive(&router, &events[..6]);
    drop(router);
    drop(net);
    let _ = std::fs::remove_dir_all(&dir);

    ChaosCell {
        seed,
        transport: if tcp { "tcp" } else { "loopback" },
        events: params.events,
        victim,
        ticks_to_evict: ticks,
        warm_hits,
        warm_lookups,
        restored_parked_ops,
        absorbed_after_restart,
        rlog_writes,
    }
}

/// Wall-clock leg of the chaosnet drill: a TCP fleet under
/// [`ccm2_fabric::start_heartbeats`] at `heartbeat_ms` must evict a
/// partitioned shard on real time, within a generous bounded deadline
/// (the zero-hangs guarantee on the non-virtual clock). Returns the
/// observed partition-to-eviction latency.
fn chaosnet_wall_clock(heartbeat_ms: u64) -> std::time::Duration {
    use ccm2_fabric::{
        start_heartbeats, FabricRouter, FrameHandler, HealthState, HeartbeatConfig, ShardNode,
        TcpShardServer, TcpTransport, Transport,
    };
    use ccm2_serve::{CompileRequest, ExecChoice, ServeConfig};
    use ccm2_support::defs::DefLibrary;

    let config = ServeConfig {
        workers: 1,
        queue_capacity: 16,
        store_budget: 64 * 1024,
        ..ServeConfig::default()
    };
    let nodes: Vec<Arc<ShardNode>> = (0..3u32)
        .map(|id| Arc::new(ShardNode::start(id, config)))
        .collect();
    let transport = Arc::new(TcpTransport::new());
    let mut servers: Vec<TcpShardServer> = Vec::new();
    for node in &nodes {
        let server =
            TcpShardServer::serve(Arc::clone(node) as Arc<dyn FrameHandler>).expect("tcp server");
        transport.register(node.id(), server.addr());
        servers.push(server);
    }
    let router = Arc::new(
        FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>).with_heartbeat(
            HeartbeatConfig {
                suspect_misses: 1,
                evict_misses: 2,
            },
        ),
    );
    let handle = start_heartbeats(
        Arc::clone(&router),
        std::time::Duration::from_millis(heartbeat_ms),
    );
    for m in 0..4 {
        let mut req = CompileRequest::new(
            m,
            format!("Wall{m}"),
            format!("MODULE Wall{m}; VAR x: INTEGER; BEGIN x := 3; END Wall{m}."),
            Arc::new(DefLibrary::new()),
        );
        req.exec = ExecChoice::Sim(2);
        let resp = router.serve(&req);
        assert!(resp.outcome().expect("served under heartbeats").ok);
    }
    transport.set_partitioned(1, true);
    let started = std::time::Instant::now();
    let deadline = std::time::Duration::from_millis(200 * heartbeat_ms.max(5));
    while router.health(1) != HealthState::Evicted {
        assert!(
            started.elapsed() < deadline,
            "wall-clock detector hung: shard 1 not evicted within {deadline:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let elapsed = started.elapsed();
    drop(handle);
    for server in &mut servers {
        server.stop();
    }
    elapsed
}

// ---- split-brain drills: router loss without divergent membership -------

/// One split-brain cell, reduced to the numbers the report and the
/// `split_brain` section of `BENCH_chaosnet.json` carry, plus the
/// deterministic transcript the determinism test replays. The hard
/// invariants — 0 lost admitted requests, 0 hangs, no epoch with two
/// leaders, converged membership, byte-identity to standalone — are
/// asserted inside the cell, so a split-brain regression fails the
/// drill instead of skewing a number.
struct SplitBrainCell {
    seed: u64,
    transport: &'static str,
    kind: &'static str,
    events: usize,
    promoted_epoch: u64,
    promote_ticks: usize,
    a_demotions: u64,
    epoch_rejects: u64,
    client_rotations: u64,
    transcript: Vec<String>,
}

/// One split-brain drill cell: a 3-shard fleet behind two routers
/// (A leads, B stands by) on *independent* conduits over the same
/// shards, a shared durable membership store, and a client that fails
/// over between them. The seeded disturbance hits router A mid-load:
///
/// - **Kill** — A is shut down; B promotes on lease expiry and the
///   client rotates.
/// - **Partition** — A is cut from every shard (its churn while cut
///   must not reach the durable membership); B promotes; on heal A
///   demotes on its first observed newer epoch.
/// - **Duel** — A is silenced but not told: after B promotes, both
///   believe they lead until A's next stamped frame draws an
///   `EpochReject` and it stands down.
///
/// Every admitted request across the disturbance is served with bytes
/// identical to a standalone service. The transcript records phases,
/// roles, epochs and per-shard grant histories — and no wall-clock
/// values, so the same seed always replays the same transcript.
fn split_brain_cell(seed: u64, tcp: bool, kind: ccm2_workload::RouterDrillKind) -> SplitBrainCell {
    use ccm2_fabric::{
        FabricClient, FabricResponse, FabricRouter, FrameHandler, HeartbeatConfig, LeaseConfig,
        LoopbackTransport, MembershipStore, RouterRole, ShardNode, TcpShardServer, TcpTransport,
        Transport,
    };
    use ccm2_serve::{CompileRequest, ExecChoice, ServeConfig};
    use ccm2_workload::{serve_load, RouterDrillKind, ServeLoadParams};
    use std::collections::HashMap;

    const SHARDS: u32 = 3;
    let params = ServeLoadParams {
        seed,
        projects: 3,
        clients: 4,
        events: 24,
        edit_every: 8,
        interface_every: 3,
    };
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 32,
        store_budget: 128 * 1024,
        ..ServeConfig::default()
    };
    let events = serve_load(&params);
    let mk_request = |e: &ccm2_workload::ServeEvent| CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ExecChoice::Sim(4),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    };
    let mut expected: HashMap<ccm2_support::hash::Fp128, (Option<Vec<u8>>, Vec<String>)> =
        HashMap::new();
    for e in &events {
        let req = mk_request(e);
        expected
            .entry(req.fingerprint())
            .or_insert_with(|| standalone_compile(&req));
    }

    // Two independent conduits over the same shards: cutting router A's
    // network must not touch router B's.
    let nodes: Vec<Arc<ShardNode>> = (0..SHARDS)
        .map(|id| Arc::new(ShardNode::start(id, config)))
        .collect();
    let mut servers: Vec<TcpShardServer> = Vec::new();
    type Conduits = (Arc<dyn Transport>, Arc<dyn Transport>, Box<dyn Fn(bool)>);
    let (ta, tb, cut_a): Conduits = if tcp {
        let ta = Arc::new(TcpTransport::new());
        let tb = Arc::new(TcpTransport::new());
        for node in &nodes {
            let server = TcpShardServer::serve(Arc::clone(node) as Arc<dyn FrameHandler>)
                .expect("tcp shard server");
            ta.register(node.id(), server.addr());
            tb.register(node.id(), server.addr());
            servers.push(server);
        }
        let knife = Arc::clone(&ta);
        (
            ta as Arc<dyn Transport>,
            tb as Arc<dyn Transport>,
            Box::new(move |on| {
                for s in 0..SHARDS {
                    knife.set_partitioned(s, on);
                }
            }),
        )
    } else {
        let ta = Arc::new(LoopbackTransport::new());
        let tb = Arc::new(LoopbackTransport::new());
        for node in &nodes {
            ta.register(node.id(), Arc::clone(node) as Arc<dyn FrameHandler>);
            tb.register(node.id(), Arc::clone(node) as Arc<dyn FrameHandler>);
        }
        let knife = Arc::clone(&ta);
        (
            ta as Arc<dyn Transport>,
            tb as Arc<dyn Transport>,
            Box::new(move |on| {
                knife.set_link_faults(on.then(|| {
                    let mut plan = ccm2_faults::FaultPlan::new();
                    for s in 0..SHARDS {
                        plan =
                            plan.with_fault(format!("link:{s}#c*"), ccm2_faults::FaultKind::Panic);
                    }
                    Arc::new(plan)
                }));
            }),
        )
    };

    let dir = std::env::temp_dir().join(format!(
        "ccm2-splitbrain-{}-{seed:x}-{}-{kind:?}",
        std::process::id(),
        if tcp { "tcp" } else { "loop" }
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(MembershipStore::new(dir.join("mbrs")).expect("membership dir"));
    let heartbeat = HeartbeatConfig {
        suspect_misses: 1,
        evict_misses: 2,
    };
    let lease = LeaseConfig { expiry_ticks: 2 };
    let a = Arc::new(
        FabricRouter::new(ta)
            .with_identity(1)
            .with_heartbeat(heartbeat)
            .with_lease(lease)
            .with_membership_store(Arc::clone(&store)),
    );
    let b = Arc::new(
        FabricRouter::new(tb)
            .with_identity(2)
            .as_standby()
            .with_heartbeat(heartbeat)
            .with_lease(lease)
            .with_membership_store(Arc::clone(&store)),
    );
    assert!(a.acquire_lease(), "uncontested initial grant");
    let client = FabricClient::new(vec![Arc::clone(&a), Arc::clone(&b)]);

    let mut transcript: Vec<String> = Vec::new();
    let roles = |a: &FabricRouter, b: &FabricRouter| {
        format!(
            "a={:?}@{} b={:?}@{}",
            a.role(),
            a.epoch(),
            b.role(),
            b.epoch()
        )
    };
    let drive = |slice: &[ccm2_workload::ServeEvent]| {
        let mut pending: Vec<CompileRequest> = slice.iter().map(&mk_request).collect();
        let mut waves = 0usize;
        while !pending.is_empty() {
            waves += 1;
            assert!(
                waves <= 1 + slice.len(),
                "split-brain drive must drain (hang)"
            );
            let batch = std::mem::take(&mut pending);
            let resubmit = batch.clone();
            for (req, resp) in resubmit.into_iter().zip(client.serve_batch(&batch)) {
                match resp {
                    FabricResponse::Done(o) => {
                        assert!(o.ok, "{:?}", o.diagnostics);
                        let want = &expected[&req.fingerprint()];
                        assert!(
                            (o.object.clone(), o.diagnostics.clone()) == *want,
                            "split-brain bytes diverged from standalone for {}",
                            req.module
                        );
                    }
                    FabricResponse::Retry { .. } => pending.push(req),
                }
            }
        }
    };

    let kind_name = match kind {
        RouterDrillKind::Kill => "kill",
        RouterDrillKind::Partition => "partition",
        RouterDrillKind::Duel => "duel",
    };
    let third = params.events / 3;
    transcript.push(format!(
        "setup seed={seed:#x} kind={kind_name} shards={SHARDS} {}",
        roles(&a, &b)
    ));

    // Phase 1 — healthy fleet: A leads, renews, serves the head.
    drive(&events[..third]);
    assert!(a.heartbeat_tick().is_empty(), "healthy fleet, no evictions");
    transcript.push(format!("head served={third} {}", roles(&a, &b)));

    // Phase 2 — the disturbance hits router A.
    match kind {
        RouterDrillKind::Kill => {
            a.shutdown();
            transcript.push("disturb: router A shut down".into());
        }
        RouterDrillKind::Partition => {
            cut_a(true);
            // A churns against its dead network: it may evict its whole
            // local view, but with zero shards witnessing, none of it
            // may reach the durable membership image.
            a.heartbeat_tick();
            a.heartbeat_tick();
            transcript.push(format!(
                "disturb: router A cut from every shard; churned to live={:?}",
                a.live_shards()
            ));
        }
        RouterDrillKind::Duel => {
            transcript.push("disturb: router A silenced (no ticks), not told".into());
        }
    }

    // Phase 3 — the standby watches the lease age out on the shards'
    // own probe clocks, then claims the next epoch.
    let mut promote_ticks = 0usize;
    while b.role() != RouterRole::Leader {
        promote_ticks += 1;
        assert!(promote_ticks <= 6, "standby never promoted (hang)");
        b.heartbeat_tick();
    }
    let promoted_epoch = b.epoch();
    assert!(promoted_epoch >= 2, "promotion claims a fresh epoch");
    transcript.push(format!(
        "promoted after {promote_ticks} standby ticks {}",
        roles(&a, &b)
    ));

    // Phase 4 — serve the middle through the client: it rotates away
    // from the dead/cut router; in the duel, A still serves and its
    // stale replication stamp draws the EpochReject that demotes it.
    drive(&events[third..2 * third]);
    assert!(b.heartbeat_tick().is_empty(), "leader B sees a live fleet");
    transcript.push(format!(
        "mid served={third} rotations={} {}",
        client.stats().router_rotations,
        roles(&a, &b)
    ));

    // Phase 5 — heal: the ex-leader must converge, not split-brain.
    match kind {
        RouterDrillKind::Kill => {}
        RouterDrillKind::Partition | RouterDrillKind::Duel => {
            if kind == RouterDrillKind::Partition {
                cut_a(false);
            }
            a.heartbeat_tick();
            assert_eq!(
                a.role(),
                RouterRole::Standby,
                "healed ex-leader must stand down"
            );
            assert_eq!(a.epoch(), 1, "A never claims an epoch it wasn't granted");
            transcript.push(format!("healed {}", roles(&a, &b)));
        }
    }

    // Phase 6 — tail through the converged fleet.
    drive(&events[2 * third..]);
    transcript.push(format!("tail served={}", events.len() - 2 * third));

    // Invariants. Leadership epochs are disjoint across routers — no
    // epoch ever had two leaders…
    let ea = a.leadership_epochs();
    let eb = b.leadership_epochs();
    for e in &ea {
        assert!(!eb.contains(e), "epoch {e} observed two leaders");
    }
    // …and the shards' own grant histories agree: every epoch a router
    // led was granted to that router alone, wherever it was granted.
    let leaders: HashMap<u64, u32> = ea
        .iter()
        .map(|&e| (e, a.router_id()))
        .chain(eb.iter().map(|&e| (e, b.router_id())))
        .collect();
    for node in &nodes {
        let grants = node.lease_grants();
        for w in grants.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "a shard granted an epoch twice: {grants:?}"
            );
        }
        for &(epoch, router) in &grants {
            if let Some(&led) = leaders.get(&epoch) {
                assert_eq!(router, led, "epoch {epoch} granted away from its leader");
            }
        }
        transcript.push(format!("grants shard{}={:?}", node.id(), grants));
    }
    // Membership converged: both live routers agree with the durable
    // image (a killed router keeps its stale view; it is dead).
    let image = store
        .load_latest()
        .expect("membership readable")
        .image
        .expect("membership persisted");
    assert_eq!(image.leader, b.router_id());
    assert_eq!(image.epoch, promoted_epoch);
    assert_eq!(b.live_shards(), image.members, "leader B diverged");
    if kind != RouterDrillKind::Kill {
        a.resync_membership();
        assert_eq!(a.live_shards(), image.members, "standby A diverged");
    }
    transcript.push(format!(
        "converged members={:?} epoch={} leader={}",
        image.members, image.epoch, image.leader
    ));

    let cell = SplitBrainCell {
        seed,
        transport: if tcp { "tcp" } else { "loopback" },
        kind: kind_name,
        events: params.events,
        promoted_epoch,
        promote_ticks,
        a_demotions: a.stats().demotions,
        epoch_rejects: a.stats().epoch_rejects + b.stats().epoch_rejects,
        client_rotations: client.stats().router_rotations,
        transcript,
    };
    for server in &mut servers {
        server.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
    cell
}

// ---- always-on editor sessions (ccm2-watch) -----------------------------

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * q).ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

/// Always-on editor loop: replays the seeded 100-edit session over the
/// full 37-module suite through warm [`ccm2_watch`] sessions at one
/// worker thread, measuring edit-to-report latency against the
/// cold-open baseline; writes `BENCH_watch.json`.
pub fn watch() -> String {
    watch_with(Some(std::path::Path::new("BENCH_watch.json")))
}

/// [`watch`] with an explicit JSON destination (`None` skips the file).
pub fn watch_with(json_path: Option<&std::path::Path>) -> String {
    use ccm2_watch::{WatchConfig, WatchService};
    use ccm2_workload::{edit_session_seeds, suite_params, SessionParams, SUITE_SIZE};

    let params: Vec<ccm2_workload::GenParams> = (0..SUITE_SIZE).map(suite_params).collect();
    let suite = generate_suite();
    let session = SessionParams::default();
    let mut out = String::from("Always-on editor sessions (ccm2-watch), 1 worker thread\n");
    out.push_str(&format!(
        "  session: modules={} edits={} seed={:#x} (break {}%, fix {}%, <= {} interface edits)\n",
        suite.len(),
        session.edits,
        session.seed,
        session.break_pct,
        session.fix_pct,
        session.max_interface_edits
    ));

    // Cold baseline: median of three independent cold opens per module
    // (each against its own fresh service/store, so no warmth leaks
    // between reps). Tiny modules compile in well under a millisecond,
    // where a single-shot sample is too noisy to gate against.
    let mut cold_samples: std::collections::HashMap<String, Vec<u64>> =
        std::collections::HashMap::new();
    for _rep in 0..2 {
        let mut throwaway = WatchService::new(WatchConfig::default());
        for m in &suite {
            let r = throwaway.open(m.name.clone(), m.clone());
            cold_samples
                .entry(m.name.clone())
                .or_default()
                .push(r.wall.as_micros() as u64);
        }
    }
    let mut svc = WatchService::new(WatchConfig::default());
    let mut cold_micros: Vec<u64> = Vec::new();
    let mut cold_by_project: std::collections::HashMap<String, u64> =
        std::collections::HashMap::new();
    for m in &suite {
        let r = svc.open(m.name.clone(), m.clone());
        assert!(r.clean, "suite module {} must open clean", m.name);
        let samples = cold_samples.get_mut(&m.name).expect("two cold reps");
        samples.push(r.wall.as_micros() as u64);
        samples.sort_unstable();
        let median = samples[1];
        cold_micros.push(median);
        cold_by_project.insert(m.name.clone(), median);
    }

    let stream = edit_session_seeds(&params, &session);
    let mut check_micros: Vec<u64> = Vec::new();
    let (mut spliced, mut units_total) = (0usize, 0usize);
    let (mut degraded_revs, mut broken_revs, mut deduped_revs) = (0usize, 0usize, 0usize);
    let mut ratios: Vec<u64> = Vec::new();
    let mut worst: Vec<(u64, String, usize, usize, bool)> = Vec::new();
    let (mut checks_total, mut matched_cold_total) = (0u64, 0u64);
    for e in &stream {
        let project = params[e.module].name.as_str();
        svc.submit(project, e.op.clone()).expect("inbox has room");
        let r = svc.check(project).expect("session is open");
        let wall = r.wall.as_micros() as u64;
        check_micros.push(wall);
        // Edit-to-report latency relative to a cold compile of the SAME
        // project (per-mille, to keep the sample integral).
        let ratio = wall * 1000 / cold_by_project[project].max(1);
        ratios.push(ratio);
        checks_total += wall;
        matched_cold_total += cold_by_project[project];
        worst.push((
            ratio,
            project.to_string(),
            r.warm_streams,
            r.cold_streams,
            r.clean,
        ));
        spliced += r.warm_streams;
        units_total += r.warm_streams + r.cold_streams;
        if !r.degraded_units.is_empty() {
            degraded_revs += 1;
        }
        if !r.clean {
            broken_revs += 1;
        }
        if r.deduped {
            deduped_revs += 1;
        }
    }
    // The generator repairs every break before the stream ends, so every
    // session's final revision is clean.
    for p in &params {
        let s = svc.session(&p.name).expect("open session");
        assert!(
            s.diagnostics().is_empty(),
            "{} must end the session clean",
            p.name
        );
    }

    cold_micros.sort_unstable();
    check_micros.sort_unstable();
    ratios.sort_unstable();
    worst.sort_by_key(|w| std::cmp::Reverse(w.0));
    let suite_cold_total: u64 = cold_micros.iter().sum();
    let warm_ratio = spliced as f64 / units_total as f64;
    let (p50, p99, max) = (
        percentile(&check_micros, 0.50),
        percentile(&check_micros, 0.99),
        *check_micros.last().expect("non-empty"),
    );
    let cold_p50 = percentile(&cold_micros, 0.50);
    let (ratio_p50, ratio_p99) = (percentile(&ratios, 0.50), percentile(&ratios, 0.99));

    out.push_str(&format!(
        "  cold baseline (median of 3): p50 {cold_p50} us/module, suite total {suite_cold_total} us\n",
    ));
    out.push_str(&format!(
        "  edit-to-report latency: p50 {p50} us  p99 {p99} us  max {max} us over {} checks\n",
        check_micros.len()
    ));
    out.push_str(&format!(
        "  vs cold compile of the same module: p50 {:.2}x  p99 {:.2}x per check, \
         {:.2}x in aggregate (gate: aggregate < 1x)\n",
        ratio_p50 as f64 / 1000.0,
        ratio_p99 as f64 / 1000.0,
        checks_total as f64 / matched_cold_total as f64
    ));
    out.push_str("  slowest checks (vs own cold compile):\n");
    for (ratio, project, warm, cold, clean) in worst.iter().take(4) {
        out.push_str(&format!(
            "    {project}: {:.2}x (warm {warm} / cold {cold} streams{})\n",
            *ratio as f64 / 1000.0,
            if *clean { "" } else { ", broken revision" }
        ));
    }
    out.push_str(&format!(
        "  warm streams: {spliced}/{units_total} ({:.1}% spliced; floor 90%)\n",
        warm_ratio * 100.0
    ));
    out.push_str(&format!(
        "  revisions: {broken_revs} broken (degraded in {degraded_revs}), {deduped_revs} deduped, rest clean\n"
    ));
    let st = svc.store_stats();
    out.push_str(&format!(
        "  shared store: {} entries, {}/{} B used (peak {}), {} hits / {} misses\n",
        st.entries, st.bytes_in_use, st.budget, st.peak_bytes, st.hits, st.misses
    ));

    assert!(
        warm_ratio >= 0.90,
        "warm-hit ratio {warm_ratio:.3} below the 90% floor\n{out}"
    );
    assert!(
        p99 < suite_cold_total,
        "p99 edit-to-report ({p99} us) must beat a cold suite compile \
         ({suite_cold_total} us) at P=1\n{out}"
    );
    assert!(
        checks_total < matched_cold_total,
        "warm session checks ({checks_total} us) must beat cold compiles of the \
         same modules ({matched_cold_total} us) in aggregate at P=1\n{out}"
    );

    if let Some(path) = json_path {
        let json = format!(
            "{{\"schema\":\"ccm2-bench/watch/v1\",\"session\":{{\"modules\":{},\"edits\":{},\"seed\":{}}},\"latency_micros\":{{\"p50\":{p50},\"p99\":{p99},\"max\":{max},\"cold_open_p50\":{cold_p50},\"suite_cold_total\":{suite_cold_total}}},\"vs_cold_same_module\":{{\"p50\":{:.3},\"p99\":{:.3},\"aggregate\":{:.3}}},\"warm\":{{\"spliced\":{spliced},\"units\":{units_total},\"ratio\":{warm_ratio:.4}}},\"revisions\":{{\"checks\":{},\"broken\":{broken_revs},\"degraded\":{degraded_revs},\"deduped\":{deduped_revs}}},\"store\":{{\"entries\":{},\"bytes_in_use\":{},\"peak_bytes\":{},\"hits\":{},\"misses\":{}}}}}\n",
            suite.len(),
            session.edits,
            session.seed,
            ratio_p50 as f64 / 1000.0,
            ratio_p99 as f64 / 1000.0,
            checks_total as f64 / matched_cold_total as f64,
            check_micros.len(),
            st.entries,
            st.bytes_in_use,
            st.peak_bytes,
            st.hits,
            st.misses,
        );
        std::fs::write(path, json).expect("write BENCH_watch.json");
        out.push_str(&format!("\nwrote {}\n", path.display()));
    }
    out
}

// ---- fault-injection survival matrix ------------------------------------

/// An interner-independent rendering of one code unit, so units from
/// different compiles (different interners, different symbol indices)
/// can be compared byte for byte.
fn render_unit(u: &ccm2_codegen::ir::CodeUnit, interner: &Interner) -> String {
    use ccm2_codegen::ir::Instr;
    let mut s = format!(
        "{} level={} params={} frame={:?} shapes={:?}\n",
        interner.resolve(u.name),
        u.level,
        u.param_count,
        u.frame,
        u.shapes
    );
    for ins in &u.code {
        match ins {
            Instr::PushStr(sym) => s.push_str(&format!("PushStr({})\n", interner.resolve(*sym))),
            Instr::PushProc(sym) => s.push_str(&format!("PushProc({})\n", interner.resolve(*sym))),
            Instr::PushGlobalAddr { module, slot } => s.push_str(&format!(
                "PushGlobalAddr({}, {slot})\n",
                interner.resolve(*module)
            )),
            Instr::Call {
                target,
                argc,
                link_up,
            } => s.push_str(&format!(
                "Call({}, {argc}, {link_up})\n",
                interner.resolve(*target)
            )),
            other => s.push_str(&format!("{other:?}\n")),
        }
    }
    s
}

/// The `reproduce -- faults` experiment: a survival matrix over fault
/// site × DKY strategy × executor. Every faulted compile must terminate
/// (no hang, no unwinding out of the executor), surface at least one
/// error naming the faulted stream, and leave every *non-faulted*
/// stream's object code byte-identical to the fault-free baseline.
/// Asserts internally; the returned table is the human-readable proof.
pub fn faults() -> String {
    // Injected panics are *caught* (that is the point of the drill);
    // keep the default hook from spraying backtraces over the report.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(faults_inner);
    std::panic::set_hook(hook);
    match result {
        Ok(report) => report,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn faults_inner() -> String {
    use ccm2_faults::{FaultKind, FaultPlan};
    use std::collections::HashMap;

    let m = ccm2_workload::generate(&ccm2_workload::GenParams {
        fault_seeds: true,
        ..ccm2_workload::GenParams::small("Mx", 0xFA)
    });

    // Each scenario: display name, the fault plan (parameterized on the
    // executor because stalls are virtual units on the simulator and
    // real milliseconds on threads), an optional per-task deadline per
    // executor, and the streams the fault is allowed to touch.
    type PlanFn = fn(bool) -> (FaultPlan, Option<u64>);
    let scenarios: Vec<(&str, PlanFn, &[&str])> = vec![
        (
            "panic  task:procparse(FaultShort)",
            |_| {
                (
                    FaultPlan::single("task:procparse(FaultShort)", FaultKind::Panic),
                    None,
                )
            },
            &["FaultShort"],
        ),
        (
            "panic  task:procparse(FaultNest)",
            |_| {
                (
                    FaultPlan::single("task:procparse(FaultNest)", FaultKind::Panic),
                    None,
                )
            },
            &["FaultNest"],
        ),
        (
            "panic  task:analyze(*FaultLong)",
            |_| {
                (
                    FaultPlan::single("task:analyze(*FaultLong)", FaultKind::Panic),
                    None,
                )
            },
            &["FaultLong"],
        ),
        (
            "panic  task:codegen(*FaultLong)",
            |_| {
                (
                    FaultPlan::single("task:codegen(*FaultLong)", FaultKind::Panic),
                    None,
                )
            },
            &["FaultLong"],
        ),
        (
            "panic  task:codegen(*FaultShort)",
            |_| {
                (
                    FaultPlan::single("task:codegen(*FaultShort)", FaultKind::Panic),
                    None,
                )
            },
            &["FaultShort"],
        ),
        (
            "lost   signal:heading(FaultShort)",
            |_| {
                (
                    FaultPlan::single("signal:heading(FaultShort)", FaultKind::LoseSignal),
                    None,
                )
            },
            &["FaultShort"],
        ),
        (
            "stall  task:procparse(FaultLong)",
            |sim| {
                if sim {
                    (
                        FaultPlan::single(
                            "task:procparse(FaultLong)",
                            FaultKind::Stall { units: 5_000 },
                        ),
                        Some(1_000),
                    )
                } else {
                    (
                        FaultPlan::single(
                            "task:procparse(FaultLong)",
                            FaultKind::Stall { units: 50 },
                        ),
                        Some(10_000),
                    )
                }
            },
            &["FaultLong"],
        ),
    ];

    let compile = |plan: Option<Arc<ccm2_faults::FaultPlan>>,
                   deadline: Option<u64>,
                   strategy: DkyStrategy,
                   sim: bool| {
        let executor = if sim {
            Executor::Sim(SimConfig::firefly(4))
        } else {
            Executor::Threads(2)
        };
        compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::new(Interner::new()),
            Options {
                strategy,
                executor,
                analyze: true,
                faults: plan,
                task_deadline: deadline,
                ..Options::default()
            },
        )
    };

    let mut out = String::from(
        "Fault-injection survival matrix: site x 4 DKY strategies x {sim(4), threads(2)}\n\
         (each cell: compile terminates, >=1 error names the faulted stream,\n\
         non-faulted streams byte-identical to the fault-free baseline)\n\n",
    );
    let mut total = 0usize;

    // Fault-free baselines, one per strategy x executor: a map from
    // resolved unit name to its interner-independent rendering.
    let mut baselines: HashMap<(u32, bool), HashMap<String, String>> = HashMap::new();
    for (si, &strategy) in DkyStrategy::ALL.iter().enumerate() {
        for sim in [true, false] {
            let base = compile(None, None, strategy, sim);
            assert!(
                base.errors.is_empty() && base.image.is_some(),
                "fault-free baseline must be clean"
            );
            let units: HashMap<String, String> = base
                .image
                .as_ref()
                .expect("clean baseline")
                .units
                .iter()
                .map(|u| {
                    (
                        base.interner.resolve(u.name),
                        render_unit(u, &base.interner),
                    )
                })
                .collect();
            baselines.insert((si as u32, sim), units);
        }
    }

    for (label, mk_plan, touched) in &scenarios {
        let mut cells = 0usize;
        let mut degraded = 0usize;
        let mut stalled = 0usize;
        for (si, &strategy) in DkyStrategy::ALL.iter().enumerate() {
            for sim in [true, false] {
                let (plan, deadline) = mk_plan(sim);
                let plan = Arc::new(plan);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    compile(Some(Arc::clone(&plan)), deadline, strategy, sim)
                }));
                let run = run.unwrap_or_else(|_| {
                    panic!("{label} [{strategy:?}/{}]: compile aborted", exec_name(sim))
                });
                assert!(plan.any_fired(), "{label}: the fault site never fired");
                assert!(
                    !run.errors.is_empty(),
                    "{label} [{strategy:?}/{}]: no degradation error surfaced",
                    exec_name(sim)
                );
                let named = run
                    .diagnostics
                    .iter()
                    .any(|d| touched.iter().any(|t| d.message.contains(t)));
                assert!(
                    named,
                    "{label} [{strategy:?}/{}]: no diagnostic names the faulted stream: {:#?}",
                    exec_name(sim),
                    run.diagnostics
                );
                degraded += usize::from(
                    run.errors
                        .iter()
                        .any(|e| matches!(e, ccm2::CompileError::StreamFault { .. })),
                );
                stalled += usize::from(
                    run.errors
                        .iter()
                        .any(|e| matches!(e, ccm2::CompileError::Stalled { .. })),
                );
                // Byte-equivalence of every non-faulted stream.
                let base_units = &baselines[&(si as u32, sim)];
                let image = run.image.as_ref().unwrap_or_else(|| {
                    panic!("{label} [{strategy:?}/{}]: no image", exec_name(sim))
                });
                let is_touched = |name: &str| touched.iter().any(|t| name.contains(t));
                for u in &image.units {
                    let name = run.interner.resolve(u.name);
                    if is_touched(&name) {
                        continue;
                    }
                    let rendered = render_unit(u, &run.interner);
                    assert_eq!(
                        Some(&rendered),
                        base_units.get(&name),
                        "{label} [{strategy:?}/{}]: non-faulted unit `{name}` diverged",
                        exec_name(sim)
                    );
                }
                for name in base_units.keys() {
                    if !is_touched(name) {
                        assert!(
                            image
                                .units
                                .iter()
                                .any(|u| run.interner.resolve(u.name) == *name),
                            "{label} [{strategy:?}/{}]: non-faulted unit `{name}` missing",
                            exec_name(sim)
                        );
                    }
                }
                cells += 1;
            }
        }
        total += cells;
        out.push_str(&format!(
            "  {label:<38} {cells}/8 survived  (degraded in {degraded}, stall-diagnosed in {stalled})\n"
        ));
    }
    out.push_str(&format!(
        "\n{total} faulted compiles: 0 hangs, 0 aborts, non-faulted streams byte-identical\n"
    ));
    out
}

fn exec_name(sim: bool) -> &'static str {
    if sim {
        "sim(4)"
    } else {
        "threads(2)"
    }
}

/// The self-healing recovery matrix (`reproduce -- recover`): supervised
/// stream retry under transient and persistent faults, crossed with all
/// four DKY strategies and both executors, plus the service
/// kill/restart and torn-snapshot drills. Asserts its own invariants —
/// recovered runs byte-identical to fault-free baselines, zero lost
/// requests across a restart, fallback past a torn image — and reports
/// the counts.
pub fn recover() -> String {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(recover_inner);
    std::panic::set_hook(hook);
    match result {
        Ok(report) => report,
        Err(payload) => {
            if let Some(msg) = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
            {
                eprintln!("recover matrix failed: {msg}");
            }
            std::panic::resume_unwind(payload)
        }
    }
}

fn recover_inner() -> String {
    use ccm2_faults::{FaultKind, FaultPlan};
    use std::collections::HashMap;

    let m = ccm2_workload::generate(&ccm2_workload::GenParams {
        fault_seeds: true,
        ..ccm2_workload::GenParams::small("Mx", 0xFA)
    });

    let compile = |plan: Option<Arc<FaultPlan>>,
                   deadline: Option<u64>,
                   strategy: DkyStrategy,
                   sim: bool,
                   retries: u32| {
        let executor = if sim {
            Executor::Sim(SimConfig::firefly(4))
        } else {
            Executor::Threads(2)
        };
        compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::new(Interner::new()),
            Options {
                strategy,
                executor,
                analyze: true,
                faults: plan,
                task_deadline: deadline,
                max_stream_retries: retries,
                ..Options::default()
            },
        )
    };

    let mut out = String::from(
        "Self-healing recovery matrix: fault x 4 DKY strategies x {sim(4), threads(2)}\n\
         (transient faults: every stream recovers, output byte-identical to fault-free;\n\
         persistent faults: retries exhaust, the stream degrades, the rest is identical)\n\n",
    );

    // Fault-free baselines: the full unit map per strategy x executor.
    let mut baselines: HashMap<(u32, bool), HashMap<String, String>> = HashMap::new();
    for (si, &strategy) in DkyStrategy::ALL.iter().enumerate() {
        for sim in [true, false] {
            let base = compile(None, None, strategy, sim, 0);
            assert!(
                base.errors.is_empty() && base.image.is_some(),
                "fault-free baseline must be clean"
            );
            let units: HashMap<String, String> = base
                .image
                .as_ref()
                .expect("clean baseline")
                .units
                .iter()
                .map(|u| {
                    (
                        base.interner.resolve(u.name),
                        render_unit(u, &base.interner),
                    )
                })
                .collect();
            baselines.insert((si as u32, sim), units);
        }
    }

    // Transient faults: an exact site pattern matches dispatch attempt 0
    // only, so the supervised retry (`task:{name}#r1`) runs clean.
    type PlanFn = fn(bool) -> (FaultPlan, Option<u64>);
    let transient: Vec<(&str, PlanFn)> = vec![
        ("panic  task:procparse(FaultShort)", |_| {
            (
                FaultPlan::single("task:procparse(FaultShort)", FaultKind::Panic),
                None,
            )
        }),
        ("panic  task:codegen(*FaultLong)", |_| {
            (
                FaultPlan::single("task:codegen(*FaultLong)", FaultKind::Panic),
                None,
            )
        }),
        ("stall  task:procparse(FaultLong)", |sim| {
            if sim {
                // Deadline above every legitimate task cost (the
                // recovered stream's codegen runs ~1100 units) but
                // far below the stall, so only the stall is fatal.
                (
                    FaultPlan::single(
                        "task:procparse(FaultLong)",
                        FaultKind::Stall { units: 10_000 },
                    ),
                    Some(3_000),
                )
            } else {
                (
                    FaultPlan::single("task:procparse(FaultLong)", FaultKind::Stall { units: 50 }),
                    Some(10_000),
                )
            }
        }),
    ];

    let mut total = 0usize;
    for (label, mk_plan) in &transient {
        let mut cells = 0usize;
        for (si, &strategy) in DkyStrategy::ALL.iter().enumerate() {
            for sim in [true, false] {
                let (plan, deadline) = mk_plan(sim);
                let plan = Arc::new(plan);
                let run = compile(Some(Arc::clone(&plan)), deadline, strategy, sim, 2);
                assert!(plan.any_fired(), "{label}: the fault site never fired");
                assert!(
                    run.errors
                        .iter()
                        .all(|e| matches!(e, ccm2::CompileError::Recovered { .. }))
                        && !run.errors.is_empty(),
                    "{label} [{strategy:?}/{}]: expected only Recovered, got {:?}",
                    exec_name(sim),
                    run.errors
                );
                assert!(
                    run.is_ok(),
                    "{label} [{strategy:?}/{}]: recovery must not fail the compile",
                    exec_name(sim)
                );
                // Full byte-equivalence, faulted stream included: the
                // retried attempt converges to the fault-free output.
                let base_units = &baselines[&(si as u32, sim)];
                let image = run.image.as_ref().unwrap_or_else(|| {
                    panic!("{label} [{strategy:?}/{}]: no image", exec_name(sim))
                });
                let units: HashMap<String, String> = image
                    .units
                    .iter()
                    .map(|u| (run.interner.resolve(u.name), render_unit(u, &run.interner)))
                    .collect();
                assert_eq!(
                    &units,
                    base_units,
                    "{label} [{strategy:?}/{}]: recovered output diverged",
                    exec_name(sim)
                );
                cells += 1;
            }
        }
        total += cells;
        out.push_str(&format!(
            "  transient {label:<38} {cells}/8 recovered, byte-identical, 0 degraded\n"
        ));
    }

    // Persistent faults: a trailing glob also matches every retry site,
    // so the budget exhausts and the stream degrades — while every
    // other stream still matches the baseline byte for byte.
    let persistent: Vec<(&str, &str, &str)> = vec![
        (
            "panic  task:procparse(FaultShort)*",
            "task:procparse(FaultShort)*",
            "FaultShort",
        ),
        (
            "panic  task:codegen(*FaultLong)*",
            "task:codegen(*FaultLong)*",
            "FaultLong",
        ),
    ];
    for (label, pattern, touched) in &persistent {
        let mut cells = 0usize;
        for (si, &strategy) in DkyStrategy::ALL.iter().enumerate() {
            for sim in [true, false] {
                let plan = Arc::new(FaultPlan::single(*pattern, FaultKind::Panic));
                let run = compile(Some(Arc::clone(&plan)), None, strategy, sim, 2);
                assert!(
                    run.errors
                        .iter()
                        .any(|e| matches!(e, ccm2::CompileError::StreamFault { .. })),
                    "{label} [{strategy:?}/{}]: persistent fault must degrade",
                    exec_name(sim)
                );
                assert!(
                    plan.fired().iter().any(|f| f.contains("#r2")),
                    "{label} [{strategy:?}/{}]: the whole retry budget was not consumed: {:?}",
                    exec_name(sim),
                    plan.fired()
                );
                let base_units = &baselines[&(si as u32, sim)];
                let image = run.image.as_ref().unwrap_or_else(|| {
                    panic!("{label} [{strategy:?}/{}]: no image", exec_name(sim))
                });
                for u in &image.units {
                    let name = run.interner.resolve(u.name);
                    if name.contains(touched) {
                        continue;
                    }
                    assert_eq!(
                        Some(&render_unit(u, &run.interner)),
                        base_units.get(&name),
                        "{label} [{strategy:?}/{}]: non-faulted unit `{name}` diverged",
                        exec_name(sim)
                    );
                }
                cells += 1;
            }
        }
        total += cells;
        out.push_str(&format!(
            "  persistent {label:<37} {cells}/8 degraded after retries exhausted\n"
        ));
    }

    // Service kill/restart: seeded load, snapshot at a kill point, kill,
    // restore, finish the load. Zero lost requests; the restored store
    // serves byte-identical artifacts with its LRU order intact.
    out.push('\n');
    let load = ccm2_workload::ServeLoadParams {
        seed: 0x5EED,
        projects: 2,
        clients: 4,
        events: 24,
        edit_every: 6,
        interface_every: 2,
    };
    let events = ccm2_workload::serve_load(&load);
    let mk_request = |e: &ccm2_workload::ServeEvent| ccm2_serve::CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ccm2_serve::ExecChoice::Sim(4),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    };
    let config = ccm2_serve::ServeConfig {
        workers: 2,
        queue_capacity: 32,
        store_budget: 64 * 1024,
        ..ccm2_serve::ServeConfig::default()
    };
    let snap_root = std::env::temp_dir().join(format!("ccm2-recover-{}", std::process::id()));
    for (ki, kill_at) in ccm2_workload::kill_points(&load, 3).into_iter().enumerate() {
        let dir = snap_root.join(format!("kill-{ki}"));
        let _ = std::fs::remove_dir_all(&dir);
        let snaps = ccm2_serve::SnapshotStore::new(&dir).expect("snapshot dir");
        let svc = ccm2_serve::CompileService::start(config);
        let mut served = 0usize;
        for r in svc.serve_batch(events[..kill_at].iter().map(mk_request).collect()) {
            assert!(r.outcome().is_some(), "pre-kill request lost");
            served += 1;
        }
        let exported = svc.store().export();
        svc.snapshot(&snaps).expect("snapshot");
        drop(svc); // the kill

        let svc = ccm2_serve::CompileService::restore(config, &snaps).expect("restore");
        assert_eq!(
            svc.store().export(),
            exported,
            "kill point {kill_at}: LRU order lost across restart"
        );
        // Replaying the most recent pre-kill request is a pure splice:
        // every unit is served from the restored store (the newest
        // entries are the last the LRU would evict).
        let replay = svc
            .submit(mk_request(&events[kill_at - 1]))
            .ticket()
            .expect("admitted")
            .wait();
        let incr = replay.incr.expect("incremental active");
        assert_eq!(
            incr.spliced, incr.units,
            "kill point {kill_at}: restored store did not serve the replay"
        );
        for r in svc.serve_batch(events[kill_at..].iter().map(mk_request).collect()) {
            assert!(r.outcome().is_some(), "post-restart request lost");
            served += 1;
        }
        assert_eq!(served, events.len());
        out.push_str(&format!(
            "  kill/restart at event {kill_at:>2}/{}: {served} served, 0 lost, \
             {} entries restored in LRU order, replay fully spliced\n",
            events.len(),
            exported.len()
        ));

        // Torn-snapshot drill at the same kill point: tear the newest
        // image, restore again, recovery must fall back to the good one.
        let good = snaps.save(svc.store()).expect("second snapshot");
        let exported = svc.store().export();
        drop(svc);
        let bytes = std::fs::read(&good).expect("read image");
        std::fs::write(dir.join("snap-99999999.img"), &bytes[..bytes.len() - 5])
            .expect("write torn image");
        let svc = ccm2_serve::CompileService::restore(config, &snaps).expect("restore past torn");
        assert_eq!(
            svc.store().export(),
            exported,
            "kill point {kill_at}: fallback past the torn image failed"
        );
        assert_eq!(snaps.quarantined_count(), 1, "torn image not quarantined");
        out.push_str(&format!(
            "  kill/restart at event {kill_at:>2}/{}: torn newest image quarantined, \
             fell back to last good image\n",
            events.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&snap_root);

    out.push_str(&format!(
        "\n{total} faulted compiles + 3 kill/restart + 3 torn-snapshot drills: \
         0 hangs, 0 lost requests, recovered outputs byte-identical\n"
    ));
    out
}

/// Enumerates the fault-site namespace (`reproduce -- sites`): one
/// probe-recording compile per executor logs every site the runtime
/// queries — task dispatches (with the `#r{k}` retry namespace), signal
/// deliveries and artifact-store writes — so chaos plans can be written
/// against real site names instead of grepping source.
pub fn fault_sites() -> String {
    use ccm2_faults::{FaultKind, FaultPlan};

    let m = ccm2_workload::generate(&ccm2_workload::GenParams {
        fault_seeds: true,
        ..ccm2_workload::GenParams::small("Mx", 0xFA)
    });
    let compile = |plan: Arc<FaultPlan>, sim: bool, retries: u32| {
        let executor = if sim {
            Executor::Sim(SimConfig::firefly(4))
        } else {
            Executor::Threads(2)
        };
        let store = Arc::new(ccm2_serve::SharedStore::with_faults(
            1 << 20,
            Arc::clone(&plan),
        ));
        compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::new(Interner::new()),
            Options {
                strategy: DkyStrategy::Skeptical,
                executor,
                analyze: true,
                faults: Some(plan),
                incremental: Some(store),
                max_stream_retries: retries,
                ..Options::default()
            },
        )
    };

    let mut out = String::from(
        "Fault-site namespace: every site queried by one probe-recording compile\n\
         (override patterns in a FaultPlan match these names; `*` is a wildcard)\n",
    );
    for sim in [true, false] {
        let plan = Arc::new(FaultPlan::new().with_probe_recording());
        let run = compile(Arc::clone(&plan), sim, 0);
        assert!(run.is_ok(), "probe sweep must compile clean");
        assert!(!plan.any_fired(), "probing must not inject");
        let probed = plan.probed();
        out.push_str(&format!("\n{} — {} sites:\n", exec_name(sim), probed.len()));
        for prefix in ["task:", "signal:", "store:"] {
            let group: Vec<&String> = probed.iter().filter(|s| s.starts_with(prefix)).collect();
            out.push_str(&format!("  {prefix:<8} {} sites\n", group.len()));
            for site in group {
                out.push_str(&format!("    {site}\n"));
            }
        }
    }

    // The retry namespace only appears when a supervised retry actually
    // dispatches; demonstrate it with one transient fault.
    let plan = Arc::new(
        FaultPlan::single("task:procparse(FaultShort)", FaultKind::Panic).with_probe_recording(),
    );
    let run = compile(Arc::clone(&plan), true, 1);
    assert!(run.is_ok(), "transient fault recovers");
    let retry_sites: Vec<String> = plan
        .probed()
        .into_iter()
        .filter(|s| s.contains("#r"))
        .collect();
    assert!(!retry_sites.is_empty(), "retry dispatch was not probed");
    out.push_str(
        "\nretry namespace (supervised recovery, attempt k queries `task:{name}#r{k}`):\n",
    );
    for site in retry_sites {
        out.push_str(&format!("    {site}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_partition_everything() {
        let rows: Vec<SpeedupRow> = (0..37)
            .map(|i| SpeedupRow {
                name: format!("m{i}"),
                t: vec![1000 - i as u64, 600],
            })
            .collect();
        let q = quartiles(&rows);
        assert_eq!(q.iter().map(Vec::len).sum::<usize>(), 37);
        assert_eq!(q[0].len(), 10);
        assert_eq!(q[3].len(), 9);
        // Q1 holds the fastest (smallest t1) rows.
        assert!(q[0].contains(&36));
    }

    #[test]
    fn speedup_row_math() {
        let r = SpeedupRow {
            name: "x".into(),
            t: vec![1000, 500, 250],
        };
        assert!((r.speedup(2) - 2.0).abs() < 1e-9);
        assert!((r.speedup(3) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fig5_mentions_all_stream_kinds() {
        let f = fig5();
        assert!(f.contains("Lexor"));
        assert!(f.contains("Splitter"));
        assert!(f.contains("Importer"));
        assert!(f.contains("StmtAnalyzer/CodeGen"));
        assert!(f.contains("CacheSplice"), "priority line covers splices");
    }

    #[test]
    fn serve_report_holds_its_invariants() {
        // serve_with asserts internally: byte-equivalence with
        // standalone compiles (matrix and per-event), no lost requests,
        // and the store budget invariant. A small load keeps this test
        // cheap; `reproduce -- serve` runs the full default.
        let report = serve_with(
            &ccm2_workload::ServeLoadParams {
                events: 12,
                ..ccm2_workload::ServeLoadParams::default()
            },
            ccm2_serve::ServeConfig {
                workers: 2,
                queue_capacity: 8,
                store_budget: 8 * 1024,
                paused: false,
                ..ccm2_serve::ServeConfig::default()
            },
        );
        assert!(report.contains("dedup ratio"));
        assert!(report.contains("never exceeded"));
        assert!(report.contains("0 lost, 0 mismatched"));
    }

    #[test]
    fn fabric_drill_holds_its_invariants() {
        // fabric_with asserts internally: byte-equivalence with
        // standalone compiles at every shard width and across the kill,
        // zero lost requests, store rebuilt bit-identically from
        // snapshot + delta replay with fewer bytes than a full image.
        let report = fabric_with(
            &ccm2_workload::ServeLoadParams {
                seed: 0xFAB5,
                projects: 2,
                clients: 4,
                events: 16,
                edit_every: 5,
                interface_every: 2,
            },
            &[1, 3],
            None,
        );
        assert!(report.contains("byte-identical to standalone"));
        assert!(report.contains("0 lost, 0 mismatched"));
        assert!(report.contains("delta restart"));
        assert!(!report.contains("wrote "), "no JSON without a path");
    }

    #[test]
    fn split_brain_cell_holds_its_invariants() {
        // The cell asserts internally: 0 lost, 0 hangs, byte-identity
        // to standalone, no epoch with two leaders, membership
        // converged on the durable image. One loopback cell per drill
        // kind keeps the unit suite fast; the full seeded matrix runs
        // under `reproduce -- chaosnet`.
        for kind in [
            ccm2_workload::RouterDrillKind::Kill,
            ccm2_workload::RouterDrillKind::Partition,
            ccm2_workload::RouterDrillKind::Duel,
        ] {
            let cell = split_brain_cell(0xD1CE, false, kind);
            assert!(cell.promoted_epoch >= 2, "standby claimed a fresh epoch");
            assert!(cell.promote_ticks >= 1);
            if kind != ccm2_workload::RouterDrillKind::Kill {
                assert!(
                    cell.a_demotions >= 1,
                    "the surviving ex-leader must demote ({:?}): {:?}",
                    kind,
                    cell.transcript
                );
            }
        }
    }

    #[test]
    fn split_brain_transcripts_are_deterministic() {
        // Same seed, same drill → identical transcripts, line for line.
        // The transcript carries phases, roles, epochs, grant histories
        // and memberships — and no wall-clock values — so this is the
        // replayability guarantee for split-brain investigations.
        let kind = ccm2_workload::RouterDrillKind::Duel;
        let first = split_brain_cell(0x5EED, false, kind).transcript;
        let second = split_brain_cell(0x5EED, false, kind).transcript;
        assert_eq!(first, second, "same seed must replay identically");
        let other = split_brain_cell(0x5EED + 1, false, kind).transcript;
        assert_ne!(first, other, "different seed takes a different path");
    }

    #[test]
    fn analysis_phase_parallelizes() {
        // A lint-seeded mid-size module: per-procedure Analyze tasks must
        // overlap on 8 processors, shrinking the phase's elapsed span.
        let mut p = ccm2_workload::suite_params(24);
        p.lint_seeds = true;
        let m = ccm2_workload::generate(&p);
        let opts = Options {
            analyze: true,
            ..Options::default()
        };
        let span1 = analysis_span(&sim_compile(&m, 1, opts.clone()).report.trace);
        let span8 = analysis_span(&sim_compile(&m, 8, opts).report.trace);
        assert!(span1 > 0, "no Analyze segments in the trace");
        assert!(
            (span8 as f64) < span1 as f64,
            "analysis span did not shrink: P=1 {span1}, P=8 {span8}"
        );
    }

    #[test]
    fn warm_suite_rebuild_is_faster_and_fully_hits() {
        use ccm2_incr::{ArtifactStore, MemStore};
        let m = ccm2_workload::generate(&ccm2_workload::suite_params(6));
        let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
        let opts = Options {
            incremental: Some(Arc::clone(&store)),
            ..Options::default()
        };
        let cold = sim_compile(&m, 4, opts.clone());
        let warm = sim_compile(&m, 4, opts);
        let ct = cold.report.virtual_time.expect("sim");
        let wt = warm.report.virtual_time.expect("sim");
        assert!(wt < ct, "warm {wt} not faster than cold {ct}");
        let stats = warm.incr.expect("incremental active");
        assert_eq!(stats.recompiled, 0);
        assert_eq!(stats.spliced, stats.units);
    }

    #[test]
    fn small_module_sim_and_seq_agree_on_success() {
        let m = ccm2_workload::generate(&ccm2_workload::GenParams::small("BenchSmoke", 9));
        let conc = sim_compile(&m, 2, Options::default());
        assert!(conc.is_ok());
        assert!(seq_virtual_time(&m) > 0);
    }
}
