//! Statement semantic analysis + code generation.
//!
//! Paper §3 uses an unorthodox task division: one task parses a stream and
//! analyzes *declarations*; a second task performs semantic analysis of
//! *statements* and then generates code, fused, because by the time
//! statement work is ready there are plenty of parallel tasks. This module
//! is that second task's body: it walks statement ASTs, resolves names
//! through the concurrent symbol tables (participating in DKY handling and
//! the Table 2 statistics), type-checks, and emits M-code.
//!
//! The same code serves the sequential compiler — symbol tables are simply
//! always complete there.

use std::sync::Arc;

use ccm2_support::diag::Diagnostic;
use ccm2_support::ids::ScopeId;
use ccm2_support::intern::Symbol;
use ccm2_support::source::Span;
use ccm2_support::work::Work;

use ccm2_sema::builtins::{Builtin, BuiltinDef};
use ccm2_sema::consteval::eval_const;
use ccm2_sema::symtab::{LookupResult, ProcSig, ScopeTable, SymbolKind};
use ccm2_sema::types::{Type, TypeId};
use ccm2_sema::value::ConstValue;
use ccm2_sema::Sema;
use ccm2_syntax::ast::{BinOp, CaseLabel, Expr, ExprKind, SetElem, Stmt, StmtKind, UnOp};

use crate::ir::{CodeUnit, Instr, Shape};
use crate::shape::shape_of;

/// Generates the code unit for one procedure whose scope has already been
/// fully declared (parameters and locals present in the symbol table).
pub fn gen_procedure(
    sema: &Sema,
    scope: ScopeId,
    code_name: Symbol,
    sig: &ProcSig,
    body: &[Stmt],
) -> CodeUnit {
    let table = sema.tables.scope(scope);
    let mut e = Emitter::new(sema, scope, code_name, table.level(), sig.ret);
    e.init_frame_from_scope(&table);
    e.unit.param_count = sig.params.len() as u32;
    e.stmts(body);
    // Fall-off-the-end: functions return a default value, proper
    // procedures just return.
    match sig.ret {
        Some(_) => {
            e.emit(Instr::PushInt(0));
            e.emit(Instr::ReturnValue);
        }
        None => {
            e.emit(Instr::Return);
        }
    }
    e.finish()
}

/// Generates the module-body code unit. Module-level variables live in
/// the global area, so the unit's frame holds only compiler temporaries.
pub fn gen_module_body(
    sema: &Sema,
    scope: ScopeId,
    module_name: Symbol,
    body: &[Stmt],
) -> CodeUnit {
    let mut e = Emitter::new(sema, scope, module_name, 0, None);
    e.stmts(body);
    e.emit(Instr::Halt);
    e.finish()
}

/// Generates the deterministic *error unit* standing in for a stream
/// whose body the parser had to recover (a poisoned body): same shape as
/// the fault-degradation stub, so downstream merge/splice treat it like
/// any other unit. Never cached — the clean-compile gate keeps error
/// diagnostics (and therefore these units) out of the incremental store.
pub fn gen_error_unit(
    interner: &ccm2_support::intern::Interner,
    code_name: Symbol,
    level: u32,
) -> CodeUnit {
    let mut unit = CodeUnit::new(code_name, level);
    let msg = interner.intern(&format!(
        "degraded: unit `{}` has syntax errors",
        interner.resolve(code_name)
    ));
    unit.code = vec![Instr::PushStr(msg), Instr::Return];
    unit
}

/// Whether `unit` is an error unit produced by [`gen_error_unit`].
pub fn is_error_unit(unit: &CodeUnit, interner: &ccm2_support::intern::Interner) -> bool {
    matches!(
        unit.code.as_slice(),
        [Instr::PushStr(msg), Instr::Return]
            if interner.resolve(*msg).starts_with("degraded: unit `")
    )
}

/// The shapes of a module scope's global-variable area, in slot order
/// (input to [`crate::merge::Merger::add_globals`]).
pub fn global_shapes(sema: &Sema, scope: ScopeId) -> Vec<Shape> {
    let table = sema.tables.scope(scope);
    let mut slots: Vec<(u32, Shape)> = table
        .entries_sorted()
        .into_iter()
        .filter_map(|e| match e.kind {
            SymbolKind::Var(v) if v.module.is_some() => Some((v.slot, shape_of(&sema.types, v.ty))),
            _ => None,
        })
        .collect();
    slots.sort_by_key(|(s, _)| *s);
    slots.into_iter().map(|(_, s)| s).collect()
}

struct WithBinding {
    record_ty: TypeId,
    slot: u32,
}

struct Emitter<'a> {
    sema: &'a Sema,
    scope: ScopeId,
    level: u32,
    ret_ty: Option<TypeId>,
    unit: CodeUnit,
    next_slot: u32,
    with_stack: Vec<WithBinding>,
    loop_exits: Vec<Vec<usize>>,
    file: ccm2_support::source::FileId,
}

impl<'a> Emitter<'a> {
    fn new(
        sema: &'a Sema,
        scope: ScopeId,
        code_name: Symbol,
        level: u32,
        ret_ty: Option<TypeId>,
    ) -> Emitter<'a> {
        let file = sema.tables.scope(scope).file();
        Emitter {
            sema,
            scope,
            level,
            ret_ty,
            unit: CodeUnit::new(code_name, level),
            next_slot: 0,
            with_stack: Vec::new(),
            loop_exits: Vec::new(),
            file,
        }
    }

    /// Builds the frame layout from the scope's variable entries
    /// (parameters and locals, in slot order).
    fn init_frame_from_scope(&mut self, table: &Arc<ScopeTable>) {
        let mut slots: Vec<(u32, Shape)> = table
            .entries_sorted()
            .into_iter()
            .filter_map(|e| match e.kind {
                SymbolKind::Var(v) if v.module.is_none() && v.level == self.level => {
                    let shape = if v.is_var_param {
                        Shape::Addr
                    } else {
                        shape_of(&self.sema.types, v.ty)
                    };
                    Some((v.slot, shape))
                }
                _ => None,
            })
            .collect();
        slots.sort_by_key(|(s, _)| *s);
        self.unit.frame = slots.into_iter().map(|(_, s)| s).collect();
        self.next_slot = self.unit.frame.len() as u32;
    }

    fn finish(self) -> CodeUnit {
        self.unit
    }

    // ----- low-level helpers ---------------------------------------------

    fn emit(&mut self, ins: Instr) -> usize {
        self.sema.meter.charge(Work::CodeGen, 1);
        self.unit.code.push(ins);
        self.unit.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.unit.code.len() as u32
    }

    fn patch_jump(&mut self, at: usize, target: u32) {
        match self.unit.code.get_mut(at) {
            Some(Instr::Jump(t)) | Some(Instr::JumpIfFalse(t)) | Some(Instr::JumpIfTrue(t)) => {
                *t = target
            }
            other => {
                // An emitter bug, not a user error — but a diagnostic (and
                // a suppressed image) beats tearing down the whole
                // concurrent compile from one codegen task.
                let what = format!("internal error: patching non-jump instruction {other:?}");
                self.error(Span { lo: 0, hi: 0 }, what);
            }
        }
    }

    fn alloc_temp(&mut self, shape: Shape) -> u32 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.unit.frame.push(shape);
        slot
    }

    fn error(&self, span: Span, msg: impl Into<String>) {
        self.sema
            .sink
            .report(Diagnostic::error(self.file, span, msg));
    }

    fn resolve(&self, name: Symbol) -> Option<LookupResult> {
        self.sema.resolver.lookup(self.scope, name)
    }

    /// Field index and type within a record type.
    fn field_of(&self, record: TypeId, name: Symbol) -> Option<(u32, TypeId)> {
        match self.sema.types.get(record) {
            Type::Record { fields } => fields
                .iter()
                .position(|(f, _)| *f == name)
                .map(|ix| (ix as u32, fields[ix].1)),
            _ => None,
        }
    }

    /// If `name` is a field of an active WITH binding, returns it
    /// (innermost binding wins, as the language requires).
    fn with_binding(&self, name: Symbol) -> Option<(usize, u32, TypeId)> {
        for (ix, b) in self.with_stack.iter().enumerate().rev() {
            if let Some((field_ix, fty)) = self.field_of(b.record_ty, name) {
                return Some((ix, field_ix, fty));
            }
        }
        None
    }

    // ----- designators ----------------------------------------------------

    /// Emits code leaving the *address* of a designator on the stack;
    /// returns the designated type.
    fn designator_addr(&mut self, e: &Expr) -> TypeId {
        self.sema.meter.charge(Work::StmtAnalyze, 1);
        match &e.kind {
            ExprKind::Name(id) => {
                if let Some((bind_ix, field_ix, fty)) = self.with_binding(id.name) {
                    // WITH scope hit (Table 2's "WITH" row).
                    self.sema.resolver.record_with_hit();
                    let slot = self.with_stack[bind_ix].slot;
                    self.emit(Instr::PushAddr { level_up: 0, slot });
                    self.emit(Instr::Load);
                    self.emit(Instr::AddrField(field_ix));
                    return fty;
                }
                match self.resolve(id.name) {
                    Some(LookupResult::Entry(entry)) => match entry.kind {
                        SymbolKind::Var(v) => {
                            if let Some(module) = v.module {
                                self.emit(Instr::PushGlobalAddr {
                                    module,
                                    slot: v.slot,
                                });
                            } else {
                                let level_up = self.level.saturating_sub(v.level);
                                self.emit(Instr::PushAddr {
                                    level_up,
                                    slot: v.slot,
                                });
                                if v.is_var_param {
                                    // The slot holds the caller-supplied
                                    // address.
                                    self.emit(Instr::Load);
                                }
                            }
                            v.ty
                        }
                        _ => {
                            self.error(
                                e.span,
                                format!(
                                    "`{}` is not a variable",
                                    self.sema.interner.resolve(id.name)
                                ),
                            );
                            TypeId::ERROR
                        }
                    },
                    Some(LookupResult::Builtin(_)) => {
                        self.error(e.span, "builtin is not a variable");
                        TypeId::ERROR
                    }
                    None => {
                        self.error(
                            e.span,
                            format!(
                                "undeclared identifier `{}`",
                                self.sema.interner.resolve(id.name)
                            ),
                        );
                        TypeId::ERROR
                    }
                }
            }
            ExprKind::Field { base, field } => {
                // `Module.var` (qualified) or record field selection.
                if let ExprKind::Name(mod_id) = &base.kind {
                    if self.with_binding(mod_id.name).is_none() {
                        if let Some(LookupResult::Entry(entry)) = self.resolve(mod_id.name) {
                            if let SymbolKind::Module { scope } = entry.kind {
                                return self.qualified_addr(scope, mod_id.name, *field, e.span);
                            }
                        }
                    }
                }
                let base_ty = self.designator_addr(base);
                if base_ty == TypeId::ERROR {
                    return TypeId::ERROR;
                }
                match self.field_of(base_ty, field.name) {
                    Some((ix, fty)) => {
                        self.emit(Instr::AddrField(ix));
                        fty
                    }
                    None => {
                        self.error(
                            field.span,
                            format!(
                                "no field `{}` in this record",
                                self.sema.interner.resolve(field.name)
                            ),
                        );
                        TypeId::ERROR
                    }
                }
            }
            ExprKind::Index { base, indices } => {
                let mut ty = self.designator_addr(base);
                for ix_expr in indices {
                    match self.sema.types.get(self.sema.types.strip_subrange(ty)) {
                        Type::Array { index, elem } => {
                            let ixt = self.expr(ix_expr);
                            if !self.sema.types.same_type(
                                self.sema.types.strip_subrange(ixt),
                                self.sema.types.strip_subrange(index),
                            ) {
                                self.error(ix_expr.span, "index type mismatch");
                            }
                            let (lo, hi) = self.sema.types.ordinal_bounds(index).unwrap_or((0, -1));
                            self.emit(Instr::AddrIndex {
                                lo,
                                len: hi - lo + 1,
                            });
                            ty = elem;
                        }
                        Type::OpenArray { elem } => {
                            let _ = self.expr(ix_expr);
                            // Dynamic extent: the VM checks against the
                            // actual array length.
                            self.emit(Instr::AddrIndex { lo: 0, len: -1 });
                            ty = elem;
                        }
                        Type::Error => return TypeId::ERROR,
                        _ => {
                            self.error(base.span, "indexing a non-array");
                            return TypeId::ERROR;
                        }
                    }
                }
                ty
            }
            ExprKind::Deref { base } => {
                let ty = self.designator_addr(base);
                match self.sema.types.get(self.sema.types.strip_subrange(ty)) {
                    Type::Pointer { to } => {
                        self.emit(Instr::AddrDeref);
                        to
                    }
                    Type::Error => TypeId::ERROR,
                    _ => {
                        self.error(base.span, "dereferencing a non-pointer");
                        TypeId::ERROR
                    }
                }
            }
            _ => {
                self.error(e.span, "expression is not a designator");
                TypeId::ERROR
            }
        }
    }

    /// Emits the address of `Module.name`.
    fn qualified_addr(
        &mut self,
        module_scope: ScopeId,
        _module: Symbol,
        field: ccm2_syntax::ast::Ident,
        span: Span,
    ) -> TypeId {
        match self
            .sema
            .resolver
            .lookup_qualified(module_scope, field.name)
        {
            Some(entry) => match entry.kind {
                SymbolKind::Var(v) => {
                    let module = v
                        .module
                        .unwrap_or_else(|| self.sema.tables.scope(module_scope).name());
                    self.emit(Instr::PushGlobalAddr {
                        module,
                        slot: v.slot,
                    });
                    v.ty
                }
                _ => {
                    self.error(span, "qualified name is not a variable");
                    TypeId::ERROR
                }
            },
            None => {
                self.error(
                    span,
                    format!(
                        "`{}` is not exported",
                        self.sema.interner.resolve(field.name)
                    ),
                );
                TypeId::ERROR
            }
        }
    }

    // ----- expressions -----------------------------------------------------

    fn push_const(&mut self, v: ConstValue) {
        match v {
            ConstValue::Int(x) => self.emit(Instr::PushInt(x)),
            ConstValue::Real(bits) => self.emit(Instr::PushReal(bits)),
            ConstValue::Bool(b) => self.emit(Instr::PushBool(b)),
            ConstValue::Char(c) => self.emit(Instr::PushChar(c)),
            ConstValue::Str(s) => self.emit(Instr::PushStr(s)),
            ConstValue::Set(m) => self.emit(Instr::PushSet(m)),
            ConstValue::Nil => self.emit(Instr::PushNil),
        };
    }

    /// Emits code leaving the expression's *value* on the stack; returns
    /// its type.
    fn expr(&mut self, e: &Expr) -> TypeId {
        self.sema.meter.charge(Work::StmtAnalyze, 1);
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.emit(Instr::PushInt(*v));
                TypeId::INTEGER
            }
            ExprKind::RealLit(bits) => {
                self.emit(Instr::PushReal(*bits));
                TypeId::REAL
            }
            ExprKind::CharLit(c) => {
                self.emit(Instr::PushChar(*c));
                TypeId::CHAR
            }
            ExprKind::StrLit(s) => {
                self.emit(Instr::PushStr(*s));
                TypeId::STRING
            }
            ExprKind::Name(id) => {
                if self.with_binding(id.name).is_some() {
                    let ty = self.designator_addr(e);
                    self.emit(Instr::Load);
                    return ty;
                }
                match self.resolve(id.name) {
                    Some(LookupResult::Entry(entry)) => match &entry.kind {
                        SymbolKind::Const { value, ty } => {
                            self.push_const(*value);
                            *ty
                        }
                        SymbolKind::EnumConst { ty, value } => {
                            self.emit(Instr::PushInt(*value));
                            *ty
                        }
                        SymbolKind::Var(_) => {
                            let ty = self.designator_addr(e);
                            self.emit(Instr::Load);
                            ty
                        }
                        SymbolKind::Proc(p) => {
                            // Procedure used as a value.
                            let code_name = p.code_name;
                            let ty = self.sema.types.add(Type::Proc {
                                params: p.sig.params.iter().map(|q| (q.is_var, q.ty)).collect(),
                                ret: p.sig.ret,
                            });
                            self.emit(Instr::PushProc(code_name));
                            ty
                        }
                        _ => {
                            self.error(e.span, "name is not a value");
                            TypeId::ERROR
                        }
                    },
                    Some(LookupResult::Builtin(BuiltinDef::Const(v, ty))) => {
                        self.push_const(v);
                        ty
                    }
                    Some(LookupResult::Builtin(_)) => {
                        self.error(e.span, "builtin needs a call or type context");
                        TypeId::ERROR
                    }
                    None => {
                        self.error(
                            e.span,
                            format!(
                                "undeclared identifier `{}`",
                                self.sema.interner.resolve(id.name)
                            ),
                        );
                        TypeId::ERROR
                    }
                }
            }
            ExprKind::Field { base, field } => {
                // Qualified value `Module.x`?
                if let ExprKind::Name(mod_id) = &base.kind {
                    if self.with_binding(mod_id.name).is_none() {
                        if let Some(LookupResult::Entry(entry)) = self.resolve(mod_id.name) {
                            if let SymbolKind::Module { scope } = entry.kind {
                                return self.qualified_value(scope, *field, e.span);
                            }
                        }
                    }
                }
                let ty = self.designator_addr(e);
                self.emit(Instr::Load);
                ty
            }
            ExprKind::Index { .. } | ExprKind::Deref { .. } => {
                let ty = self.designator_addr(e);
                self.emit(Instr::Load);
                ty
            }
            ExprKind::Call { callee, args } => self.call(callee, args, e.span, false),
            ExprKind::Unary { op, operand } => {
                let ty = self.expr(operand);
                match op {
                    UnOp::Neg => {
                        if !(self.sema.types.is_integerlike(ty) || ty == TypeId::REAL) {
                            self.error(e.span, "negation needs a numeric operand");
                        }
                        self.emit(Instr::Neg);
                        ty
                    }
                    UnOp::Pos => ty,
                    UnOp::Not => {
                        if self.sema.types.strip_subrange(ty) != TypeId::BOOLEAN
                            && ty != TypeId::ERROR
                        {
                            self.error(e.span, "NOT needs a BOOLEAN operand");
                        }
                        self.emit(Instr::Not);
                        TypeId::BOOLEAN
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, e.span),
            ExprKind::SetCons { of_type, elems } => self.set_cons(of_type, elems, e.span),
        }
    }

    fn qualified_value(
        &mut self,
        module_scope: ScopeId,
        field: ccm2_syntax::ast::Ident,
        span: Span,
    ) -> TypeId {
        match self
            .sema
            .resolver
            .lookup_qualified(module_scope, field.name)
        {
            Some(entry) => match &entry.kind {
                SymbolKind::Const { value, ty } => {
                    self.push_const(*value);
                    *ty
                }
                SymbolKind::EnumConst { ty, value } => {
                    self.emit(Instr::PushInt(*value));
                    *ty
                }
                SymbolKind::Var(v) => {
                    let module = v
                        .module
                        .unwrap_or_else(|| self.sema.tables.scope(module_scope).name());
                    self.emit(Instr::PushGlobalAddr {
                        module,
                        slot: v.slot,
                    });
                    self.emit(Instr::Load);
                    v.ty
                }
                SymbolKind::Proc(p) => {
                    let ty = self.sema.types.add(Type::Proc {
                        params: p.sig.params.iter().map(|q| (q.is_var, q.ty)).collect(),
                        ret: p.sig.ret,
                    });
                    self.emit(Instr::PushProc(p.code_name));
                    ty
                }
                _ => {
                    self.error(span, "qualified name is not a value");
                    TypeId::ERROR
                }
            },
            None => {
                self.error(
                    span,
                    format!(
                        "`{}` is not exported",
                        self.sema.interner.resolve(field.name)
                    ),
                );
                TypeId::ERROR
            }
        }
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr, span: Span) -> TypeId {
        // Short-circuit forms first.
        match op {
            BinOp::And => {
                let lt = self.expr(lhs);
                self.check_bool(lt, lhs.span);
                let jf = self.emit(Instr::JumpIfFalse(0));
                let rt = self.expr(rhs);
                self.check_bool(rt, rhs.span);
                let jend = self.emit(Instr::Jump(0));
                let f = self.here();
                self.emit(Instr::PushBool(false));
                let end = self.here();
                self.patch_jump(jf, f);
                self.patch_jump(jend, end);
                return TypeId::BOOLEAN;
            }
            BinOp::Or => {
                let lt = self.expr(lhs);
                self.check_bool(lt, lhs.span);
                let jt = self.emit(Instr::JumpIfTrue(0));
                let rt = self.expr(rhs);
                self.check_bool(rt, rhs.span);
                let jend = self.emit(Instr::Jump(0));
                let t = self.here();
                self.emit(Instr::PushBool(true));
                let end = self.here();
                self.patch_jump(jt, t);
                self.patch_jump(jend, end);
                return TypeId::BOOLEAN;
            }
            _ => {}
        }
        let lt = self.expr(lhs);
        let rt = self.expr(rhs);
        let types = &self.sema.types;
        let l = types.strip_subrange(lt);
        let is_set = matches!(types.get(l), Type::Bitset | Type::Set { .. });
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                if !types.same_type(lt, rt) {
                    self.error(span, "operand types differ");
                }
                if !(types.is_integerlike(l) || l == TypeId::REAL || is_set) {
                    self.error(span, "arithmetic needs numeric or set operands");
                }
                self.emit(match op {
                    BinOp::Add => Instr::Add,
                    BinOp::Sub => Instr::Sub,
                    _ => Instr::Mul,
                });
                lt
            }
            BinOp::RealDiv => {
                if !types.same_type(lt, rt) {
                    self.error(span, "operand types differ");
                }
                if !(l == TypeId::REAL || is_set || l == TypeId::ERROR) {
                    self.error(span, "`/` needs REAL or set operands");
                }
                self.emit(Instr::DivReal);
                lt
            }
            BinOp::IntDiv | BinOp::Modulo => {
                if !(types.is_integerlike(l) && types.is_integerlike(types.strip_subrange(rt))) {
                    self.error(span, "DIV/MOD need integer operands");
                }
                self.emit(if op == BinOp::IntDiv {
                    Instr::DivInt
                } else {
                    Instr::ModInt
                });
                TypeId::INTEGER
            }
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                if !(types.same_type(lt, rt)
                    || types.assignable(lt, rt)
                    || types.assignable(rt, lt))
                {
                    self.error(span, "incomparable operand types");
                }
                self.emit(match op {
                    BinOp::Eq => Instr::CmpEq,
                    BinOp::Neq => Instr::CmpNe,
                    BinOp::Lt => Instr::CmpLt,
                    BinOp::Le => Instr::CmpLe,
                    BinOp::Gt => Instr::CmpGt,
                    _ => Instr::CmpGe,
                });
                TypeId::BOOLEAN
            }
            BinOp::In => {
                if !types.is_ordinal(lt) {
                    self.error(span, "IN needs an ordinal left operand");
                }
                let rs = types.strip_subrange(rt);
                if !matches!(types.get(rs), Type::Bitset | Type::Set { .. } | Type::Error) {
                    self.error(span, "IN needs a set right operand");
                }
                self.emit(Instr::InSet);
                TypeId::BOOLEAN
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn check_bool(&mut self, ty: TypeId, span: Span) {
        if self.sema.types.strip_subrange(ty) != TypeId::BOOLEAN && ty != TypeId::ERROR {
            self.error(span, "condition must be BOOLEAN");
        }
    }

    fn set_cons(
        &mut self,
        of_type: &Option<ccm2_syntax::ast::Ident>,
        elems: &[SetElem],
        span: Span,
    ) -> TypeId {
        let set_ty = match of_type {
            None => TypeId::BITSET,
            Some(id) => match self.resolve(id.name) {
                Some(LookupResult::Entry(e)) => match e.kind {
                    SymbolKind::TypeName { ty } => {
                        let s = self.sema.types.strip_subrange(ty);
                        if !matches!(self.sema.types.get(s), Type::Set { .. } | Type::Bitset) {
                            self.error(span, "set constructor type is not a set type");
                        }
                        ty
                    }
                    _ => {
                        self.error(span, "set constructor needs a type name");
                        TypeId::ERROR
                    }
                },
                Some(LookupResult::Builtin(BuiltinDef::Type(t))) => t,
                _ => {
                    self.error(span, "unknown set type");
                    TypeId::ERROR
                }
            },
        };
        self.emit(Instr::PushSet(0));
        for el in elems {
            match el {
                SetElem::Single(x) => {
                    let t = self.expr(x);
                    if !self.sema.types.is_ordinal(t) {
                        self.error(x.span, "set element must be ordinal");
                    }
                    self.emit(Instr::SetIncl);
                }
                SetElem::Range(lo, hi) => {
                    let t1 = self.expr(lo);
                    let t2 = self.expr(hi);
                    if !self.sema.types.is_ordinal(t1) || !self.sema.types.is_ordinal(t2) {
                        self.error(lo.span, "set range must be ordinal");
                    }
                    self.emit(Instr::SetInclRange);
                }
            }
        }
        set_ty
    }

    // ----- calls -----------------------------------------------------------

    /// Emits a call. `as_stmt` is true in statement position (the callee
    /// must be a proper procedure there; in expression position it must be
    /// a function).
    fn call(&mut self, callee: &Expr, args: &[Expr], span: Span, as_stmt: bool) -> TypeId {
        // Builtins and direct procedure calls need the callee's identity.
        match &callee.kind {
            ExprKind::Name(id) => match self.resolve(id.name) {
                Some(LookupResult::Builtin(BuiltinDef::Proc(b))) => {
                    self.builtin_call(b, args, span, as_stmt)
                }
                Some(LookupResult::Entry(entry)) => match &entry.kind {
                    SymbolKind::Proc(p) => {
                        let sig = p.sig.clone();
                        let code_name = p.code_name;
                        let level = p.level;
                        self.direct_call(code_name, level, &sig, args, span, as_stmt)
                    }
                    SymbolKind::Var(v) => {
                        let vt = self.sema.types.strip_subrange(v.ty);
                        if let Type::Proc { params, ret } = self.sema.types.get(vt) {
                            return self.indirect_call(callee, &params, ret, args, span, as_stmt);
                        }
                        self.error(span, "called variable is not a procedure value");
                        TypeId::ERROR
                    }
                    _ => {
                        self.error(span, "name is not callable");
                        TypeId::ERROR
                    }
                },
                _ => {
                    self.error(
                        span,
                        format!(
                            "undeclared identifier `{}`",
                            self.sema.interner.resolve(id.name)
                        ),
                    );
                    TypeId::ERROR
                }
            },
            ExprKind::Field { base, field } => {
                if let ExprKind::Name(mod_id) = &base.kind {
                    if let Some(LookupResult::Entry(entry)) = self.resolve(mod_id.name) {
                        if let SymbolKind::Module { scope } = entry.kind {
                            match self.sema.resolver.lookup_qualified(scope, field.name) {
                                Some(e) => {
                                    if let SymbolKind::Proc(p) = &e.kind {
                                        let sig = p.sig.clone();
                                        let code_name = p.code_name;
                                        let level = p.level;
                                        return self.direct_call(
                                            code_name, level, &sig, args, span, as_stmt,
                                        );
                                    }
                                    self.error(span, "qualified name is not a procedure");
                                    return TypeId::ERROR;
                                }
                                None => {
                                    self.error(
                                        span,
                                        format!(
                                            "`{}` is not exported",
                                            self.sema.interner.resolve(field.name)
                                        ),
                                    );
                                    return TypeId::ERROR;
                                }
                            }
                        }
                    }
                }
                // Record field holding a procedure value.
                self.indirect_call_dyn(callee, args, span, as_stmt)
            }
            _ => self.indirect_call_dyn(callee, args, span, as_stmt),
        }
    }

    fn check_ret_position(&mut self, ret: Option<TypeId>, span: Span, as_stmt: bool) {
        match (ret, as_stmt) {
            (Some(_), true) => self.error(span, "function result ignored (call used as statement)"),
            (None, false) => self.error(span, "proper procedure used in an expression"),
            _ => {}
        }
    }

    fn push_args(&mut self, params: &[(bool, TypeId)], args: &[Expr], span: Span) {
        if params.len() != args.len() {
            self.error(
                span,
                format!("expected {} arguments, found {}", params.len(), args.len()),
            );
        }
        for (ix, arg) in args.iter().enumerate() {
            match params.get(ix) {
                Some((true, pty)) => {
                    // VAR parameter: pass the address.
                    let at = self.designator_addr(arg);
                    if !self.sema.types.same_type(at, *pty) {
                        self.error(arg.span, "VAR argument type mismatch");
                    }
                }
                Some((false, pty)) => {
                    let at = self.expr(arg);
                    if !self.sema.types.assignable(*pty, at) {
                        self.error(arg.span, "argument type mismatch");
                    }
                }
                None => {
                    let _ = self.expr(arg);
                }
            }
        }
    }

    fn direct_call(
        &mut self,
        code_name: Symbol,
        callee_level: u32,
        sig: &ProcSig,
        args: &[Expr],
        span: Span,
        as_stmt: bool,
    ) -> TypeId {
        self.check_ret_position(sig.ret, span, as_stmt);
        let params: Vec<(bool, TypeId)> = sig.params.iter().map(|p| (p.is_var, p.ty)).collect();
        self.push_args(&params, args, span);
        // Static link: hops from the caller's frame to the callee's
        // lexical parent frame. Top-level procedures need none.
        let link_up = if callee_level <= 1 {
            u32::MAX
        } else {
            self.level + 1 - callee_level
        };
        self.emit(Instr::Call {
            target: code_name,
            argc: args.len() as u32,
            link_up,
        });
        sig.ret.unwrap_or(TypeId::ERROR)
    }

    fn indirect_call(
        &mut self,
        callee: &Expr,
        params: &[(bool, TypeId)],
        ret: Option<TypeId>,
        args: &[Expr],
        span: Span,
        as_stmt: bool,
    ) -> TypeId {
        self.check_ret_position(ret, span, as_stmt);
        self.push_args(params, args, span);
        let _ = self.expr(callee); // the procedure value, above the args
        self.emit(Instr::CallIndirect {
            argc: args.len() as u32,
        });
        ret.unwrap_or(TypeId::ERROR)
    }

    fn indirect_call_dyn(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        span: Span,
        as_stmt: bool,
    ) -> TypeId {
        // Type the callee first (without emitting) is not possible in a
        // single pass; evaluate args untyped, then the value, then call.
        // The callee's type is checked to be a procedure type.
        for a in args {
            let _ = self.expr(a);
        }
        let ct = self.expr(callee);
        let cs = self.sema.types.strip_subrange(ct);
        let ret = match self.sema.types.get(cs) {
            Type::Proc { ret, .. } => ret,
            Type::Error => None,
            _ => {
                self.error(span, "called expression is not a procedure value");
                None
            }
        };
        self.check_ret_position(ret, span, as_stmt);
        self.emit(Instr::CallIndirect {
            argc: args.len() as u32,
        });
        ret.unwrap_or(TypeId::ERROR)
    }

    // ----- builtins ---------------------------------------------------------

    fn builtin_call(&mut self, b: Builtin, args: &[Expr], span: Span, as_stmt: bool) -> TypeId {
        use Builtin::*;
        let expr_result = |this: &mut Self, ty: TypeId| {
            if as_stmt {
                this.error(span, "builtin function result ignored");
            }
            ty
        };
        match b {
            Halt => {
                self.emit(Instr::Halt);
                TypeId::ERROR
            }
            New | Dispose => {
                let [arg] = args else {
                    self.error(span, "NEW/DISPOSE take one pointer variable");
                    return TypeId::ERROR;
                };
                let pt = self.designator_addr(arg);
                let ps = self.sema.types.strip_subrange(pt);
                match self.sema.types.get(ps) {
                    Type::Pointer { to } => {
                        if b == New {
                            let shape = shape_of(&self.sema.types, to);
                            let ix = self.unit.add_shape(shape);
                            self.emit(Instr::NewCell { shape: ix });
                        } else {
                            self.emit(Instr::DisposeCell);
                        }
                    }
                    Type::Error => {}
                    _ => self.error(span, "NEW/DISPOSE need a pointer variable"),
                }
                TypeId::ERROR
            }
            Inc | Dec => {
                if args.is_empty() || args.len() > 2 {
                    self.error(span, "INC/DEC take one or two arguments");
                    return TypeId::ERROR;
                }
                let vt = self.designator_addr(&args[0]);
                if !self.sema.types.is_ordinal(vt) {
                    self.error(args[0].span, "INC/DEC need an ordinal variable");
                }
                if let Some(amount) = args.get(1) {
                    let at = self.expr(amount);
                    if !self.sema.types.is_integerlike(at) {
                        self.error(amount.span, "INC/DEC amount must be integer");
                    }
                }
                self.emit(Instr::CallBuiltin {
                    builtin: b,
                    argc: args.len() as u32,
                });
                TypeId::ERROR
            }
            Incl | Excl => {
                let [set, elem] = args else {
                    self.error(span, "INCL/EXCL take a set variable and an element");
                    return TypeId::ERROR;
                };
                let st = self.designator_addr(set);
                let ss = self.sema.types.strip_subrange(st);
                if !matches!(
                    self.sema.types.get(ss),
                    Type::Bitset | Type::Set { .. } | Type::Error
                ) {
                    self.error(set.span, "INCL/EXCL need a set variable");
                }
                let et = self.expr(elem);
                if !self.sema.types.is_ordinal(et) {
                    self.error(elem.span, "set element must be ordinal");
                }
                self.emit(Instr::CallBuiltin {
                    builtin: b,
                    argc: 2,
                });
                TypeId::ERROR
            }
            Min | Max => {
                let [arg] = args else {
                    self.error(span, "MIN/MAX take one type argument");
                    return TypeId::ERROR;
                };
                // Compile-time: reuse the constant evaluator.
                let call_expr = Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(Expr {
                            kind: ExprKind::Name(ccm2_syntax::ast::Ident {
                                name: self.sema.interner.intern(if b == Min {
                                    "MIN"
                                } else {
                                    "MAX"
                                }),
                                span,
                            }),
                            span,
                        }),
                        args: vec![arg.clone()],
                    },
                    span,
                };
                match eval_const(self.sema, self.scope, &call_expr) {
                    Some((v, ty)) => {
                        self.push_const(v);
                        expr_result(self, ty)
                    }
                    None => TypeId::ERROR,
                }
            }
            Val => {
                let [tname, x] = args else {
                    self.error(span, "VAL takes a type and a value");
                    return TypeId::ERROR;
                };
                let ExprKind::Name(tn) = &tname.kind else {
                    self.error(span, "VAL's first argument must be a type name");
                    return TypeId::ERROR;
                };
                let target = match self.resolve(tn.name) {
                    Some(LookupResult::Builtin(BuiltinDef::Type(t))) => t,
                    Some(LookupResult::Entry(e)) => match e.kind {
                        SymbolKind::TypeName { ty } => ty,
                        _ => {
                            self.error(span, "VAL's first argument must be a type name");
                            return TypeId::ERROR;
                        }
                    },
                    _ => {
                        self.error(span, "VAL's first argument must be a type name");
                        return TypeId::ERROR;
                    }
                };
                let xt = self.expr(x);
                if !self.sema.types.is_ordinal(xt) {
                    self.error(x.span, "VAL needs an ordinal value");
                }
                // Representation conversion: to CHAR via Chr, to numeric /
                // enum via Ord.
                let stripped = self.sema.types.strip_subrange(target);
                if stripped == TypeId::CHAR {
                    self.emit(Instr::CallBuiltin {
                        builtin: Chr,
                        argc: 1,
                    });
                } else {
                    self.emit(Instr::CallBuiltin {
                        builtin: Ord,
                        argc: 1,
                    });
                }
                expr_result(self, target)
            }
            High => {
                let [arg] = args else {
                    self.error(span, "HIGH takes one open-array argument");
                    return TypeId::ERROR;
                };
                let t = self.expr(arg);
                let s = self.sema.types.strip_subrange(t);
                if !matches!(
                    self.sema.types.get(s),
                    Type::OpenArray { .. } | Type::Array { .. } | Type::Error
                ) {
                    self.error(arg.span, "HIGH needs an array");
                }
                self.emit(Instr::CallBuiltin {
                    builtin: High,
                    argc: 1,
                });
                expr_result(self, TypeId::CARDINAL)
            }
            WriteLn => {
                if !args.is_empty() {
                    self.error(span, "WriteLn takes no arguments");
                }
                self.emit(Instr::CallBuiltin {
                    builtin: WriteLn,
                    argc: 0,
                });
                TypeId::ERROR
            }
            WriteInt | WriteCard | WriteReal => {
                if args.len() != 2 {
                    self.error(span, "write builtins take a value and a width");
                }
                for a in args {
                    let _ = self.expr(a);
                }
                self.emit(Instr::CallBuiltin {
                    builtin: b,
                    argc: args.len() as u32,
                });
                TypeId::ERROR
            }
            WriteChar | WriteString => {
                if args.len() != 1 {
                    self.error(span, "write builtins take one argument");
                }
                for a in args {
                    let _ = self.expr(a);
                }
                self.emit(Instr::CallBuiltin {
                    builtin: b,
                    argc: args.len() as u32,
                });
                TypeId::ERROR
            }
            // One-argument value functions.
            Abs | Cap | Chr | Odd | Ord | Trunc | Float | Sin | Cos | Sqrt | Exp | Ln => {
                let [arg] = args else {
                    self.error(span, "builtin takes one argument");
                    return TypeId::ERROR;
                };
                let at = self.expr(arg);
                self.emit(Instr::CallBuiltin {
                    builtin: b,
                    argc: 1,
                });
                let ret = match b {
                    Abs => at,
                    Cap | Chr => TypeId::CHAR,
                    Odd => TypeId::BOOLEAN,
                    Ord | Trunc => TypeId::CARDINAL,
                    Float | Sin | Cos | Sqrt | Exp | Ln => TypeId::REAL,
                    _ => unreachable!(),
                };
                expr_result(self, ret)
            }
        }
    }

    // ----- statements --------------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.sema.meter.charge(Work::StmtAnalyze, 1);
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Assign { lhs, rhs } => {
                let lt = self.designator_addr(lhs);
                let rt = self.expr(rhs);
                if !self.sema.types.assignable(lt, rt) {
                    self.error(s.span, "assignment type mismatch");
                }
                self.emit(Instr::Store);
            }
            StmtKind::Call { call } => match &call.kind {
                ExprKind::Call { callee, args } => {
                    let _ = self.call(callee, args, s.span, true);
                }
                _ => {
                    // Parameterless call written without parentheses.
                    let _ = self.call(call, &[], s.span, true);
                }
            },
            StmtKind::If { arms, else_body } => {
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    let ct = self.expr(cond);
                    self.check_bool(ct, cond.span);
                    let jf = self.emit(Instr::JumpIfFalse(0));
                    self.stmts(body);
                    end_jumps.push(self.emit(Instr::Jump(0)));
                    let next = self.here();
                    self.patch_jump(jf, next);
                }
                if let Some(body) = else_body {
                    self.stmts(body);
                }
                let end = self.here();
                for j in end_jumps {
                    self.patch_jump(j, end);
                }
            }
            StmtKind::While { cond, body } => {
                let top = self.here();
                let ct = self.expr(cond);
                self.check_bool(ct, cond.span);
                let jf = self.emit(Instr::JumpIfFalse(0));
                self.stmts(body);
                self.emit(Instr::Jump(top));
                let end = self.here();
                self.patch_jump(jf, end);
            }
            StmtKind::Repeat { body, until } => {
                let top = self.here();
                self.stmts(body);
                let ct = self.expr(until);
                self.check_bool(ct, until.span);
                self.emit(Instr::JumpIfFalse(top));
            }
            StmtKind::For {
                var,
                from,
                to,
                by,
                body,
            } => self.for_stmt(*var, from, to, by.as_ref(), body, s.span),
            StmtKind::Loop { body } => {
                self.loop_exits.push(Vec::new());
                let top = self.here();
                self.stmts(body);
                self.emit(Instr::Jump(top));
                let end = self.here();
                match self.loop_exits.pop() {
                    Some(exits) => {
                        for j in exits {
                            self.patch_jump(j, end);
                        }
                    }
                    None => self.error(s.span, "internal error: unbalanced LOOP nesting"),
                }
            }
            StmtKind::Exit => {
                let j = self.emit(Instr::Jump(0));
                match self.loop_exits.last_mut() {
                    Some(exits) => exits.push(j),
                    None => self.error(s.span, "EXIT outside LOOP"),
                }
            }
            StmtKind::Case {
                scrutinee,
                arms,
                else_body,
            } => self.case_stmt(scrutinee, arms, else_body.as_deref(), s.span),
            StmtKind::With { designator, body } => {
                // The record's address is evaluated once into an address
                // temp; field references inside the body load it.
                let slot = self.alloc_temp(Shape::Addr);
                self.emit(Instr::PushAddr { level_up: 0, slot });
                let rt = self.designator_addr(designator);
                let rs = self.sema.types.strip_subrange(rt);
                if !matches!(self.sema.types.get(rs), Type::Record { .. } | Type::Error) {
                    self.error(designator.span, "WITH needs a record designator");
                }
                self.emit(Instr::Store);
                self.with_stack.push(WithBinding {
                    record_ty: rs,
                    slot,
                });
                self.stmts(body);
                self.with_stack.pop();
            }
            StmtKind::Return(value) => match (self.ret_ty, value) {
                (Some(rt), Some(v)) => {
                    let vt = self.expr(v);
                    if !self.sema.types.assignable(rt, vt) {
                        self.error(v.span, "RETURN value type mismatch");
                    }
                    self.emit(Instr::ReturnValue);
                }
                (Some(_), None) => {
                    self.error(s.span, "function must return a value");
                    self.emit(Instr::Return);
                }
                (None, Some(v)) => {
                    self.error(v.span, "proper procedure cannot return a value");
                    let _ = self.expr(v);
                    self.emit(Instr::Pop);
                    self.emit(Instr::Return);
                }
                (None, None) => {
                    self.emit(Instr::Return);
                }
            },
            StmtKind::LockStmt { designator, body } => {
                // Modula-2+ LOCK: evaluate the mutex designator (the VM is
                // single-threaded per image, so acquisition is a no-op);
                // the body runs bracketed.
                let _ = self.designator_addr(designator);
                self.emit(Instr::Pop);
                self.stmts(body);
            }
            StmtKind::TryStmt {
                body,
                except,
                finally,
            } => {
                // Structural lowering: the protected body runs; the EXCEPT
                // handler is only reachable via RAISE (which halts in this
                // reproduction), so it is emitted but jumped over.
                self.stmts(body);
                if let Some(handler) = except {
                    let skip = self.emit(Instr::Jump(0));
                    self.stmts(handler);
                    let after = self.here();
                    self.patch_jump(skip, after);
                }
                if let Some(fin) = finally {
                    self.stmts(fin);
                }
            }
            StmtKind::Raise(value) => {
                if let Some(v) = value {
                    let _ = self.expr(v);
                    self.emit(Instr::Pop);
                }
                self.emit(Instr::Halt);
            }
        }
    }

    fn for_stmt(
        &mut self,
        var: ccm2_syntax::ast::Ident,
        from: &Expr,
        to: &Expr,
        by: Option<&Expr>,
        body: &[Stmt],
        span: Span,
    ) {
        let var_expr = Expr {
            kind: ExprKind::Name(var),
            span: var.span,
        };
        let step = match by {
            None => 1,
            Some(e) => match eval_const(self.sema, self.scope, e) {
                Some((v, _)) => v.ordinal().unwrap_or(1),
                None => 1,
            },
        };
        if step == 0 {
            self.error(span, "FOR step cannot be zero");
        }
        // v := from
        let vt = self.designator_addr(&var_expr);
        if !self.sema.types.is_ordinal(vt) {
            self.error(var.span, "FOR control variable must be ordinal");
        }
        let ft = self.expr(from);
        if !self.sema.types.assignable(vt, ft) {
            self.error(from.span, "FOR initial value type mismatch");
        }
        self.emit(Instr::Store);
        // limit := to (evaluated once)
        let limit = self.alloc_temp(Shape::Int);
        self.emit(Instr::PushAddr {
            level_up: 0,
            slot: limit,
        });
        let tt = self.expr(to);
        if !self.sema.types.assignable(vt, tt) {
            self.error(to.span, "FOR final value type mismatch");
        }
        self.emit(Instr::Store);
        // top: if NOT (v <= limit) goto end
        let top = self.here();
        let _ = self.designator_addr(&var_expr);
        self.emit(Instr::Load);
        self.emit(Instr::PushAddr {
            level_up: 0,
            slot: limit,
        });
        self.emit(Instr::Load);
        self.emit(if step > 0 { Instr::CmpLe } else { Instr::CmpGe });
        let jf = self.emit(Instr::JumpIfFalse(0));
        self.stmts(body);
        // v := v + step
        let _ = self.designator_addr(&var_expr);
        let _ = self.designator_addr(&var_expr);
        self.emit(Instr::Load);
        self.emit(Instr::PushInt(step));
        self.emit(Instr::Add);
        self.emit(Instr::Store);
        self.emit(Instr::Jump(top));
        let end = self.here();
        self.patch_jump(jf, end);
    }

    fn case_stmt(
        &mut self,
        scrutinee: &Expr,
        arms: &[ccm2_syntax::ast::CaseArm],
        else_body: Option<&[Stmt]>,
        span: Span,
    ) {
        // The scrutinee is evaluated once into a temp (addr pushed below
        // the value so Store's (addr, value) order holds).
        let tmp = self.alloc_temp(Shape::Int);
        self.emit(Instr::PushAddr {
            level_up: 0,
            slot: tmp,
        });
        let st = self.expr(scrutinee);
        if !self.sema.types.is_ordinal(st) {
            self.error(scrutinee.span, "CASE scrutinee must be ordinal");
        }
        self.emit(Instr::Store);
        let load_tmp = |this: &mut Self| {
            this.emit(Instr::PushAddr {
                level_up: 0,
                slot: tmp,
            });
            this.emit(Instr::Load);
        };
        // Emit tests; record (arm, jump-site) pairs to patch to bodies.
        let mut body_jumps: Vec<(usize, usize)> = Vec::new();
        for (arm_ix, arm) in arms.iter().enumerate() {
            for label in &arm.labels {
                match label {
                    CaseLabel::Single(e) => {
                        let Some((v, _)) = eval_const(self.sema, self.scope, e) else {
                            continue;
                        };
                        let Some(ord) = v.ordinal() else {
                            self.error(e.span, "case label must be ordinal");
                            continue;
                        };
                        load_tmp(self);
                        self.emit(Instr::PushInt(ord));
                        self.emit(Instr::CmpEq);
                        let j = self.emit(Instr::JumpIfTrue(0));
                        body_jumps.push((arm_ix, j));
                    }
                    CaseLabel::Range(lo, hi) => {
                        let (Some((lv, _)), Some((hv, _))) = (
                            eval_const(self.sema, self.scope, lo),
                            eval_const(self.sema, self.scope, hi),
                        ) else {
                            continue;
                        };
                        let (Some(l), Some(h)) = (lv.ordinal(), hv.ordinal()) else {
                            self.error(lo.span, "case label must be ordinal");
                            continue;
                        };
                        load_tmp(self);
                        self.emit(Instr::PushInt(l));
                        self.emit(Instr::CmpGe);
                        let skip = self.emit(Instr::JumpIfFalse(0));
                        load_tmp(self);
                        self.emit(Instr::PushInt(h));
                        self.emit(Instr::CmpLe);
                        let j = self.emit(Instr::JumpIfTrue(0));
                        body_jumps.push((arm_ix, j));
                        let after = self.here();
                        self.patch_jump(skip, after);
                    }
                }
            }
        }
        // No label matched: ELSE (or fall through — PIM says error; we
        // fall through, documented deviation).
        let mut end_jumps = Vec::new();
        if let Some(eb) = else_body {
            self.stmts(eb);
        }
        end_jumps.push(self.emit(Instr::Jump(0)));
        // Bodies.
        let mut arm_starts = vec![0u32; arms.len()];
        for (arm_ix, arm) in arms.iter().enumerate() {
            arm_starts[arm_ix] = self.here();
            self.stmts(&arm.body);
            end_jumps.push(self.emit(Instr::Jump(0)));
        }
        let end = self.here();
        for (arm_ix, site) in body_jumps {
            let target = arm_starts[arm_ix];
            self.patch_jump(site, target);
        }
        for j in end_jumps {
            self.patch_jump(j, end);
        }
        let _ = span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_sema::declare::{declare_decls, HeadingMode, LocalHooks};
    use ccm2_sema::symtab::{DkyStrategy, NullWaiter, ScopeKind};
    use ccm2_support::diag::DiagnosticSink;
    use ccm2_support::intern::Interner;
    use ccm2_support::source::{FileId, SourceMap};
    use ccm2_support::work::NullMeter;
    use ccm2_syntax::lexer::lex_file;
    use ccm2_syntax::parser::parse_implementation;

    /// Compiles a module's body + procedures through declare + emit and
    /// returns (units incl. module body, sema, sink).
    fn emit_module(src: &str) -> (Vec<CodeUnit>, Sema, Arc<DiagnosticSink>) {
        let interner = Arc::new(Interner::new());
        let sink = Arc::new(DiagnosticSink::new());
        let sema = Sema::new(
            Arc::clone(&interner),
            Arc::clone(&sink),
            DkyStrategy::Skeptical,
            Arc::new(NullWaiter),
            Arc::new(NullMeter),
        );
        let map = SourceMap::new();
        let file = map.add("M.mod", src);
        let tokens = lex_file(&file, &interner, &sink);
        let module = parse_implementation(&tokens, &interner, &sink).expect("parses");
        let scope = sema
            .tables
            .new_scope(ScopeKind::MainModule, module.name.name, None, FileId(0));
        let hooks = LocalHooks::new(&sema);
        let mut queue = declare_decls(
            &sema,
            scope,
            &module.decls,
            HeadingMode::CopyToChild,
            &hooks,
        );
        sema.tables.mark_complete(scope);
        let mut all = Vec::new();
        while let Some(p) = queue.pop() {
            if let ccm2_syntax::ast::ProcBody::Local(local) = &p.body {
                let nested = declare_decls(
                    &sema,
                    p.scope,
                    &local.decls,
                    HeadingMode::CopyToChild,
                    &hooks,
                );
                sema.tables.mark_complete(p.scope);
                queue.extend(nested);
                all.push((p.clone(), local.body.clone()));
            }
        }
        let mut units = Vec::new();
        for (p, body) in &all {
            units.push(gen_procedure(&sema, p.scope, p.code_name, &p.sig, body));
        }
        units.push(gen_module_body(
            &sema,
            scope,
            module.name.name,
            &module.body,
        ));
        (units, sema, sink)
    }

    fn body_unit<'a>(units: &'a [CodeUnit], sema: &Sema, name: &str) -> &'a CodeUnit {
        let sym = sema.interner.intern(name);
        units.iter().find(|u| u.name == sym).expect("unit exists")
    }

    #[test]
    fn assignment_emits_addr_value_store() {
        let (units, sema, sink) = emit_module("MODULE M; VAR x : INTEGER; BEGIN x := 7 END M.");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        let u = body_unit(&units, &sema, "M");
        // Module globals: PushGlobalAddr, PushInt, Store, Halt.
        assert!(matches!(u.code[0], Instr::PushGlobalAddr { slot: 0, .. }));
        assert_eq!(u.code[1], Instr::PushInt(7));
        assert_eq!(u.code[2], Instr::Store);
        assert_eq!(*u.code.last().expect("nonempty"), Instr::Halt);
    }

    #[test]
    fn short_circuit_and_uses_jumps() {
        let (units, sema, sink) =
            emit_module("MODULE M; VAR p, q, r : BOOLEAN; BEGIN r := p AND q END M.");
        assert!(!sink.has_errors());
        let u = body_unit(&units, &sema, "M");
        assert!(
            u.code.iter().any(|i| matches!(i, Instr::JumpIfFalse(_))),
            "AND must short-circuit, got {:?}",
            u.code
        );
        // No generic And instruction exists; ensure nothing unexpected.
        assert!(u.code.iter().any(|i| matches!(i, Instr::PushBool(false))));
    }

    #[test]
    fn while_loop_shape() {
        let (units, sema, sink) =
            emit_module("MODULE M; VAR i : INTEGER; BEGIN WHILE i > 0 DO i := i - 1 END END M.");
        assert!(!sink.has_errors());
        let u = body_unit(&units, &sema, "M");
        // A backward jump must exist (loop), plus a forward conditional.
        let back = u.code.iter().enumerate().any(|(ix, i)| match i {
            Instr::Jump(t) => (*t as usize) < ix,
            _ => false,
        });
        assert!(back, "expected backward jump: {:?}", u.code);
        assert!(u.code.iter().any(|i| matches!(i, Instr::JumpIfFalse(_))));
    }

    #[test]
    fn procedure_unit_has_params_and_returns() {
        let (units, sema, sink) = emit_module(
            "MODULE M; \
             PROCEDURE Add(a, b : INTEGER) : INTEGER; BEGIN RETURN a + b END Add; \
             BEGIN END M.",
        );
        assert!(!sink.has_errors());
        let u = body_unit(&units, &sema, "M.Add");
        assert_eq!(u.param_count, 2);
        assert_eq!(u.level, 1);
        assert_eq!(u.frame.len(), 2);
        assert!(u.code.iter().any(|i| matches!(i, Instr::ReturnValue)));
        assert!(u.code.contains(&Instr::Add));
    }

    #[test]
    fn call_carries_symbolic_target_and_static_link() {
        let (units, sema, sink) = emit_module(
            "MODULE M; \
             PROCEDURE Outer; \
               PROCEDURE Inner; BEGIN END Inner; \
             BEGIN Inner END Outer; \
             BEGIN Outer END M.",
        );
        assert!(!sink.has_errors());
        let outer = body_unit(&units, &sema, "M.Outer");
        let inner_sym = sema.interner.intern("M.Outer.Inner");
        let call = outer
            .code
            .iter()
            .find_map(|i| match i {
                Instr::Call {
                    target,
                    argc,
                    link_up,
                } if *target == inner_sym => Some((*argc, *link_up)),
                _ => None,
            })
            .expect("call to Inner");
        assert_eq!(call.0, 0);
        // Inner is at level 2; its lexical parent is Outer's frame, 0 hops
        // up from Outer.
        assert_eq!(call.1, 0);
        let body = body_unit(&units, &sema, "M");
        let outer_sym = sema.interner.intern("M.Outer");
        assert!(body.code.iter().any(|i| matches!(
            i,
            Instr::Call { target, link_up: u32::MAX, .. } if *target == outer_sym
        )));
    }

    #[test]
    fn var_param_passes_address() {
        let (units, sema, sink) = emit_module(
            "MODULE M; VAR g : INTEGER; \
             PROCEDURE Bump(VAR x : INTEGER); BEGIN x := x + 1 END Bump; \
             BEGIN Bump(g) END M.",
        );
        assert!(!sink.has_errors());
        let body = body_unit(&units, &sema, "M");
        // The argument is the *address* of g: PushGlobalAddr directly
        // followed by Call (no Load).
        let ix = body
            .code
            .iter()
            .position(|i| matches!(i, Instr::PushGlobalAddr { .. }))
            .expect("address push");
        assert!(
            matches!(body.code[ix + 1], Instr::Call { .. }),
            "expected Call right after address push: {:?}",
            &body.code[ix..ix + 2]
        );
        // Inside Bump, the VAR param slot holds an address: loads go
        // PushAddr, Load (the stored address), then Load again for the
        // value.
        let bump = body_unit(&units, &sema, "M.Bump");
        assert_eq!(bump.frame[0], Shape::Addr);
    }

    #[test]
    fn for_loop_evaluates_limit_once_into_temp() {
        let (units, sema, sink) = emit_module(
            "MODULE M; VAR i, n : INTEGER; \
             BEGIN FOR i := 1 TO n DO END END M.",
        );
        assert!(!sink.has_errors());
        let u = body_unit(&units, &sema, "M");
        // Module body frame holds the limit temp.
        assert_eq!(u.frame, vec![Shape::Int]);
        assert!(u.code.iter().any(|i| matches!(i, Instr::CmpLe)));
    }

    #[test]
    fn downward_for_uses_cmpge() {
        let (units, sema, sink) =
            emit_module("MODULE M; VAR i : INTEGER; BEGIN FOR i := 10 TO 1 BY -1 DO END END M.");
        assert!(!sink.has_errors());
        let u = body_unit(&units, &sema, "M");
        assert!(u.code.iter().any(|i| matches!(i, Instr::CmpGe)));
        assert!(u.code.contains(&Instr::PushInt(-1)));
    }

    #[test]
    fn new_records_pointee_shape() {
        let (units, sema, sink) = emit_module(
            "MODULE M; \
             TYPE R = RECORD a, b : INTEGER END; P = POINTER TO R; \
             VAR p : P; \
             BEGIN NEW(p) END M.",
        );
        assert!(!sink.has_errors());
        let u = body_unit(&units, &sema, "M");
        let shape_ix = u
            .code
            .iter()
            .find_map(|i| match i {
                Instr::NewCell { shape } => Some(*shape),
                _ => None,
            })
            .expect("NewCell");
        assert_eq!(
            u.shapes[shape_ix as usize],
            Shape::Record(vec![Shape::Int, Shape::Int])
        );
    }

    #[test]
    fn with_binds_record_address_to_temp() {
        let (units, sema, sink) = emit_module(
            "MODULE M; VAR r : RECORD x, y : INTEGER END; \
             BEGIN WITH r DO x := y END END M.",
        );
        assert!(!sink.has_errors());
        let u = body_unit(&units, &sema, "M");
        assert_eq!(u.frame, vec![Shape::Addr], "WITH temp in frame");
        // Field accesses go through the temp: PushAddr{0,0}, Load,
        // AddrField.
        let pattern = u.code.windows(3).any(|w| {
            matches!(
                w[0],
                Instr::PushAddr {
                    level_up: 0,
                    slot: 0
                }
            ) && matches!(w[1], Instr::Load)
                && matches!(w[2], Instr::AddrField(_))
        });
        assert!(pattern, "{:?}", u.code);
    }

    #[test]
    fn case_emits_compare_chain() {
        let (units, sema, sink) = emit_module(
            "MODULE M; VAR i, n : INTEGER; \
             BEGIN CASE i OF 1 : n := 1 | 5..7 : n := 2 ELSE n := 0 END END M.",
        );
        assert!(!sink.has_errors());
        let u = body_unit(&units, &sema, "M");
        assert!(u.code.contains(&Instr::PushInt(5)));
        assert!(u.code.contains(&Instr::PushInt(7)));
        assert!(u.code.iter().any(|i| matches!(i, Instr::CmpGe)));
        assert!(u.code.iter().any(|i| matches!(i, Instr::JumpIfTrue(_))));
    }

    #[test]
    fn type_errors_are_reported() {
        let (_, _, sink) =
            emit_module("MODULE M; VAR b : BOOLEAN; i : INTEGER; BEGIN b := i END M.");
        assert!(sink.has_errors());
        assert!(sink
            .snapshot()
            .iter()
            .any(|d| d.message.contains("assignment type mismatch")));
    }

    #[test]
    fn condition_must_be_boolean() {
        let (_, _, sink) = emit_module("MODULE M; VAR i : INTEGER; BEGIN IF i THEN END END M.");
        assert!(sink.has_errors());
        assert!(sink
            .snapshot()
            .iter()
            .any(|d| d.message.contains("condition must be BOOLEAN")));
    }

    #[test]
    fn function_result_cannot_be_discarded() {
        let (_, _, sink) = emit_module(
            "MODULE M; \
             PROCEDURE F() : INTEGER; BEGIN RETURN 1 END F; \
             BEGIN F() END M.",
        );
        assert!(sink.has_errors());
        assert!(sink
            .snapshot()
            .iter()
            .any(|d| d.message.contains("result ignored")));
    }

    #[test]
    fn exit_outside_loop_reports() {
        let (_, _, sink) = emit_module("MODULE M; BEGIN EXIT END M.");
        assert!(sink.has_errors());
        assert!(sink
            .snapshot()
            .iter()
            .any(|d| d.message.contains("EXIT outside LOOP")));
    }

    #[test]
    fn global_shapes_follow_slot_order() {
        let (_, sema, sink) =
            emit_module("MODULE M; VAR a : INTEGER; b : REAL; c : BOOLEAN; BEGIN END M.");
        assert!(!sink.has_errors());
        // Scope 0 is the module scope created by emit_module.
        let shapes = global_shapes(&sema, ccm2_support::ids::ScopeId(0));
        assert_eq!(shapes, vec![Shape::Int, Shape::Real, Shape::Bool]);
    }

    #[test]
    fn identical_source_emits_identical_units() {
        let src = "MODULE M; \
             PROCEDURE P(x : INTEGER) : INTEGER; \
             VAR t : INTEGER; \
             BEGIN t := x * 2; RETURN t END P; \
             BEGIN END M.";
        let (a, sema_a, _) = emit_module(src);
        let (b, sema_b, _) = emit_module(src);
        // Different interners ⇒ compare disassembly text.
        let da: Vec<String> = a.iter().map(|u| format!("{:?}", u.code)).collect();
        let db: Vec<String> = b.iter().map(|u| format!("{:?}", u.code)).collect();
        assert_eq!(da, db);
        let _ = (sema_a, sema_b);
    }
}
