//! M-code: the stack-machine intermediate representation.
//!
//! Code is generated *per procedure* into self-contained [`CodeUnit`]s so
//! that the paper's late merge (§2.1) is a pure concatenation: units refer
//! to procedures by dotted symbolic name and to module globals by
//! (module, slot), and all cross-unit resolution happens in
//! [`crate::merge`]. Because operands are symbolic, a procedure compiles
//! to the identical unit no matter which compiler (sequential or
//! concurrent) or task interleaving produced it — the property the
//! equivalence tests check.

use ccm2_sema::builtins::Builtin;
use ccm2_support::intern::Symbol;

/// Runtime value layout for frame slots and heap cells: enough structure
/// to zero-initialize variables and allocate `NEW` cells.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Shape {
    /// An integer slot.
    Int,
    /// A real slot.
    Real,
    /// A boolean slot.
    Bool,
    /// A character slot.
    Char,
    /// A set slot.
    Set,
    /// A pointer slot (`NIL`-initialized).
    Ptr,
    /// A procedure-value slot.
    ProcVal,
    /// A string slot.
    Str,
    /// An address slot (VAR parameters).
    Addr,
    /// A fixed-size array.
    Array(Box<Shape>, u32),
    /// A record with one shape per field.
    Record(Vec<Shape>),
}

/// One M-code instruction.
///
/// Jump targets are instruction indices within the same unit. `shape`
/// operands index the owning unit's [`CodeUnit::shapes`] table.
#[derive(Clone, PartialEq, Debug)]
pub enum Instr {
    /// Push an integer literal.
    PushInt(i64),
    /// Push a real literal (IEEE bits).
    PushReal(u64),
    /// Push a boolean literal.
    PushBool(bool),
    /// Push a character literal.
    PushChar(u8),
    /// Push a string literal.
    PushStr(Symbol),
    /// Push `NIL`.
    PushNil,
    /// Push a set literal.
    PushSet(u64),
    /// Push a procedure value (resolved at merge).
    PushProc(Symbol),

    /// Push the address of a frame slot `level_up` static links above the
    /// current frame.
    PushAddr {
        /// Static-link hops (0 = current frame).
        level_up: u32,
        /// Slot index.
        slot: u32,
    },
    /// Push the address of a module global.
    PushGlobalAddr {
        /// Owning module name.
        module: Symbol,
        /// Slot within the module's global area.
        slot: u32,
    },
    /// addr → addr-of-field: replace the address on top with the address
    /// of record field `0`-based index.
    AddrField(u32),
    /// (addr, index-value) → element address, with bounds check against
    /// `lo..lo+len`.
    AddrIndex {
        /// Lowest legal ordinal.
        lo: i64,
        /// Number of elements.
        len: i64,
    },
    /// addr → heap address: load the pointer stored at addr and produce
    /// the address of its cell.
    AddrDeref,
    /// addr → value.
    Load,
    /// (addr, value) → ∅: store value at addr.
    Store,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,

    /// Generic add (ints, reals, sets: union).
    Add,
    /// Generic subtract (sets: difference).
    Sub,
    /// Generic multiply (sets: intersection).
    Mul,
    /// Integer `DIV` (euclidean).
    DivInt,
    /// Integer `MOD` (euclidean).
    ModInt,
    /// Real `/` (sets: symmetric difference).
    DivReal,
    /// Arithmetic negation.
    Neg,
    /// Boolean NOT.
    Not,
    /// `=`.
    CmpEq,
    /// `#`.
    CmpNe,
    /// `<`.
    CmpLt,
    /// `<=`.
    CmpLe,
    /// `>`.
    CmpGt,
    /// `>=`.
    CmpGe,
    /// (elem, set) → BOOLEAN membership.
    InSet,
    /// (set, elem) → set with elem included (set-constructor building).
    SetIncl,
    /// (set, lo, hi) → set with `lo..hi` included.
    SetInclRange,

    /// Unconditional jump.
    Jump(u32),
    /// Pop a boolean; jump if false.
    JumpIfFalse(u32),
    /// Pop a boolean; jump if true.
    JumpIfTrue(u32),

    /// Call a procedure by symbolic name. Arguments are on the stack in
    /// declaration order (VAR parameters as addresses).
    Call {
        /// The callee's dotted code name.
        target: Symbol,
        /// Number of arguments.
        argc: u32,
        /// Static-link hops from the *caller's* frame to the callee's
        /// lexical parent frame (`u32::MAX` = no static link, callee is at
        /// level 1).
        link_up: u32,
    },
    /// Call through a procedure value on top of the stack (arguments
    /// below it).
    CallIndirect {
        /// Number of arguments.
        argc: u32,
    },
    /// Call a builtin.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Number of arguments (builtins are variadic-lite: INC/DEC take
        /// 1 or 2).
        argc: u32,
    },
    /// Return with no value.
    Return,
    /// Pop the return value and return.
    ReturnValue,
    /// Terminate the program.
    Halt,

    /// Pop the address of a pointer variable; allocate a heap cell of the
    /// given shape (index into [`CodeUnit::shapes`]) and store the pointer.
    NewCell {
        /// Shape-table index of the pointee.
        shape: u32,
    },
    /// Pop the address of a pointer variable; free its cell and store NIL.
    DisposeCell,
    /// Do nothing (kept so emitted indices stay stable during patching).
    Nop,
}

/// The compiled code for one procedure (or one module body).
#[derive(Clone, PartialEq, Debug)]
pub struct CodeUnit {
    /// Dotted code name (`M.P.Q`; the module body is just `M`).
    pub name: Symbol,
    /// Static nesting level (module body 0, top-level procedures 1, …).
    pub level: u32,
    /// Number of leading frame slots that are parameters.
    pub param_count: u32,
    /// Shapes of every frame slot (parameters first, then locals/temps).
    pub frame: Vec<Shape>,
    /// Shape table referenced by `NewCell`.
    pub shapes: Vec<Shape>,
    /// The instructions.
    pub code: Vec<Instr>,
}

impl CodeUnit {
    /// Creates an empty unit.
    pub fn new(name: Symbol, level: u32) -> CodeUnit {
        CodeUnit {
            name,
            level,
            param_count: 0,
            frame: Vec::new(),
            shapes: Vec::new(),
            code: Vec::new(),
        }
    }

    /// Interns a shape in the unit's shape table, returning its index.
    pub fn add_shape(&mut self, shape: Shape) -> u32 {
        if let Some(ix) = self.shapes.iter().position(|s| *s == shape) {
            return ix as u32;
        }
        self.shapes.push(shape);
        (self.shapes.len() - 1) as u32
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the unit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_interning_dedups() {
        let i = ccm2_support::intern::Interner::new();
        let mut u = CodeUnit::new(i.intern("M.P"), 1);
        let a = u.add_shape(Shape::Int);
        let b = u.add_shape(Shape::Real);
        let c = u.add_shape(Shape::Int);
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(u.shapes.len(), 2);
    }

    #[test]
    fn empty_unit() {
        let i = ccm2_support::intern::Interner::new();
        let u = CodeUnit::new(i.intern("M"), 0);
        assert!(u.is_empty());
        assert_eq!(u.len(), 0);
        assert_eq!(u.param_count, 0);
    }

    #[test]
    fn units_with_same_content_are_equal() {
        let i = ccm2_support::intern::Interner::new();
        let make = || {
            let mut u = CodeUnit::new(i.intern("M.P"), 1);
            u.code.push(Instr::PushInt(1));
            u.code.push(Instr::ReturnValue);
            u
        };
        assert_eq!(make(), make());
    }
}
