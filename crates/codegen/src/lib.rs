//! M-code generation and the late-merge object model.
//!
//! Implements the back half of the concurrent compiler (Wortman & Junkin,
//! PLDI 1992):
//!
//! * [`ir`] — the per-procedure stack-machine code ([`ir::CodeUnit`]) with
//!   fully symbolic cross-unit references, which is what makes the paper's
//!   *late merge by concatenation* (§2.1) possible;
//! * [`shape`] — runtime layout of types (frame slots, `NEW` cells);
//! * [`emit`] — the fused *statement analyzer / code generator* task of
//!   §3: statement semantic analysis (through the concurrent symbol
//!   tables, so it participates in DKY handling) plus code emission;
//! * [`merge`] — the merge task: accepts finished units in any order,
//!   canonicalizes, and produces a [`merge::ModuleImage`].
//!
//! # Examples
//!
//! Building and merging a unit by hand:
//!
//! ```
//! use std::sync::Arc;
//! use ccm2_support::{Interner, NullMeter};
//! use ccm2_codegen::ir::{CodeUnit, Instr};
//! use ccm2_codegen::merge::Merger;
//!
//! let interner = Arc::new(Interner::new());
//! let merger = Merger::new(interner.intern("M"), Arc::clone(&interner));
//! let mut unit = CodeUnit::new(interner.intern("M"), 0);
//! unit.code.push(Instr::Halt);
//! merger.add_unit(unit, &NullMeter);
//! let image = merger.finish();
//! assert_eq!(image.instruction_count(), 1);
//! ```

pub mod emit;
pub mod ir;
pub mod merge;
pub mod shape;

pub use emit::{gen_module_body, gen_procedure, global_shapes};
pub use ir::{CodeUnit, Instr, Shape};
pub use merge::{Merger, ModuleImage};
