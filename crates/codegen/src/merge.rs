//! Late merge: concatenating per-procedure code units into a module image.
//!
//! Paper §2.1/§3: because the unit of merging is the code for an entire
//! procedure, concatenation can happen **in any order** and concurrently
//! with other compiler activity. [`Merger`] accepts units from any task in
//! any order; [`Merger::finish`] canonicalizes (sorts by code name) so the
//! resulting [`ModuleImage`] is identical regardless of completion order —
//! the property the merge-order property tests exercise.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use ccm2_support::intern::{Interner, Symbol};
use ccm2_support::work::{Work, WorkMeter};

use crate::ir::{CodeUnit, Shape};

/// A module's global-variable area: the owning module name plus one shape
/// per slot.
#[derive(Clone, PartialEq, Debug)]
pub struct GlobalArea {
    /// The module that declared these globals.
    pub module: Symbol,
    /// Slot shapes in slot order.
    pub slots: Vec<Shape>,
}

/// The complete output of a compilation: every procedure's code, the
/// global areas, and the entry unit (the module body).
#[derive(Clone, PartialEq, Debug)]
pub struct ModuleImage {
    /// The compiled module's name.
    pub name: Symbol,
    /// All code units, sorted by *resolved* code name (stable run-to-run
    /// regardless of interning order — cache equivalence depends on it).
    pub units: Vec<CodeUnit>,
    /// Global areas, sorted by resolved module name.
    pub globals: Vec<GlobalArea>,
    /// Name of the entry (module body) unit.
    pub entry: Symbol,
}

impl ModuleImage {
    /// Finds a unit by its dotted code name. Units are sorted by resolved
    /// name string, which symbol handles cannot binary-search, so this is
    /// a linear scan of symbol equality — fine for lookups outside hot
    /// loops (the VM builds its own dispatch map).
    pub fn unit(&self, name: Symbol) -> Option<&CodeUnit> {
        self.units.iter().find(|u| u.name == name)
    }

    /// Index of a unit by name (for call dispatch tables).
    pub fn unit_index(&self, name: Symbol) -> Option<usize> {
        self.units.iter().position(|u| u.name == name)
    }

    /// Index of a global area by module name.
    pub fn global_index(&self, module: Symbol) -> Option<usize> {
        self.globals.iter().position(|g| g.module == module)
    }

    /// Total instruction count across all units (a size proxy used by
    /// reports).
    pub fn instruction_count(&self) -> usize {
        self.units.iter().map(|u| u.code.len()).sum()
    }

    /// A readable disassembly (for the quickstart example and debugging).
    pub fn disassemble(&self, interner: &Interner) -> String {
        let mut out = String::new();
        for u in &self.units {
            out.push_str(&format!(
                "UNIT {} (level {}, {} params, {} slots)\n",
                interner.resolve(u.name),
                u.level,
                u.param_count,
                u.frame.len()
            ));
            for (ix, ins) in u.code.iter().enumerate() {
                out.push_str(&format!("  {ix:4}  {ins:?}\n"));
            }
        }
        out
    }
}

/// Thread-safe accumulator for finished code units — the paper's *merge
/// task*.
#[derive(Debug)]
pub struct Merger {
    name: Symbol,
    interner: Arc<Interner>,
    units: Mutex<Vec<CodeUnit>>,
    globals: Mutex<HashMap<Symbol, Vec<Shape>>>,
}

impl Merger {
    /// Creates a merger for the module `name`. The interner resolves unit
    /// names at [`Merger::finish`] so the canonical order is the *name
    /// string* order, independent of symbol-interning order.
    pub fn new(name: Symbol, interner: Arc<Interner>) -> Merger {
        Merger {
            name,
            interner,
            units: Mutex::new(Vec::new()),
            globals: Mutex::new(HashMap::new()),
        }
    }

    /// Accepts one finished code unit (callable from any task, any order).
    pub fn add_unit(&self, unit: CodeUnit, meter: &dyn WorkMeter) {
        meter.charge(Work::Merge, 1 + unit.code.len() as u64 / 64);
        self.units.lock().push(unit);
    }

    /// Registers a module's global area.
    pub fn add_globals(&self, module: Symbol, slots: Vec<Shape>) {
        self.globals.lock().insert(module, slots);
    }

    /// Number of units received so far.
    pub fn unit_count(&self) -> usize {
        self.units.lock().len()
    }

    /// Produces the canonical module image. Sort keys are resolved name
    /// strings: symbol indices depend on interning order, which differs
    /// between runs (and between a warm cache run and a cold one), while
    /// the names themselves do not.
    pub fn finish(&self) -> ModuleImage {
        let mut units = std::mem::take(&mut *self.units.lock());
        units.sort_by_key(|u| self.interner.resolve(u.name));
        let mut globals: Vec<GlobalArea> = std::mem::take(&mut *self.globals.lock())
            .into_iter()
            .map(|(module, slots)| GlobalArea { module, slots })
            .collect();
        globals.sort_by_key(|g| self.interner.resolve(g.module));
        ModuleImage {
            name: self.name,
            units,
            globals,
            entry: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;
    use ccm2_support::work::NullMeter;

    fn unit(i: &Interner, name: &str) -> CodeUnit {
        let mut u = CodeUnit::new(i.intern(name), 1);
        u.code.push(Instr::Return);
        u
    }

    #[test]
    fn merge_is_order_insensitive() {
        let i = Arc::new(Interner::new());
        let m = i.intern("M");
        let a = Merger::new(m, Arc::clone(&i));
        a.add_unit(unit(&i, "M.X"), &NullMeter);
        a.add_unit(unit(&i, "M"), &NullMeter);
        a.add_unit(unit(&i, "M.A"), &NullMeter);
        let b = Merger::new(m, Arc::clone(&i));
        b.add_unit(unit(&i, "M.A"), &NullMeter);
        b.add_unit(unit(&i, "M.X"), &NullMeter);
        b.add_unit(unit(&i, "M"), &NullMeter);
        let image = a.finish();
        assert_eq!(image, b.finish());
        // Canonical order is the *name string* order.
        let names: Vec<String> = image.units.iter().map(|u| i.resolve(u.name)).collect();
        assert_eq!(names, vec!["M", "M.A", "M.X"]);
    }

    #[test]
    fn unit_order_is_independent_of_interning_order() {
        // Intern the *late-sorting* name first so symbol-index order and
        // name order disagree; the image must follow name order (a warm
        // cache run interns names in a different order than a cold one).
        let i = Arc::new(Interner::new());
        let m = Merger::new(i.intern("M"), Arc::clone(&i));
        m.add_unit(unit(&i, "M.Zed"), &NullMeter);
        m.add_unit(unit(&i, "M.Alpha"), &NullMeter);
        m.add_unit(unit(&i, "M"), &NullMeter);
        assert!(i.intern("M.Zed").index() < i.intern("M.Alpha").index());
        let img = m.finish();
        let names: Vec<String> = img.units.iter().map(|u| i.resolve(u.name)).collect();
        assert_eq!(names, vec!["M", "M.Alpha", "M.Zed"]);
        assert_eq!(img.unit_index(i.intern("M.Zed")), Some(2));
    }

    #[test]
    fn image_lookup_by_name() {
        let i = Arc::new(Interner::new());
        let m = Merger::new(i.intern("M"), Arc::clone(&i));
        m.add_unit(unit(&i, "M.P"), &NullMeter);
        m.add_unit(unit(&i, "M"), &NullMeter);
        let img = m.finish();
        assert!(img.unit(i.intern("M.P")).is_some());
        assert!(img.unit(i.intern("M.Q")).is_none());
        assert_eq!(img.instruction_count(), 2);
    }

    #[test]
    fn globals_sorted_by_module() {
        let i = Arc::new(Interner::new());
        let m = Merger::new(i.intern("M"), Arc::clone(&i));
        m.add_globals(i.intern("Zeta"), vec![Shape::Int]);
        m.add_globals(i.intern("Alpha"), vec![Shape::Real, Shape::Bool]);
        let img = m.finish();
        // Sorted by resolved module name, not interning order.
        let zi = img.global_index(i.intern("Zeta")).expect("zeta");
        let ai = img.global_index(i.intern("Alpha")).expect("alpha");
        assert_eq!((ai, zi), (0, 1));
        assert_eq!(img.globals[ai].slots.len(), 2);
    }

    #[test]
    fn disassembly_mentions_units() {
        let i = Arc::new(Interner::new());
        let m = Merger::new(i.intern("M"), Arc::clone(&i));
        m.add_unit(unit(&i, "M"), &NullMeter);
        let img = m.finish();
        let dis = img.disassemble(&i);
        assert!(dis.contains("UNIT M"));
        assert!(dis.contains("Return"));
    }
}
