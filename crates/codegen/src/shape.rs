//! Mapping semantic types to runtime [`Shape`]s.

use ccm2_sema::types::{Type, TypeId, TypeStore};

use crate::ir::Shape;

/// Computes the runtime shape of a type (used for frame layout, variable
/// zero-initialization and `NEW` allocation).
///
/// Opaque types are pointer-sized, as in every classic Modula-2
/// implementation; the error type degrades to an integer slot so that
/// poisoned programs still lay out deterministically.
pub fn shape_of(types: &TypeStore, ty: TypeId) -> Shape {
    match types.get(ty) {
        Type::Integer | Type::Cardinal => Shape::Int,
        Type::Real => Shape::Real,
        Type::Boolean => Shape::Bool,
        Type::Char => Shape::Char,
        Type::Bitset | Type::Set { .. } => Shape::Set,
        Type::Pointer { .. } | Type::Nil | Type::Opaque { .. } | Type::Address => Shape::Ptr,
        Type::Proc { .. } => Shape::ProcVal,
        Type::StringLit => Shape::Str,
        Type::Enumeration { .. } => Shape::Int,
        Type::Subrange { base, .. } => shape_of(types, base),
        Type::Array { index, elem } => {
            let len = types.array_len(index).unwrap_or(0).max(0) as u32;
            Shape::Array(Box::new(shape_of(types, elem)), len)
        }
        // Open arrays receive their actual extent from the caller; the
        // static shape records only the element layout.
        Type::OpenArray { elem } => Shape::Array(Box::new(shape_of(types, elem)), 0),
        Type::Record { fields } => {
            Shape::Record(fields.iter().map(|(_, t)| shape_of(types, *t)).collect())
        }
        Type::Error | Type::Pending => Shape::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        let s = TypeStore::new();
        assert_eq!(shape_of(&s, TypeId::INTEGER), Shape::Int);
        assert_eq!(shape_of(&s, TypeId::REAL), Shape::Real);
        assert_eq!(shape_of(&s, TypeId::BITSET), Shape::Set);
        assert_eq!(shape_of(&s, TypeId::PROC), Shape::ProcVal);
    }

    #[test]
    fn arrays_and_records() {
        let s = TypeStore::new();
        let ix = s.add(Type::Subrange {
            base: TypeId::INTEGER,
            lo: 1,
            hi: 5,
        });
        let arr = s.add(Type::Array {
            index: ix,
            elem: TypeId::CHAR,
        });
        assert_eq!(shape_of(&s, arr), Shape::Array(Box::new(Shape::Char), 5));
        let i = ccm2_support::intern::Interner::new();
        let rec = s.add(Type::Record {
            fields: vec![(i.intern("x"), TypeId::REAL), (i.intern("y"), arr)],
        });
        assert_eq!(
            shape_of(&s, rec),
            Shape::Record(vec![Shape::Real, Shape::Array(Box::new(Shape::Char), 5)])
        );
    }

    #[test]
    fn subranges_use_base_shape() {
        let s = TypeStore::new();
        let r = s.add(Type::Subrange {
            base: TypeId::CHAR,
            lo: 65,
            hi: 90,
        });
        assert_eq!(shape_of(&s, r), Shape::Char);
    }

    #[test]
    fn pointers_and_opaque_are_ptr_sized() {
        let s = TypeStore::new();
        let i = ccm2_support::intern::Interner::new();
        let p = s.add(Type::Pointer { to: TypeId::REAL });
        let o = s.add(Type::Opaque {
            name: i.intern("T"),
        });
        assert_eq!(shape_of(&s, p), Shape::Ptr);
        assert_eq!(shape_of(&s, o), Shape::Ptr);
    }
}
