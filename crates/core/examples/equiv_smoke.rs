use ccm2::{compile_concurrent, Options};
use ccm2_support::defs::DefLibrary;
use ccm2_support::Interner;
use ccm2_vm::Vm;
use std::sync::Arc;

fn main() {
    let mut lib = DefLibrary::new();
    lib.insert("MathLib", "DEFINITION MODULE MathLib; CONST Pi = 3.14159; PROCEDURE Square(x : INTEGER) : INTEGER; END MathLib.");
    lib.insert("Lists", "DEFINITION MODULE Lists; FROM MathLib IMPORT Pi; TYPE List; CONST MaxLen = 100; PROCEDURE Length(l : List) : INTEGER; END Lists.");
    let src = "MODULE Big; \
        IMPORT Lists; FROM MathLib IMPORT Square; \
        CONST N = Lists.MaxLen DIV 10; \
        VAR total : INTEGER; i : INTEGER; \
        PROCEDURE Sum(n : INTEGER) : INTEGER; \
          VAR acc, k : INTEGER; \
          PROCEDURE Add(v : INTEGER); BEGIN acc := acc + v END Add; \
        BEGIN acc := 0; FOR k := 1 TO n DO Add(k) END; RETURN acc END Sum; \
        PROCEDURE Fib(n : INTEGER) : INTEGER; \
        BEGIN IF n <= 1 THEN RETURN n ELSE RETURN Fib(n-1) + Fib(n-2) END END Fib; \
        BEGIN \
          total := Sum(N) + Fib(10); \
          WriteInt(total, 0); WriteLn \
        END Big.";
    let interner = Arc::new(Interner::new());
    // Sequential oracle
    let seq = ccm2_seq::compile_with(
        src,
        &lib,
        Arc::clone(&interner),
        Arc::new(ccm2_support::NullMeter),
        ccm2_sema::declare::HeadingMode::CopyToChild,
    );
    assert!(seq.is_ok(), "seq: {:?}", seq.diagnostics);
    let seq_img = seq.image.unwrap();
    // Concurrent: threads
    for workers in [1usize, 2, 4] {
        let out = compile_concurrent(
            src,
            Arc::new(lib.clone()),
            Arc::clone(&interner),
            Options::threads(workers),
        );
        assert!(out.is_ok(), "conc({workers}): {:?}", out.diagnostics);
        let img = out.image.unwrap();
        assert_eq!(img, seq_img, "image mismatch with {workers} workers");
        assert_eq!(out.procedures, 3);
        assert_eq!(out.imported_interfaces, 2);
    }
    // Concurrent: sim, sweep processors, must also be deterministic
    let mut times = vec![];
    for procs in [1u32, 2, 4, 8] {
        let out = compile_concurrent(
            src,
            Arc::new(lib.clone()),
            Arc::clone(&interner),
            Options::sim(procs),
        );
        assert!(out.is_ok(), "sim({procs}): {:?}", out.diagnostics);
        assert_eq!(
            out.image.unwrap(),
            seq_img,
            "sim image mismatch at {procs} procs"
        );
        times.push(out.report.virtual_time.unwrap());
    }
    println!("virtual times 1/2/4/8 procs: {:?}", times);
    println!(
        "speedups: {:?}",
        times
            .iter()
            .map(|t| times[0] as f64 / *t as f64)
            .collect::<Vec<_>>()
    );
    // Run the compiled program
    let out = Vm::new(interner).run(&seq_img).expect("runs");
    assert_eq!(
        out.trim(),
        "110",
        "Sum(10)=55 + Fib(10)=55 = 110, got {out:?}"
    );
    println!("EQUIV SMOKE OK");
}
