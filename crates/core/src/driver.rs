//! The concurrent compiler driver.
//!
//! Wires the paper's complete task structure (Figure 5) onto a
//! [`ccm2_sched`] executor:
//!
//! ```text
//!   definition-module stream      implementation stream       procedure stream
//!   ------------------------      ---------------------       ----------------
//!   Lexor(def)                    Lexor(main)
//!   Importer(def)                 Importer(main)
//!   Parser/DeclAnalyzer(def)      Splitter ───────────────────▶ (streams created)
//!                                 Parser/DeclAnalyzer(main)    Parser/DeclAnalyzer(proc)
//!                                 StmtAnalyzer/CodeGen(body)   StmtAnalyzer/CodeGen(proc)
//!                                             ╲                  ╱
//!                                              ▼   Merge (concatenation)
//! ```
//!
//! The driver owns the once-only table for definition modules (§3), the
//! DKY event map (scope completion → scheduler event, §2.3.3), the
//! per-symbol events of the Optimistic strategy, and the §2.4 heading
//! events that gate procedure streams.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use ccm2_codegen::emit::{gen_error_unit, gen_module_body, gen_procedure, global_shapes};
use ccm2_codegen::ir::{CodeUnit, Instr};
use ccm2_codegen::merge::{Merger, ModuleImage};
use ccm2_incr::{
    decode_entry, encode_entry, environment_fp, fingerprint_streams, import_closure, ArtifactStore,
    CacheEntryData, CachedDiag, Carve, IncrStats, StreamNode, FORMAT_VERSION,
};
use ccm2_sched::{
    run_sim_with, run_threaded_with, EnvMeter, EventClass, ExecEnv, Robustness, RunReport,
    SimConfig, TaskDesc, TaskKind, WaitSet,
};
use ccm2_sema::declare::{
    bind_imports, declare_own_params, verify_heading, DeclareHooks, Declarer, HeadingMode,
};
use ccm2_sema::stats::LookupStats;
use ccm2_sema::symtab::{DkyStrategy, DkyWaiter, ProcSig, ScopeKind, SymbolTables, TableNotifier};
use ccm2_sema::Sema;
use ccm2_support::defs::DefProvider;
use ccm2_support::diag::{Diagnostic, DiagnosticSink, Severity};
use ccm2_support::hash::Fp128;
use ccm2_support::ids::{EventId, ScopeId, StreamId};
use ccm2_support::intern::{Interner, Symbol};
use ccm2_support::source::{FileId, SourceMap, Span};
use ccm2_support::work::Work;
use ccm2_syntax::ast::{stmt_count, Decl, Import, Stmt};
use ccm2_syntax::lexer::Lexer;
use ccm2_syntax::parser::{parse_definition_from, StreamingImpl, StreamingProc};

use crate::importer::{run_importer, ImportSink};
use crate::queue::{StreamCursor, TokenQueue};
use crate::splitter::{run_splitter, StreamFactory};

/// Which executor carries the compilation.
#[derive(Clone, Debug)]
pub enum Executor {
    /// Real OS threads, one worker per assumed processor (the paper's
    /// deployment).
    Threads(usize),
    /// The deterministic virtual-time multiprocessor (used for all
    /// speedup experiments on this single-CPU host).
    Sim(SimConfig),
}

/// Compilation options.
#[derive(Clone, Debug)]
pub struct Options {
    /// DKY strategy (§2.2). Default: Skeptical, the paper's choice.
    pub strategy: DkyStrategy,
    /// Procedure-heading information flow (§2.4). Default: alternative 1.
    pub heading_mode: HeadingMode,
    /// Executor.
    pub executor: Executor,
    /// Statement count at which a procedure's code-generation task is
    /// classified *long* (scheduled before short ones, §2.3.4).
    pub long_proc_threshold: usize,
    /// Whether the source is split into procedure streams during lexical
    /// analysis (§2.1 — the paper's *early splitting*). With `false`, the
    /// splitter is bypassed and procedures are discovered during parsing,
    /// as in the prior work the paper contrasts against (Vandevoorde's
    /// scan + "everything else" design): code generation still runs as
    /// parallel per-procedure tasks, but all parsing and declaration
    /// analysis is serial. An ablation, not a recommended mode.
    pub early_split: bool,
    /// Run the source-level dataflow lints ([`ccm2_analysis`]) as
    /// per-unit `Analyze` tasks. Off by default; the lint diagnostics
    /// are byte-identical to the sequential compiler's
    /// (`ccm2_seq::compile_full` with `analyze = true`).
    pub analyze: bool,
    /// Content-addressed incremental compilation. When set, every
    /// procedure stream whose fingerprint matches a store entry is
    /// *respliced*: its Parser/DeclAnalyzer and StmtAnalyzer/CodeGen
    /// tasks are replaced by one cheap `CacheSplice` task feeding the
    /// cached unit into the merge and replaying its diagnostics. Only
    /// active with `early_split` and `HeadingMode::CopyToChild`, and
    /// only when the [`DefProvider`] can enumerate its library (the
    /// environment fingerprint must cover every interface); otherwise
    /// the compile silently runs cold.
    pub incremental: Option<Arc<dyn ArtifactStore>>,
    /// Deterministic fault plan. When set, the executors query it at
    /// `task:{name}` / `signal:{event}` sites and the compile runs in
    /// *degraded mode*: a faulted stream's panic is caught, its object
    /// unit is replaced by an error unit carrying rendered diagnostics,
    /// and downstream events are force-signaled so the merge never
    /// hangs. Non-faulted streams are byte-identical to a fault-free
    /// run.
    pub faults: Option<Arc<ccm2_faults::FaultPlan>>,
    /// Per-task deadline in executor-native units (virtual time units
    /// on the simulator, microseconds of wall time on threads). When
    /// set, tasks that silently stall past the deadline are diagnosed
    /// as [`CompileError::Stalled`] instead of hanging the compile.
    pub task_deadline: Option<u64>,
    /// Supervised stream recovery: how many times a fatally faulted
    /// per-stream task (ProcParse / Analyze / CodeGen) is re-enqueued
    /// before the stream is allowed to degrade. Attempt `k >= 1` of a
    /// task queries the suffixed fault site `task:{name}#r{k}`, so an
    /// exact-match plan models a transient fault (recovers, output
    /// byte-identical to a fault-free run, surfaced as
    /// [`CompileError::Recovered`] plus a Note diagnostic) while a
    /// `task:{name}*` glob models a persistent one (degrades after
    /// retries exhaust). 0 (the default) disables retries.
    pub max_stream_retries: u32,
    /// Per-*task* retry budgets: `(task name, budget)` pairs matched
    /// exactly against stream-task names (`procparse(M.P)`,
    /// `codegen(M.P)`, `analyze(M.P)` …). A matching task's budget
    /// overrides [`Options::max_stream_retries`] — including budget 0,
    /// which pins the task to a single attempt while the rest of the
    /// compile keeps the global budget.
    pub task_retry_budgets: Vec<(String, u32)>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            strategy: DkyStrategy::Skeptical,
            heading_mode: HeadingMode::CopyToChild,
            executor: Executor::Threads(2),
            long_proc_threshold: 40,
            early_split: true,
            analyze: false,
            incremental: None,
            faults: None,
            task_deadline: None,
            max_stream_retries: 0,
            task_retry_budgets: Vec::new(),
        }
    }
}

impl Options {
    /// Options running on the virtual-time simulator with `procs`
    /// processors and the calibrated Firefly cost model.
    pub fn sim(procs: u32) -> Options {
        Options {
            executor: Executor::Sim(SimConfig::firefly(procs)),
            ..Options::default()
        }
    }

    /// Options running on `n` real worker threads.
    pub fn threads(n: usize) -> Options {
        Options {
            executor: Executor::Threads(n),
            ..Options::default()
        }
    }
}

/// A degradation event surfaced by a compile running with
/// [`Options::faults`] or [`Options::task_deadline`]: structured
/// companions to the error diagnostics, for harnesses that classify
/// failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A task body panicked (organic or injected); its stream degraded
    /// to an error unit.
    StreamFault {
        /// The faulted task's name (contains the stream name, e.g.
        /// `codegen(M.P)`).
        task: String,
        /// The rendered panic payload.
        message: String,
    },
    /// A silent stall converted into a diagnosis: a wait-for cycle or
    /// wedge the watchdog force-released, or a task that overran the
    /// configured deadline.
    Stalled {
        /// The watchdog's rendering of the cycle or the overdue task.
        cycle_or_task: String,
    },
    /// A stream task whose faulted dispatches were retried under
    /// [`Options::max_stream_retries`] and then completed cleanly. The
    /// stream did *not* degrade — its output is byte-identical to a
    /// fault-free run — so the companion diagnostic is a Note, not an
    /// Error, and [`ConcurrentOutput::is_ok`] stays true.
    Recovered {
        /// The recovered task's name.
        task: String,
        /// How many dispatch attempts faulted before the clean one.
        attempts: u32,
    },
}

/// The result of a concurrent compilation.
#[derive(Debug)]
pub struct ConcurrentOutput {
    /// The merged object image.
    pub image: Option<ModuleImage>,
    /// Sorted diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Identifier-lookup statistics (Table 2).
    pub stats: Arc<LookupStats>,
    /// The interner (needed to run the image or resolve names).
    pub interner: Arc<Interner>,
    /// Source registry (for mapping diagnostics to file names).
    pub sources: Arc<SourceMap>,
    /// The executor's report: virtual/wall time, trace, task count.
    pub report: RunReport,
    /// Total streams: 1 (main) + imported interfaces + procedures
    /// (Table 1's "Number of Streams").
    pub streams: usize,
    /// Number of procedure streams.
    pub procedures: usize,
    /// Definition modules processed (Table 1's "Imported Interfaces").
    pub imported_interfaces: usize,
    /// Maximum import nesting depth observed (Table 1).
    pub import_nesting_depth: usize,
    /// Incremental-cache counters; `Some` iff the compile ran with an
    /// active [`Options::incremental`] store.
    pub incr: Option<IncrStats>,
    /// Interprocedural lock-order statistics; `Some` iff the compile ran
    /// with [`Options::analyze`] and reached the whole-program lock pass.
    pub locks: Option<ccm2_analysis::LockStats>,
    /// Degradation events (empty for a fault-free run). Each also has a
    /// corresponding error [`Diagnostic`] in `diagnostics`.
    pub errors: Vec<CompileError>,
}

impl ConcurrentOutput {
    /// Whether compilation succeeded without errors.
    pub fn is_ok(&self) -> bool {
        self.image.is_some()
            && !self
                .diagnostics
                .iter()
                .any(|d| d.severity == ccm2_support::diag::Severity::Error)
    }
}

/// Compiles `source` concurrently. See [`Options`] for the knobs; the
/// object image, diagnostics and statistics are identical across
/// executors, strategies and worker counts (the equivalence tests check
/// this against the sequential compiler).
pub fn compile_concurrent(
    source: &str,
    defs: Arc<dyn DefProvider>,
    interner: Arc<Interner>,
    options: Options,
) -> ConcurrentOutput {
    let source = source.to_string();
    let executor = options.executor.clone();
    let interner_out = Arc::clone(&interner);
    let driver_cell: Arc<Mutex<Option<Arc<Driver>>>> = Arc::new(Mutex::new(None));
    let dc = Arc::clone(&driver_cell);
    let robustness = Robustness {
        recover: options.faults.is_some()
            || options.task_deadline.is_some()
            || options.max_stream_retries > 0
            || !options.task_retry_budgets.is_empty(),
        plan: options.faults.clone(),
        deadline: options.task_deadline,
        max_retries: options.max_stream_retries,
    };
    let mk = move |env: Arc<dyn ExecEnv>| {
        let d = Driver::create(env, Arc::clone(&interner), defs, options.clone());
        d.start(source);
        *dc.lock() = Some(d);
    };
    let report = match executor {
        Executor::Threads(n) => run_threaded_with(n, robustness, move |sup| {
            mk(Arc::clone(sup) as Arc<dyn ExecEnv>)
        }),
        Executor::Sim(cfg) => run_sim_with(cfg, robustness, move |env| {
            mk(Arc::clone(env) as Arc<dyn ExecEnv>)
        }),
    };
    let taken = driver_cell.lock().take();
    match taken {
        Some(driver) => driver.finish(report),
        // An executor that returns without having run its setup closure
        // violates the ExecEnv contract; hand the caller a diagnosable
        // failure rather than unwinding through their stack.
        None => ConcurrentOutput {
            image: None,
            diagnostics: vec![Diagnostic::error(
                FileId(0),
                Span { lo: 0, hi: 0 },
                "internal error: executor finished without running compiler setup",
            )],
            stats: Arc::new(LookupStats::new()),
            interner: interner_out,
            sources: Arc::new(SourceMap::new()),
            report,
            streams: 0,
            procedures: 0,
            imported_interfaces: 0,
            import_nesting_depth: 0,
            incr: None,
            locks: None,
            errors: Vec::new(),
        },
    }
}

/// Active incremental-compilation state (gating already applied).
struct IncrInner {
    store: Arc<dyn ArtifactStore>,
    /// The enumerated definition library, kept so the environment digest
    /// can be restricted to the interfaces the main source transitively
    /// imports once that source is known (in `start`).
    library: Vec<(String, String)>,
    /// Digest of everything outside the main source that affects output:
    /// format version, configuration, and the interfaces the module can
    /// reach (per-import precision — an unrelated `.def` edit must not
    /// invalidate this module's units). Set once in `start`.
    env_fp: OnceLock<Fp128>,
    /// Signaled once hit/miss decisions exist (the module parser waits on
    /// it before choosing between live codegen and a module-body splice).
    ready: EventId,
}

/// A procedure stream whose task spawning is deferred until the splitter
/// has carved the whole module and fingerprints can be computed.
struct PendingStream {
    stream: StreamId,
    scope: ScopeId,
    parent: ScopeId,
    name: Symbol,
    queue: Arc<TokenQueue>,
}

/// Per-stream hit/miss decision, kept so `finish` can record entries for
/// the streams that compiled live (under the fingerprints computed *this*
/// run) without re-deriving carves.
struct ProcDecision {
    fp: Fp128,
    /// `Some` = respliced from the cache; `None` = compiled live.
    entry: Option<Arc<CacheEntryData>>,
    carve: Carve,
}

struct Decisions {
    module_fp: Fp128,
    module_entry: Option<Arc<CacheEntryData>>,
    procs: HashMap<ScopeId, ProcDecision>,
}

struct DriverState {
    def_streams: HashMap<Symbol, ScopeId>,
    scope_events: HashMap<ScopeId, EventId>,
    heading_events: HashMap<ScopeId, EventId>,
    heading_info: HashMap<ScopeId, (Symbol, ProcSig)>,
    stream_scopes: HashMap<StreamId, ScopeId>,
    symbol_events: HashMap<(ScopeId, Symbol), EventId>,
    main_scope: Option<ScopeId>,
    main_name: Option<Symbol>,
    main_imports: Option<(FileId, Vec<Import>)>,
    next_stream: u32,
    procedures: usize,
    max_import_depth: usize,
    /// Carve ranges reported by the splitter (incremental mode only).
    carves: HashMap<ScopeId, Carve>,
    /// Streams awaiting a hit/miss decision at `split_eof`.
    pending_procs: Vec<PendingStream>,
    decisions: Option<Arc<Decisions>>,
    /// Per-scope used-name sets captured from `Analyze` tasks, for
    /// recording cache entries.
    used_sets: HashMap<ScopeId, HashSet<Symbol>>,
    /// Per-scope lock summaries captured from `Analyze` tasks, encoded
    /// into cache entries (carve-relative) when recording.
    summaries: HashMap<ScopeId, ccm2_analysis::UnitSummary>,
    incr_stats: IncrStats,
}

struct Driver {
    env: Arc<dyn ExecEnv>,
    interner: Arc<Interner>,
    sink: Arc<DiagnosticSink>,
    sources: Arc<SourceMap>,
    defs: Arc<dyn DefProvider>,
    merger: Merger,
    sema: OnceLock<Arc<Sema>>,
    strategy: DkyStrategy,
    heading_mode: HeadingMode,
    long_threshold: usize,
    early_split: bool,
    analyze: bool,
    task_retry_budgets: Vec<(String, u32)>,
    hub: ccm2_analysis::AnalysisHub,
    main_scope_event: EventId,
    incr: Option<IncrInner>,
    st: Mutex<DriverState>,
}

impl Driver {
    fn create(
        env: Arc<dyn ExecEnv>,
        interner: Arc<Interner>,
        defs: Arc<dyn DefProvider>,
        options: Options,
    ) -> Arc<Driver> {
        let sink = Arc::new(DiagnosticSink::new());
        let main_scope_event = env.new_event_named(EventClass::Handled, "scope(Main)");
        let placeholder = interner.intern("");
        // Incremental gating: carves come from the splitter (so early
        // splitting is required), and the environment digest must see the
        // whole interface library. All heading modes are cache-safe: the
        // mode's tag is mixed into the environment digest, so entries
        // recorded under one mode never splice into another, and the
        // child-side work the modes differ in (none / re-declare /
        // verify) is skipped identically on every warm hit.
        let incr = options.incremental.as_ref().and_then(|store| {
            if !options.early_split {
                return None;
            }
            let library = defs.all_definitions()?;
            Some(IncrInner {
                store: Arc::clone(store),
                library,
                env_fp: OnceLock::new(),
                ready: env.new_event_named(EventClass::Handled, "incr(decisions)"),
            })
        });
        let driver = Arc::new(Driver {
            env: Arc::clone(&env),
            interner: Arc::clone(&interner),
            sink: Arc::clone(&sink),
            sources: Arc::new(SourceMap::new()),
            defs,
            merger: Merger::new(placeholder, Arc::clone(&interner)),
            sema: OnceLock::new(),
            strategy: options.strategy,
            heading_mode: options.heading_mode,
            long_threshold: options.long_proc_threshold,
            early_split: options.early_split,
            analyze: options.analyze,
            task_retry_budgets: options.task_retry_budgets.clone(),
            hub: ccm2_analysis::AnalysisHub::new(),
            main_scope_event,
            incr,
            st: Mutex::new(DriverState {
                def_streams: HashMap::new(),
                scope_events: HashMap::new(),
                heading_events: HashMap::new(),
                heading_info: HashMap::new(),
                stream_scopes: HashMap::new(),
                symbol_events: HashMap::new(),
                main_scope: None,
                main_name: None,
                main_imports: None,
                next_stream: 0,
                procedures: 0,
                max_import_depth: 0,
                carves: HashMap::new(),
                pending_procs: Vec::new(),
                decisions: None,
                used_sets: HashMap::new(),
                summaries: HashMap::new(),
                incr_stats: IncrStats::default(),
            }),
        });
        let meter = Arc::new(EnvMeter(Arc::clone(&env)));
        let sema = Arc::new(Sema::new(
            interner,
            sink,
            options.strategy,
            Arc::clone(&driver) as Arc<dyn DkyWaiter>,
            meter,
        ));
        sema.tables
            .set_notifier(Arc::clone(&driver) as Arc<dyn TableNotifier>);
        assert!(driver.sema.set(sema).is_ok(), "sema set once");
        driver
    }

    fn sema(&self) -> &Arc<Sema> {
        self.sema.get().expect("sema initialized")
    }

    /// Spawns a task, first applying any per-task retry budget whose
    /// configured name matches the task's exactly. Budgets only take
    /// effect on stream-retryable kinds (the executors ignore them
    /// elsewhere).
    fn spawn_task(&self, mut t: TaskDesc) {
        if !self.task_retry_budgets.is_empty() {
            if let Some((_, b)) = self.task_retry_budgets.iter().find(|(n, _)| *n == t.name) {
                t.retry_budget = Some(*b);
            }
        }
        self.env.spawn(t);
    }

    fn tables(&self) -> &Arc<SymbolTables> {
        &self.sema().tables
    }

    /// Scope-completion event (created eagerly with the scope; the lazy
    /// path double-checks completion to avoid lost wakeups).
    fn scope_event(&self, scope: ScopeId) -> EventId {
        let created = {
            let mut st = self.st.lock();
            match st.scope_events.get(&scope) {
                Some(&e) => return e,
                None => {
                    let e = self
                        .env
                        .new_event_named(EventClass::Handled, &format!("scope#{}", scope.index()));
                    st.scope_events.insert(scope, e);
                    e
                }
            }
        };
        if self.tables().scope(scope).is_complete() {
            self.env.signal(created);
        }
        created
    }

    // ---- stream construction -------------------------------------------

    fn start(self: &Arc<Self>, source: String) {
        // Per-import environment precision: digest only the interfaces
        // this source can transitively reach, so touching an unrelated
        // `.def` leaves every unit of this module warm. Computed before
        // any task is spawned — `incr_split_eof` runs on a worker.
        if let Some(incr) = &self.incr {
            let reachable = import_closure(&source, &incr.library);
            let env_fp = environment_fp(
                FORMAT_VERSION,
                self.analyze,
                self.heading_mode.cache_tag(),
                &reachable,
            );
            incr.env_fp.set(env_fp).expect("start runs once");
        }
        let file = self.sources.add("Main.mod", source);
        let lex_q = TokenQueue::named(Arc::clone(&self.env), "lex(Main)");
        // Lexor(main): never blocks (§2.3.3).
        {
            let this = Arc::clone(self);
            let q = Arc::clone(&lex_q);
            let file = Arc::clone(&file);
            let mut t = TaskDesc::new(
                "lex(Main)",
                TaskKind::Lexor,
                Box::new(move || {
                    let sema = this.sema();
                    for tok in Lexer::new(&file, &sema.interner, &sema.sink) {
                        this.env.charge(Work::Lex, 1);
                        q.push(tok);
                    }
                    q.close();
                }),
            );
            t.signals_barriers = true;
            self.spawn_task(t);
        }
        // Importer(main): anticipates interfaces (§3).
        {
            let this = Arc::clone(self);
            let q = Arc::clone(&lex_q);
            let mut t = TaskDesc::new(
                "import(Main)",
                TaskKind::Importer,
                Box::new(move || {
                    let cursor = StreamCursor::new(q, Work::Import);
                    run_importer(&cursor, 1, &DriverHandle(this));
                }),
            );
            t.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: false,
                any_barrier: true,
            };
            self.spawn_task(t);
        }
        // Splitter + main module parser. Under the no-early-split
        // ablation the parser reads the raw token stream directly
        // (procedures are discovered while parsing, as in pre-paper
        // designs) and the main scope is created by the parser itself.
        let parse_q = if self.early_split {
            let parse_q = TokenQueue::named(Arc::clone(&self.env), "parse(Main)");
            let this = Arc::clone(self);
            let q = Arc::clone(&lex_q);
            let out = Arc::clone(&parse_q);
            let mut t = TaskDesc::new(
                "split(Main)",
                TaskKind::Splitter,
                Box::new(move || {
                    let cursor = StreamCursor::new(q, Work::Split);
                    run_splitter(&cursor, out, &DriverHandle(this));
                }),
            );
            t.signals_barriers = true;
            t.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: false,
                any_barrier: true,
            };
            self.spawn_task(t);
            parse_q
        } else {
            Arc::clone(&lex_q)
        };
        {
            let this = Arc::clone(self);
            let mut t = TaskDesc::new(
                "parse(Main)",
                TaskKind::ModuleParse,
                Box::new(move || this.module_parse(parse_q)),
            );
            t.signals = vec![self.main_scope_event];
            t.may_wait = WaitSet {
                // Under incremental compilation the parser also waits for
                // the splitter's hit/miss decisions before spawning the
                // module-body task.
                events: self
                    .incr
                    .as_ref()
                    .map(|i| vec![i.ready])
                    .unwrap_or_default(),
                all_def_scopes: true,
                any_barrier: true,
            };
            self.spawn_task(t);
        }
    }

    /// Once-only creation of a definition-module stream (§3); returns its
    /// interface scope, or `None` when the provider has no such module
    /// (the importing parser reports the diagnostic).
    fn ensure_def_stream(self: &Arc<Self>, name: Symbol, depth: usize) -> Option<ScopeId> {
        {
            let mut st = self.st.lock();
            st.max_import_depth = st.max_import_depth.max(depth);
            if let Some(&s) = st.def_streams.get(&name) {
                return Some(s);
            }
        }
        let name_str = self.interner.resolve(name);
        let text = self.defs.definition_source(&name_str)?;
        let scope_ev = self
            .env
            .new_event_named(EventClass::Handled, &format!("scope({name_str}.def)"));
        let (scope, file) = {
            let mut st = self.st.lock();
            if let Some(&s) = st.def_streams.get(&name) {
                return Some(s); // raced another task; theirs won
            }
            let file = self.sources.add(format!("{name_str}.def"), text);
            let scope = self
                .tables()
                .new_scope(ScopeKind::DefModule, name, None, file.id());
            st.def_streams.insert(name, scope);
            st.scope_events.insert(scope, scope_ev);
            (scope, file)
        };
        // Spawn the stream's tasks: Lexor → {Importer, Parser/DeclAnalyzer}.
        let q = TokenQueue::named(Arc::clone(&self.env), format!("lex({name_str}.def)"));
        {
            let this = Arc::clone(self);
            let q = Arc::clone(&q);
            let mut t = TaskDesc::new(
                format!("lex({name_str}.def)"),
                TaskKind::Lexor,
                Box::new(move || {
                    let sema = this.sema();
                    for tok in Lexer::new(&file, &sema.interner, &sema.sink) {
                        this.env.charge(Work::Lex, 1);
                        q.push(tok);
                    }
                    q.close();
                }),
            );
            t.signals_barriers = true;
            self.spawn_task(t);
        }
        {
            let this = Arc::clone(self);
            let q = Arc::clone(&q);
            let mut t = TaskDesc::new(
                format!("import({name_str}.def)"),
                TaskKind::Importer,
                Box::new(move || {
                    let cursor = StreamCursor::new(q, Work::Import);
                    run_importer(&cursor, depth + 1, &DriverHandle(this));
                }),
            );
            t.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: false,
                any_barrier: true,
            };
            self.spawn_task(t);
        }
        {
            let this = Arc::clone(self);
            let mut t = TaskDesc::new(
                format!("defparse({name_str})"),
                TaskKind::DefModParse,
                Box::new(move || this.def_parse(name, scope, q, depth)),
            );
            t.signals = vec![scope_ev];
            t.signals_def_scope = true;
            t.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: true,
                any_barrier: true,
            };
            self.spawn_task(t);
        }
        Some(scope)
    }

    /// Spawns one per-unit `Analyze` task (§2.3.4 priority: after
    /// statement analysis, before code generation). Analysis tasks are
    /// pure AST walks: no prereqs and an empty wait-set, so they are
    /// always stack-eligible for blocked workers.
    #[allow(clippy::too_many_arguments)] // one spawn site per stream kind
    fn spawn_analyze(
        self: &Arc<Self>,
        label: String,
        unit: String,
        file: FileId,
        kind: ccm2_analysis::UnitKind,
        decls: Vec<Decl>,
        stmts: Vec<Stmt>,
        scope: Option<ScopeId>,
    ) {
        let weight = stmt_count(&stmts) as u64;
        let this = Arc::clone(self);
        let mut t = TaskDesc::new(
            label,
            TaskKind::Analyze,
            Box::new(move || {
                let sema = this.sema();
                let ua = ccm2_analysis::analyze_unit(
                    &sema.interner,
                    file,
                    &unit,
                    kind,
                    &decls,
                    &stmts,
                    &sema.sink,
                );
                this.env.charge(Work::Analyze, ua.work);
                if let Some(scope) = scope {
                    if this.incr.is_some() {
                        // Cache entries must carry the per-unit used-name
                        // set and lock summary (a spliced unit can't
                        // re-run its analysis).
                        let mut st = this.st.lock();
                        st.used_sets.insert(scope, ua.used.clone());
                        st.summaries.insert(scope, ua.summary.clone());
                    }
                }
                this.hub.absorb(ua.used);
                this.hub.absorb_summary(ua.summary);
            }),
        );
        t.weight = weight;
        self.spawn_task(t);
    }

    // ---- task bodies ------------------------------------------------------

    fn def_parse(self: &Arc<Self>, name: Symbol, scope: ScopeId, q: Arc<TokenQueue>, depth: usize) {
        let sema = Arc::clone(self.sema());
        let cursor = StreamCursor::new(q, Work::Parse);
        let parsed = parse_definition_from(&cursor, &sema.interner, &sema.sink);
        let Some(def) = parsed else {
            // Malformed interface: complete the (empty) table so DKY
            // waiters are not stranded.
            sema.tables.mark_complete(scope);
            return;
        };
        if def.name.name != name {
            self.sink.report(Diagnostic::error(
                self.tables().scope(scope).file(),
                def.name.span,
                format!(
                    "definition file for `{}` declares module `{}`",
                    self.interner.resolve(name),
                    self.interner.resolve(def.name.name)
                ),
            ));
        }
        let mapping: HashMap<Symbol, ScopeId> = def
            .imports
            .iter()
            .filter_map(|imp| {
                let m = imp.module().name;
                self.ensure_def_stream(m, depth + 1).map(|s| (m, s))
            })
            .collect();
        bind_imports(&sema, scope, &def.imports, &|n| mapping.get(&n).copied());
        if self.strategy == DkyStrategy::Avoidance {
            // §2.2: delay semantic analysis until the tables it may search
            // are complete.
            for s in mapping.values() {
                self.wait_scope_complete(*s);
            }
        }
        let hooks = DriverHooks { driver: self };
        let mut declarer = Declarer::new(&sema, scope, self.heading_mode, &hooks);
        for decl in &def.decls {
            declarer.declare(decl);
        }
        declarer.finish();
        self.merger.add_globals(name, global_shapes(&sema, scope));
        sema.tables.mark_complete(scope);
    }

    fn module_parse(self: &Arc<Self>, parse_q: Arc<TokenQueue>) {
        let sema = Arc::clone(self.sema());
        let cursor = StreamCursor::new(parse_q, Work::Parse);
        let streaming = StreamingImpl::begin(&cursor, &sema.interner, &sema.sink);
        let main_scope = self.st.lock().main_scope;
        let Some(mut streaming) = streaming else {
            if let Some(s) = main_scope {
                sema.tables.mark_complete(s);
            } else {
                self.env.signal(self.main_scope_event);
            }
            return;
        };
        let scope = match main_scope {
            Some(s) => s,
            None if !self.early_split => {
                // No splitter ran: the parser creates the main scope.
                let name = streaming.name();
                DriverHandle(Arc::clone(self)).main_module_started(
                    name.name,
                    self.sources
                        .get(ccm2_support::source::FileId(0))
                        .map(|f| f.id())
                        .unwrap_or(ccm2_support::source::FileId(0)),
                )
            }
            None => {
                self.env.signal(self.main_scope_event);
                return;
            }
        };
        let imports = streaming.imports().to_vec();
        let mapping: HashMap<Symbol, ScopeId> = imports
            .iter()
            .filter_map(|imp| {
                let m = imp.module().name;
                self.ensure_def_stream(m, 1).map(|s| (m, s))
            })
            .collect();
        bind_imports(&sema, scope, &imports, &|n| mapping.get(&n).copied());
        if self.strategy == DkyStrategy::Avoidance {
            for s in mapping.values() {
                self.wait_scope_complete(*s);
            }
        }
        // Declarations are analyzed as they are parsed, so each procedure
        // heading's avoided event fires immediately (§3: fast processing
        // of declaration parts resolves DKY blockages early).
        let hooks = DriverHooks { driver: self };
        let mut declarer = Declarer::new(&sema, scope, self.heading_mode, &hooks);
        let mut unit_decls: Vec<Decl> = Vec::new();
        while let Some(decls) = streaming.next_decls() {
            for decl in &decls {
                declarer.declare(decl);
            }
            if self.analyze {
                unit_decls.extend(decls);
            }
        }
        let pending = declarer.finish();
        // Under the no-early-split ablation, procedure bodies are Local:
        // declare them here (serially — the ablation's cost) and spawn
        // their code-generation tasks.
        self.process_local_procs(pending);
        // Paper §3: the symbol table is marked complete before the
        // statement parse tree is built.
        sema.tables.mark_complete(scope);
        self.merger
            .add_globals(streaming.name().name, global_shapes(&sema, scope));
        let module_name = streaming.name().name;
        let (stmts, body_poisoned) = streaming.finish();
        // Analysis of the module unit (its own decls + body); the
        // unused-import check runs in `finish`, over every unit's union.
        if self.analyze {
            let file = self.tables().scope(scope).file();
            self.st.lock().main_imports = Some((file, imports.clone()));
            let module_str = self.interner.resolve(module_name);
            self.spawn_analyze(
                format!("analyze({module_str})"),
                module_str,
                file,
                ccm2_analysis::UnitKind::Module,
                unit_decls,
                stmts.clone(),
                None,
            );
        }
        // Module-body statement analysis + code generation task — or a
        // splice of the cached module unit. The splitter has carved every
        // stream by the time the main token queue closes, so waiting on
        // `ready` here cannot block for long (and never cyclically: the
        // splitter reads only from the lexer).
        let module_entry = match &self.incr {
            Some(incr) => {
                self.env.wait(incr.ready);
                let st = self.st.lock();
                st.decisions.as_ref().and_then(|d| d.module_entry.clone())
            }
            None => None,
        };
        let weight = stmt_count(&stmts) as u64;
        let this = Arc::clone(self);
        if let Some(entry) = module_entry {
            let mut t = TaskDesc::new(
                format!("splice({})", self.interner.resolve(module_name)),
                TaskKind::CacheSplice,
                Box::new(move || {
                    let sema = this.sema();
                    this.env
                        .charge(Work::Splice, 1 + entry.unit.code.len() as u64 / 64);
                    this.merger
                        .add_unit(entry.unit.clone(), sema.meter.as_ref());
                }),
            );
            t.weight = weight;
            self.spawn_task(t);
            return;
        }
        let kind = if weight as usize >= self.long_threshold {
            TaskKind::LongCodeGen
        } else {
            TaskKind::ShortCodeGen
        };
        let mut t = TaskDesc::new(
            format!("codegen({})", self.interner.resolve(module_name)),
            kind,
            Box::new(move || {
                let sema = this.sema();
                let unit = if body_poisoned {
                    gen_error_unit(&this.interner, module_name, 0)
                } else {
                    gen_module_body(sema, scope, module_name, &stmts)
                };
                this.merger.add_unit(unit, sema.meter.as_ref());
            }),
        );
        t.weight = weight;
        t.may_wait = WaitSet {
            events: vec![],
            all_def_scopes: true,
            any_barrier: false,
        };
        self.spawn_task(t);
    }

    /// Recursively declares Local-bodied procedures (no-early-split
    /// ablation) and spawns their code-generation tasks.
    fn process_local_procs(self: &Arc<Self>, pending: Vec<ccm2_sema::declare::PendingProc>) {
        let sema = Arc::clone(self.sema());
        let mut queue = pending;
        while let Some(p) = queue.pop() {
            let ccm2_syntax::ast::ProcBody::Local(local) = &p.body else {
                continue; // Remote bodies are handled by their streams.
            };
            {
                let mut st = self.st.lock();
                st.procedures += 1;
                st.scope_events.entry(p.scope).or_insert_with(|| {
                    self.env.new_event_named(
                        EventClass::Handled,
                        &format!("scope(local proc #{})", p.scope.index()),
                    )
                });
            }
            match self.heading_mode {
                HeadingMode::Reprocess => {
                    declare_own_params(&sema, p.scope, &p.heading);
                }
                HeadingMode::Dual => {
                    verify_heading(&sema, p.scope, &p.heading);
                }
                HeadingMode::CopyToChild => {}
            }
            let hooks = DriverHooks { driver: self };
            let mut declarer = Declarer::new(&sema, p.scope, self.heading_mode, &hooks);
            for d in &local.decls {
                declarer.declare(d);
            }
            let nested = declarer.finish();
            sema.tables.mark_complete(p.scope);
            queue.extend(nested);
            let stmts = local.body.clone();
            if self.analyze {
                let file = self.tables().scope(p.scope).file();
                let unit_str = self.interner.resolve(p.code_name);
                self.spawn_analyze(
                    format!("analyze({unit_str})"),
                    unit_str,
                    file,
                    ccm2_analysis::UnitKind::Procedure,
                    local.decls.clone(),
                    stmts.clone(),
                    Some(p.scope),
                );
            }
            let weight = stmt_count(&stmts) as u64;
            let kind = if weight as usize >= self.long_threshold {
                TaskKind::LongCodeGen
            } else {
                TaskKind::ShortCodeGen
            };
            let ancestor_events: Vec<EventId> = self
                .tables()
                .ancestry(p.scope)
                .into_iter()
                .skip(1)
                .map(|s| self.scope_event(s))
                .collect();
            let this = Arc::clone(self);
            let scope = p.scope;
            let code_name = p.code_name;
            let sig = p.sig.clone();
            let poisoned = local.poisoned;
            let mut t = TaskDesc::new(
                format!("codegen({})", self.interner.resolve(code_name)),
                kind,
                Box::new(move || {
                    let sema = this.sema();
                    let unit = if poisoned {
                        let level = sema.tables.scope(scope).level();
                        gen_error_unit(&this.interner, code_name, level)
                    } else {
                        gen_procedure(sema, scope, code_name, &sig, &stmts)
                    };
                    this.merger.add_unit(unit, sema.meter.as_ref());
                }),
            );
            t.weight = weight;
            t.may_wait = WaitSet {
                events: ancestor_events,
                all_def_scopes: true,
                any_barrier: false,
            };
            self.spawn_task(t);
        }
    }

    fn proc_parse(self: &Arc<Self>, stream: StreamId, scope: ScopeId, q: Arc<TokenQueue>) {
        let sema = Arc::clone(self.sema());
        let cursor = StreamCursor::new(q, Work::Parse);
        let streaming = StreamingProc::begin(&cursor, &sema.interner, &sema.sink);
        let Some(mut streaming) = streaming else {
            sema.tables.mark_complete(scope);
            return;
        };
        let info = self.st.lock().heading_info.get(&scope).cloned();
        let Some((code_name, sig)) = info else {
            // Heading event fired without info: defensive.
            sema.tables.mark_complete(scope);
            return;
        };
        match self.heading_mode {
            HeadingMode::Reprocess => {
                // §2.4 alternative 3: the child re-elaborates its heading.
                declare_own_params(&sema, scope, streaming.heading());
            }
            HeadingMode::Dual => {
                // Both flows: entries were copied in by the parent; the
                // child cross-checks the heading through its own chain.
                verify_heading(&sema, scope, streaming.heading());
            }
            HeadingMode::CopyToChild => {}
        }
        // Local declarations are analyzed as parsed (nested procedure
        // headings fire immediately); the table completes before the
        // statement parse tree is built (§3).
        let hooks = DriverHooks { driver: self };
        let mut declarer = Declarer::new(&sema, scope, self.heading_mode, &hooks);
        let mut unit_decls: Vec<Decl> = Vec::new();
        while let Some(decls) = streaming.next_decls() {
            for decl in &decls {
                declarer.declare(decl);
            }
            if self.analyze {
                unit_decls.extend(decls);
            }
        }
        declarer.finish();
        sema.tables.mark_complete(scope);
        let (stmts, poisoned) = streaming.finish();
        // Statement analysis + code generation task: long before short.
        let weight = stmt_count(&stmts) as u64;
        let kind = if weight as usize >= self.long_threshold {
            TaskKind::LongCodeGen
        } else {
            TaskKind::ShortCodeGen
        };
        let ancestor_events: Vec<EventId> = self
            .tables()
            .ancestry(scope)
            .into_iter()
            .skip(1)
            .map(|s| self.scope_event(s))
            .collect();
        let this = Arc::clone(self);
        let name_str = self.interner.resolve(code_name);
        if self.analyze {
            let file = self.tables().scope(scope).file();
            self.spawn_analyze(
                format!("analyze({name_str})"),
                name_str.clone(),
                file,
                ccm2_analysis::UnitKind::Procedure,
                unit_decls,
                stmts.clone(),
                Some(scope),
            );
        }
        let mut t = TaskDesc::new(
            format!("codegen({name_str})"),
            kind,
            Box::new(move || {
                let sema = this.sema();
                let unit = if poisoned {
                    let level = sema.tables.scope(scope).level();
                    gen_error_unit(&this.interner, code_name, level)
                } else {
                    gen_procedure(sema, scope, code_name, &sig, &stmts)
                };
                this.merger.add_unit(unit, sema.meter.as_ref());
            }),
        );
        t.weight = weight;
        t.may_wait = WaitSet {
            events: ancestor_events,
            all_def_scopes: true,
            any_barrier: false,
        };
        self.spawn_task(t);
        let _ = stream;
    }

    // ---- incremental compilation -------------------------------------------

    /// Parser/DeclAnalyzer task for a procedure stream, gated on the
    /// heading event (§2.4 avoided event). Under Avoidance it is also
    /// gated on the parent scope's completion (§2.2). Called directly
    /// from `proc_stream`, or from `incr_split_eof` for cache misses.
    fn spawn_proc_parse(
        self: &Arc<Self>,
        id: StreamId,
        scope: ScopeId,
        parent: ScopeId,
        name: Symbol,
        q: Arc<TokenQueue>,
    ) {
        let name_str = self.interner.resolve(name);
        let (scope_ev, heading_ev) = {
            let st = self.st.lock();
            (
                st.scope_events.get(&scope).copied(),
                st.heading_events.get(&scope).copied(),
            )
        };
        let ancestor_events: Vec<EventId> = self
            .tables()
            .ancestry(scope)
            .into_iter()
            .skip(1)
            .map(|s| self.scope_event(s))
            .collect();
        let body_q = Arc::clone(&q);
        let spawn_this = Arc::clone(self);
        let mut t = TaskDesc::new(
            format!("procparse({name_str})"),
            TaskKind::ProcParse,
            Box::new(move || spawn_this.proc_parse(id, scope, body_q)),
        );
        t.prereqs = heading_ev.into_iter().collect();
        if self.strategy == DkyStrategy::Avoidance {
            t.prereqs.push(self.scope_event(parent));
        }
        t.signals = scope_ev.into_iter().collect();
        t.may_wait = WaitSet {
            events: ancestor_events,
            all_def_scopes: true,
            any_barrier: true,
        };
        self.spawn_task(t);
    }

    /// The splitter carved every stream: fingerprint them, decide hit or
    /// miss per stream, then spawn each deferred task as either a
    /// `CacheSplice` or a normal `ProcParse`. A hit is spliced only when
    /// every nested stream inside it also hit — a recompiled inner
    /// procedure needs its enclosing scopes declared live.
    fn incr_split_eof(self: &Arc<Self>) {
        let Some(incr) = &self.incr else { return };
        let (pending, carves) = {
            let mut st = self.st.lock();
            (
                std::mem::take(&mut st.pending_procs),
                std::mem::take(&mut st.carves),
            )
        };
        let source_text = self
            .sources
            .get(FileId(0))
            .map(|f| f.text().to_string())
            .unwrap_or_default();
        // Missing carves would make the context digests unsound (they
        // describe which child bodies to exclude); degrade the whole
        // compile to cold rather than risk a wrong splice.
        let complete = pending.iter().all(|p| carves.contains_key(&p.scope));
        let index_of: HashMap<ScopeId, usize> = pending
            .iter()
            .enumerate()
            .map(|(i, p)| (p.scope, i))
            .collect();
        let nodes: Vec<StreamNode> = pending
            .iter()
            .map(|p| StreamNode {
                carve: carves.get(&p.scope).copied().unwrap_or(Carve {
                    lo: 0,
                    heading_hi: 0,
                    hi: 0,
                }),
                parent: index_of.get(&p.parent).copied(),
            })
            .collect();
        let env_fp = *incr.env_fp.get().expect("set in start");
        let fps = fingerprint_streams(&source_text, &nodes, env_fp);
        let mut stats = IncrStats {
            units: pending.len() + 1,
            ..IncrStats::default()
        };
        let mut load = |fp: Fp128, what: &str| -> Option<Arc<CacheEntryData>> {
            if !complete {
                return None;
            }
            let bytes = incr.store.load(fp)?;
            match decode_entry(&bytes, &self.interner) {
                // A proc entry recorded under analysis carries a lock
                // summary; an undecodable one (format bump, corruption)
                // makes the whole entry a miss — the stream recompiles
                // and re-derives its summary live.
                Ok(entry) => {
                    if self.analyze && !entry.summary.is_empty() {
                        if let Err(e) = ccm2_analysis::decode_summary(&entry.summary, 0) {
                            stats.bad_entries += 1;
                            incr.store.quarantine(fp);
                            self.sink.report(Diagnostic {
                                severity: Severity::Note,
                                file: FileId(0),
                                span: Span { lo: 0, hi: 0 },
                                message: format!(
                                    "incremental cache entry for `{what}` ignored: {e}"
                                ),
                            });
                            return None;
                        }
                    }
                    Some(Arc::new(entry))
                }
                Err(e) => {
                    stats.bad_entries += 1;
                    incr.store.quarantine(fp);
                    self.sink.report(Diagnostic {
                        severity: Severity::Note,
                        file: FileId(0),
                        span: Span { lo: 0, hi: 0 },
                        message: format!("incremental cache entry for `{what}` ignored: {e}"),
                    });
                    None
                }
            }
        };
        let entries: Vec<Option<Arc<CacheEntryData>>> = pending
            .iter()
            .enumerate()
            .map(|(i, p)| load(fps.streams[i], &self.interner.resolve(p.name)))
            .collect();
        let module_entry = {
            let st = self.st.lock();
            let main = st.main_name;
            drop(st);
            main.and_then(|m| load(fps.module, &self.interner.resolve(m)))
        };
        // Splice closure, bottom-up (children always follow their lexical
        // parent in discovery order, so a reverse scan sees them first).
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); pending.len()];
        for (i, n) in nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                children[p].push(i);
            }
        }
        let mut spliced = vec![false; pending.len()];
        for i in (0..pending.len()).rev() {
            spliced[i] = entries[i].is_some() && children[i].iter().all(|&c| spliced[c]);
        }
        stats.hits = entries.iter().flatten().count() + usize::from(module_entry.is_some());
        stats.spliced =
            spliced.iter().filter(|s| **s).count() + usize::from(module_entry.is_some());
        stats.recompiled = stats.units - stats.spliced;
        let procs: HashMap<ScopeId, ProcDecision> = pending
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    p.scope,
                    ProcDecision {
                        fp: fps.streams[i],
                        entry: spliced[i].then(|| entries[i].clone()).flatten(),
                        carve: nodes[i].carve,
                    },
                )
            })
            .collect();
        let scope_of: Vec<ScopeId> = pending.iter().map(|p| p.scope).collect();
        {
            let mut st = self.st.lock();
            st.decisions = Some(Arc::new(Decisions {
                module_fp: fps.module,
                module_entry,
                procs,
            }));
            st.incr_stats = stats;
        }
        // The module parser may now choose between live codegen and a
        // module-body splice.
        self.env.signal(incr.ready);
        for (i, p) in pending.into_iter().enumerate() {
            if spliced[i] {
                let entry = entries[i].clone().expect("spliced implies entry");
                let child_scopes: Vec<ScopeId> = children[i].iter().map(|&c| scope_of[c]).collect();
                self.spawn_splice(p.scope, p.name, entry, nodes[i].carve, child_scopes);
            } else {
                self.spawn_proc_parse(p.stream, p.scope, p.parent, p.name, p.queue);
            }
        }
    }

    /// Spawns the `CacheSplice` task replacing a hit stream's ProcParse
    /// and CodeGen tasks. Like ProcParse it is gated on the stream's §2.4
    /// heading event: the enclosing declarer copies parameters into this
    /// scope (CopyToChild), so the scope may only be marked complete after
    /// that copy. Beyond the prereq it never waits, so it is always
    /// stack-eligible.
    fn spawn_splice(
        self: &Arc<Self>,
        scope: ScopeId,
        name: Symbol,
        entry: Arc<CacheEntryData>,
        carve: Carve,
        child_scopes: Vec<ScopeId>,
    ) {
        let (heading_ev, scope_ev, child_evs) = {
            let st = self.st.lock();
            let child_evs: Vec<EventId> = child_scopes
                .iter()
                .filter_map(|s| st.heading_events.get(s).copied())
                .collect();
            (
                st.heading_events.get(&scope).copied(),
                st.scope_events.get(&scope).copied(),
                child_evs,
            )
        };
        let this = Arc::clone(self);
        let weight = entry.unit.code.len() as u64;
        let body_evs = child_evs.clone();
        let mut t = TaskDesc::new(
            format!("splice({})", self.interner.resolve(name)),
            TaskKind::CacheSplice,
            Box::new(move || this.splice_proc(scope, entry, carve, body_evs)),
        );
        t.weight = weight;
        t.prereqs = heading_ev.into_iter().collect();
        t.signals = scope_ev.into_iter().chain(child_evs).collect();
        self.spawn_task(t);
    }

    /// Task body of a procedure-stream splice: completes the (empty)
    /// scope table, releases nested spliced streams' heading gates,
    /// replays the stream's recorded diagnostics rebased onto this run's
    /// carve, feeds the cached used-name set to the lint hub, and merges
    /// the cached unit.
    fn splice_proc(
        self: &Arc<Self>,
        scope: ScopeId,
        entry: Arc<CacheEntryData>,
        carve: Carve,
        child_heading_evs: Vec<EventId>,
    ) {
        let sema = self.sema();
        self.env
            .charge(Work::Splice, 1 + entry.unit.code.len() as u64 / 64);
        // Completing the scope fires its completion event and frees any
        // DKY waiter. Spliced scopes are only ever searched by their own
        // descendants, and those are spliced too (closure rule), so the
        // emptiness of the table is unobservable.
        sema.tables.mark_complete(scope);
        // Nested spliced streams would otherwise never see their §2.4
        // heading event: nobody parses this stream's text.
        for e in child_heading_evs {
            self.env.signal(e);
        }
        for d in &entry.diags {
            sema.sink.report(Diagnostic {
                severity: d.severity,
                file: FileId(0),
                span: Span {
                    lo: carve.lo + d.rel_lo,
                    hi: carve.lo + d.rel_hi,
                },
                message: d.message.clone(),
            });
        }
        if self.analyze {
            let used: HashSet<Symbol> =
                entry.used.iter().map(|u| sema.interner.intern(u)).collect();
            self.hub.absorb(used);
            // Rebase the cached lock summary onto this run's carve, the
            // same way the replayed diagnostics above are rebased. Load
            // already validated the blob; a failure here is defensive.
            if let Ok(mut summary) = ccm2_analysis::decode_summary(&entry.summary, carve.lo) {
                summary.from_cache = true;
                self.hub.absorb_summary(summary);
            }
        }
        self.merger
            .add_unit(entry.unit.clone(), sema.meter.as_ref());
    }

    /// After a clean compile, record a cache entry for every unit that
    /// compiled live, under the fingerprints computed at `split_eof`.
    /// Diagnostics are attributed to the innermost stream whose *body*
    /// contains them (a nested heading belongs to its enclosing stream,
    /// which declares it); module-level diagnostics are always re-emitted
    /// live and are never recorded.
    #[allow(clippy::too_many_arguments)] // one-shot call from `finish`
    fn record_entries(
        &self,
        incr: &IncrInner,
        dec: &Decisions,
        image: &ModuleImage,
        diagnostics: &[Diagnostic],
        code_names: &HashMap<ScopeId, Symbol>,
        used_sets: &HashMap<ScopeId, HashSet<Symbol>>,
        summaries: &HashMap<ScopeId, ccm2_analysis::UnitSummary>,
        lock_keys: &HashSet<(u32, u32, String)>,
        main_name: Option<Symbol>,
    ) {
        let mut per_scope: HashMap<ScopeId, Vec<CachedDiag>> = HashMap::new();
        for d in diagnostics {
            if d.file != FileId(0) {
                continue;
            }
            // Whole-program lock-pass diagnostics are derived in `finish`
            // from every unit's summary; a warm run re-derives them from
            // cached summaries, so caching them per-stream would replay
            // them twice.
            if lock_keys.contains(&(d.span.lo, d.span.hi, d.message.clone())) {
                continue;
            }
            let owner = dec
                .procs
                .iter()
                .filter(|(_, pd)| pd.carve.body_contains(d.span.lo))
                .min_by_key(|(_, pd)| pd.carve.hi - pd.carve.lo)
                .map(|(s, pd)| (*s, pd.carve));
            if let Some((scope, carve)) = owner {
                per_scope.entry(scope).or_default().push(CachedDiag {
                    severity: d.severity,
                    rel_lo: d.span.lo - carve.lo,
                    rel_hi: d.span.hi.saturating_sub(carve.lo),
                    message: d.message.clone(),
                });
            }
        }
        for (scope, pd) in &dec.procs {
            if pd.entry.is_some() {
                continue; // respliced: the store already has it
            }
            let Some(&name) = code_names.get(scope) else {
                continue;
            };
            let Some(unit) = image.unit(name) else {
                continue;
            };
            let diags = per_scope.remove(scope).unwrap_or_default();
            let findings = diags.len() as u32;
            let mut used: Vec<String> = used_sets
                .get(scope)
                .map(|s| s.iter().map(|sym| self.interner.resolve(*sym)).collect())
                .unwrap_or_default();
            used.sort();
            used.dedup();
            // Summary spans are stored carve-relative, like the cached
            // diagnostics: a splice into a shifted file rebases both.
            let summary = summaries
                .get(scope)
                .map(|s| ccm2_analysis::encode_summary(s, pd.carve.lo))
                .unwrap_or_default();
            let data = CacheEntryData {
                unit: unit.clone(),
                diags,
                used,
                findings,
                summary,
            };
            incr.store
                .store(pd.fp, &encode_entry(&data, &self.interner));
        }
        if dec.module_entry.is_none() {
            if let Some(unit) = main_name.and_then(|m| image.unit(m)) {
                // The module unit carries no diagnostics and no summary:
                // everything at module level is re-derived by the live
                // module parse (its Analyze task always runs).
                let data = CacheEntryData {
                    unit: unit.clone(),
                    diags: vec![],
                    used: vec![],
                    findings: 0,
                    summary: vec![],
                };
                incr.store
                    .store(dec.module_fp, &encode_entry(&data, &self.interner));
            }
        }
    }

    // ---- finish -------------------------------------------------------------

    fn finish(self: &Arc<Self>, report: RunReport) -> ConcurrentOutput {
        let mut st = self.st.lock();
        let main_name = st.main_name;
        let procedures = st.procedures;
        let imported_interfaces = st.def_streams.len();
        let import_nesting_depth = st.max_import_depth;
        let main_imports = st.main_imports.take();
        let decisions = st.decisions.take();
        let code_names: HashMap<ScopeId, Symbol> = st
            .heading_info
            .iter()
            .map(|(s, (name, _))| (*s, *name))
            .collect();
        let used_sets = std::mem::take(&mut st.used_sets);
        let summaries = std::mem::take(&mut st.summaries);
        let incr_stats = st.incr_stats;
        drop(st);
        // Unused-import lint and the whole-program lock-order pass: every
        // Analyze (and splice) task has completed — the run is over — so
        // the hub holds the full used-name union and one summary per unit.
        let mut locks: Option<ccm2_analysis::LockStats> = None;
        let mut lock_keys: HashSet<(u32, u32, String)> = HashSet::new();
        if self.analyze {
            if let Some((file, imports)) = main_imports {
                let used = self.hub.take_used();
                ccm2_analysis::check_unused_imports(
                    &self.interner,
                    file,
                    &imports,
                    &used,
                    &self.sink,
                );
                let unit_summaries = self.hub.take_summaries();
                let (lock_diags, lock_stats) =
                    ccm2_analysis::lock_order_pass(&unit_summaries, file);
                for d in lock_diags {
                    lock_keys.insert((d.span.lo, d.span.hi, d.message.clone()));
                    self.sink.report(d);
                }
                locks = Some(lock_stats);
            }
        }
        let mut image: Option<ModuleImage> = main_name.map(|name| {
            let mut image = self.merger.finish();
            image.name = name;
            image.entry = name;
            image
        });
        // Graceful degradation: a caught task panic degrades only its own
        // stream (the merged object gets a deterministic error unit below);
        // a watchdog report converts a silent stall into a diagnosis. Both
        // become error diagnostics, so degraded compiles are never cached.
        let mut errors: Vec<CompileError> = Vec::new();
        let mut degraded_diags: Vec<Diagnostic> = Vec::new();
        for (task, message) in &report.task_panics {
            errors.push(CompileError::StreamFault {
                task: task.clone(),
                message: message.clone(),
            });
            degraded_diags.push(Diagnostic {
                severity: Severity::Error,
                file: FileId(0),
                span: Span { lo: 0, hi: 0 },
                message: format!("stream degraded: task `{task}` panicked: {message}"),
            });
        }
        for stall in &report.stalls {
            errors.push(CompileError::Stalled {
                cycle_or_task: stall.clone(),
            });
            degraded_diags.push(Diagnostic {
                severity: Severity::Error,
                file: FileId(0),
                span: Span { lo: 0, hi: 0 },
                message: format!("stall diagnosed: {stall}"),
            });
        }
        // Supervised recoveries did NOT degrade anything — the retried
        // stream's output is byte-identical to a fault-free run — so
        // they surface as Notes: visible to harnesses, but `is_ok()`
        // stays true and the compile remains cacheable.
        for (task, attempts) in &report.recoveries {
            errors.push(CompileError::Recovered {
                task: task.clone(),
                attempts: *attempts,
            });
            degraded_diags.push(Diagnostic {
                severity: Severity::Note,
                file: FileId(0),
                span: Span { lo: 0, hi: 0 },
                message: format!(
                    "stream recovered: task `{task}` completed after \
                     {attempts} retried attempt(s)"
                ),
            });
        }
        // Executors report panics/stalls in completion order, which varies
        // run to run on the threaded executor; sort for determinism.
        degraded_diags.sort_by(|a, b| a.message.cmp(&b.message));
        errors.sort_by_key(|e| match e {
            CompileError::StreamFault { task, message } => (0u8, task.clone(), message.clone()),
            CompileError::Stalled { cycle_or_task } => (1u8, cycle_or_task.clone(), String::new()),
            CompileError::Recovered { task, attempts } => (2u8, task.clone(), attempts.to_string()),
        });
        if !report.task_panics.is_empty() {
            if let Some(image) = image.as_mut() {
                let mut expected: Vec<Symbol> = code_names.values().copied().collect();
                expected.extend(main_name);
                for name in expected {
                    if image.unit(name).is_some() {
                        continue;
                    }
                    let name_str = self.interner.resolve(name);
                    let level = if main_name == Some(name) { 0 } else { 1 };
                    let mut unit = CodeUnit::new(name, level);
                    let msg = self.interner.intern(&format!(
                        "degraded: stream `{name_str}` replaced after fault"
                    ));
                    unit.code = vec![Instr::PushStr(msg), Instr::Return];
                    image.units.push(unit);
                }
                let interner = &self.interner;
                image.units.sort_by_key(|a| interner.resolve(a.name));
            }
        }
        let mut diagnostics = self.sink.take();
        diagnostics.extend(degraded_diags);
        // Record cache entries for the units that compiled live — but
        // only from an error-free compile, so a hit never replays the
        // artifacts of a failed one.
        if let (Some(incr), Some(dec), Some(image)) = (&self.incr, &decisions, &image) {
            let clean = !diagnostics.iter().any(|d| d.severity == Severity::Error);
            if clean {
                self.record_entries(
                    incr,
                    dec,
                    image,
                    &diagnostics,
                    &code_names,
                    &used_sets,
                    &summaries,
                    &lock_keys,
                    main_name,
                );
            }
        }
        let sema = self.sema();
        ConcurrentOutput {
            image,
            diagnostics,
            stats: Arc::clone(sema.stats()),
            interner: Arc::clone(&self.interner),
            sources: Arc::clone(&self.sources),
            report,
            streams: 1 + imported_interfaces + procedures,
            procedures,
            imported_interfaces,
            import_nesting_depth,
            incr: self.incr.as_ref().map(|_| incr_stats),
            locks,
            errors,
        }
    }
}

// ---- trait wiring ------------------------------------------------------

/// An owning handle: the splitter and importer speak to the driver
/// through `&dyn` traits, which need an owned `Arc` to spawn tasks.
struct DriverHandle(Arc<Driver>);

impl ImportSink for DriverHandle {
    fn import_found(&self, module: Symbol, depth: usize) {
        self.0.ensure_def_stream(module, depth);
    }
}

impl StreamFactory for DriverHandle {
    fn main_module_started(&self, name: Symbol, file: FileId) -> ScopeId {
        let scope = self
            .0
            .tables()
            .new_scope(ScopeKind::MainModule, name, None, file);
        let mut st = self.0.st.lock();
        st.scope_events.insert(scope, self.0.main_scope_event);
        st.main_scope = Some(scope);
        st.main_name = Some(name);
        scope
    }

    fn proc_stream(
        &self,
        name: Symbol,
        file: FileId,
        parent: ScopeId,
    ) -> (StreamId, Arc<TokenQueue>) {
        let this = &self.0;
        let scope = this
            .tables()
            .new_scope(ScopeKind::Procedure, name, Some(parent), file);
        let name_str = this.interner.resolve(name);
        let scope_ev = this
            .env
            .new_event_named(EventClass::Handled, &format!("scope(proc {name_str})"));
        let heading_ev = this
            .env
            .new_event_named(EventClass::Avoided, &format!("heading({name_str})"));
        let q = TokenQueue::named(Arc::clone(&this.env), format!("proc({name_str})"));
        let id = {
            let mut st = this.st.lock();
            let id = StreamId(st.next_stream);
            st.next_stream += 1;
            st.scope_events.insert(scope, scope_ev);
            st.heading_events.insert(scope, heading_ev);
            st.stream_scopes.insert(id, scope);
            st.procedures += 1;
            id
        };
        if this.incr.is_some() {
            // Incremental mode: task spawning is deferred to `split_eof`,
            // when the full carve set exists and each stream can be
            // fingerprinted as a cache hit (splice) or miss (parse).
            this.st.lock().pending_procs.push(PendingStream {
                stream: id,
                scope,
                parent,
                name,
                queue: Arc::clone(&q),
            });
        } else {
            this.spawn_proc_parse(id, scope, parent, name, Arc::clone(&q));
        }
        (id, q)
    }

    fn scope_for(&self, stream: StreamId) -> Option<ScopeId> {
        self.0.st.lock().stream_scopes.get(&stream).copied()
    }

    fn stream_carved(&self, stream: StreamId, heading: Span, full: Span) {
        if self.0.incr.is_none() {
            return;
        }
        let mut st = self.0.st.lock();
        if let Some(&scope) = st.stream_scopes.get(&stream) {
            st.carves.insert(
                scope,
                Carve {
                    lo: full.lo,
                    heading_hi: heading.hi,
                    hi: full.hi,
                },
            );
        }
    }

    fn split_eof(&self) {
        self.0.incr_split_eof();
    }
}

impl TableNotifier for Driver {
    fn scope_completed(&self, scope: ScopeId) {
        let (ev, symbol_evs) = {
            let st = self.st.lock();
            let ev = st.scope_events.get(&scope).copied();
            let evs: Vec<EventId> = st
                .symbol_events
                .iter()
                .filter(|((s, _), _)| *s == scope)
                .map(|(_, &e)| e)
                .collect();
            (ev, evs)
        };
        if let Some(e) = ev {
            self.env.signal(e);
        }
        // Optimistic handling: completing a table signals every unsignaled
        // per-symbol event (the "traverse and signal" sweep of §2.3.3).
        for e in symbol_evs {
            self.env.signal(e);
        }
    }

    fn symbol_inserted(&self, scope: ScopeId, name: Symbol) {
        let ev = self.st.lock().symbol_events.get(&(scope, name)).copied();
        if let Some(e) = ev {
            self.env.signal(e);
        }
    }
}

impl DkyWaiter for Driver {
    fn wait_scope_complete(&self, scope: ScopeId) {
        let ev = self.scope_event(scope);
        self.env.wait(ev);
    }

    fn wait_symbol(&self, scope: ScopeId, name: Symbol) {
        let ev = {
            let mut st = self.st.lock();
            *st.symbol_events
                .entry((scope, name))
                .or_insert_with(|| self.env.new_event(EventClass::Handled))
        };
        // Avoid lost wakeups: the symbol may have arrived (or the table
        // completed) before the event existed.
        let table = self.tables().scope(scope);
        if table.is_complete() || table.get(name).is_some() {
            self.env.signal(ev);
        }
        // Hint: whoever completes the scope also resolves this symbol
        // event, so "run the resolver" scheduling works for the
        // dynamically created per-symbol events too.
        self.env.wait_hinted(ev, Some(self.scope_event(scope)));
    }
}

struct DriverHooks<'a> {
    driver: &'a Arc<Driver>,
}

impl DeclareHooks for DriverHooks<'_> {
    fn scope_for_stream(&self, stream: StreamId) -> ScopeId {
        if let Some(&scope) = self.driver.st.lock().stream_scopes.get(&stream) {
            return scope;
        }
        // A token stream with no registered scope is a splitter bug, but
        // the worker can survive it: report an internal error and park
        // the stream's declarations in a detached scope. The scope is
        // memoized so repeated calls stay consistent.
        self.driver.sink.report(Diagnostic::error(
            FileId(0),
            Span { lo: 0, hi: 0 },
            format!(
                "internal error: token stream {} has no registered scope",
                stream.0
            ),
        ));
        let scope = self.driver.tables().new_scope(
            ScopeKind::Procedure,
            self.driver.interner.intern("<unregistered-stream>"),
            None,
            FileId(0),
        );
        self.driver.st.lock().stream_scopes.insert(stream, scope);
        scope
    }

    fn heading_done(&self, scope: ScopeId, code_name: Symbol, sig: &ProcSig) {
        let ev = {
            let mut st = self.driver.st.lock();
            st.heading_info.insert(scope, (code_name, sig.clone()));
            st.heading_events.get(&scope).copied()
        };
        if let Some(e) = ev {
            self.driver.env.signal(e);
        }
    }
}
