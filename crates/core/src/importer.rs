//! The Importer task (paper §3).
//!
//! Searches a stream's tokens for `IMPORT` declarations and starts a new
//! stream for each imported definition module it discovers — the
//! compiler "optimistically anticipates" interfaces so their lexing and
//! analysis begin as early as possible. The token stream of each imported
//! definition module is fed to *its own* importer task to detect
//! indirectly imported interfaces; a **once-only table** (owned by the
//! driver, behind [`ImportSink`]) guarantees each definition module is
//! processed exactly once per compilation.

use ccm2_support::intern::Symbol;
use ccm2_syntax::token::TokenKind;

use crate::splitter::SplitInput;

/// Receives discovered imports (the driver's once-only table).
pub trait ImportSink: Send + Sync {
    /// `module` is imported at `depth` links from the main module;
    /// ensure its stream exists (idempotent).
    fn import_found(&self, module: Symbol, depth: usize);
}

/// Scans the import section of a module's token stream, reporting every
/// imported module to `sink`. Stops at the first token that ends the
/// import section (any declaration keyword, `BEGIN`, or `END`). Returns
/// the number of tokens inspected.
pub fn run_importer(input: &dyn SplitInput, depth: usize, sink: &dyn ImportSink) -> usize {
    let mut pos = 0usize;
    let mut inspected = 0usize;
    while let Some(t) = input.get(pos) {
        pos += 1;
        inspected += 1;
        match t.kind {
            TokenKind::From => {
                // FROM Ident IMPORT … ;
                if let Some(m) = input.get(pos) {
                    if let TokenKind::Ident(name) = m.kind {
                        sink.import_found(name, depth);
                    }
                }
            }
            TokenKind::Import => {
                // IMPORT A, B, … ;  (also consumes the FROM form's name
                // list, which contains no module names — harmless since
                // the FROM arm above already reported the module, and the
                // names after a FROM's IMPORT are *not* reported because
                // we skip until the semicolon only for plain IMPORTs that
                // follow a module-position ident.)
                // Distinguish: in `FROM A IMPORT x, y;` the IMPORT token
                // is preceded by the module ident; the names after it are
                // not modules. We detect that by remembering whether the
                // previous non-comma token was consumed by the FROM arm.
                // Simpler and equally correct: plain IMPORT lists follow
                // either the module header `;` or another import's `;`,
                // never an identifier. Check the previous token.
                let prev_is_ident = pos >= 2
                    && matches!(
                        input.get(pos - 2).map(|p| p.kind),
                        Some(TokenKind::Ident(_))
                    );
                if !prev_is_ident {
                    while let Some(n) = input.get(pos) {
                        pos += 1;
                        inspected += 1;
                        match n.kind {
                            TokenKind::Ident(name) => sink.import_found(name, depth),
                            TokenKind::Comma => {}
                            _ => break, // `;` or anything unexpected
                        }
                    }
                }
            }
            // End of the import section: no IMPORT can follow these.
            TokenKind::Const
            | TokenKind::Type
            | TokenKind::Var
            | TokenKind::Procedure
            | TokenKind::Begin
            | TokenKind::End => break,
            _ => {}
        }
    }
    inspected
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_support::intern::Interner;
    use ccm2_support::source::SourceMap;
    use ccm2_support::DiagnosticSink;
    use ccm2_syntax::lexer::lex_file;
    use parking_lot::Mutex;

    struct Collect {
        found: Mutex<Vec<(String, usize)>>,
        interner: std::sync::Arc<Interner>,
    }

    impl ImportSink for Collect {
        fn import_found(&self, module: Symbol, depth: usize) {
            self.found
                .lock()
                .push((self.interner.resolve(module), depth));
        }
    }

    fn scan(src: &str) -> Vec<(String, usize)> {
        let interner = std::sync::Arc::new(Interner::new());
        let map = SourceMap::new();
        let file = map.add("t.mod", src);
        let sink = DiagnosticSink::new();
        let tokens = lex_file(&file, &interner, &sink);
        let collect = Collect {
            found: Mutex::new(vec![]),
            interner,
        };
        run_importer(&tokens, 1, &collect);
        collect.found.into_inner()
    }

    #[test]
    fn plain_imports() {
        let found = scan("MODULE M; IMPORT A, B, C; BEGIN END M.");
        assert_eq!(
            found,
            vec![
                ("A".to_string(), 1),
                ("B".to_string(), 1),
                ("C".to_string(), 1)
            ]
        );
    }

    #[test]
    fn from_imports_report_module_not_names() {
        let found = scan("MODULE M; FROM Lists IMPORT List, Append; BEGIN END M.");
        assert_eq!(found, vec![("Lists".to_string(), 1)]);
    }

    #[test]
    fn mixed_imports() {
        let found = scan("DEFINITION MODULE M; IMPORT X; FROM Y IMPORT a; IMPORT Z; END M.");
        assert_eq!(
            found,
            vec![
                ("X".to_string(), 1),
                ("Y".to_string(), 1),
                ("Z".to_string(), 1)
            ]
        );
    }

    #[test]
    fn scan_stops_at_declarations() {
        // An identifier named IMPORT cannot exist (reserved), but make
        // sure we never scan past the declaration section.
        let inspected = {
            let interner = std::sync::Arc::new(Interner::new());
            let map = SourceMap::new();
            let file = map.add(
                "t.mod",
                "MODULE M; IMPORT A; VAR x : INTEGER; BEGIN x := 1; x := 2; x := 3 END M.",
            );
            let sink = DiagnosticSink::new();
            let tokens = lex_file(&file, &interner, &sink);
            let collect = Collect {
                found: Mutex::new(vec![]),
                interner,
            };
            run_importer(&tokens, 1, &collect)
        };
        assert!(inspected < 12, "stopped early, inspected {inspected}");
    }

    #[test]
    fn no_imports() {
        let found = scan("MODULE M; BEGIN END M.");
        assert!(found.is_empty());
    }
}
