//! `ccm2` — a concurrent compiler for Modula-2+.
//!
//! A from-scratch Rust reproduction of *A Concurrent Compiler for
//! Modula-2+* (David B. Wortman and Michael D. Junkin, PLDI 1992). The
//! compiler splits the source program into separately compilable
//! **streams** — the main module body, one stream per procedure (found by
//! a token-level [`splitter`]), and one per directly or indirectly
//! imported definition module (found by the [`importer`]) — and compiles
//! them concurrently under the Supervisors scheduler of
//! [`ccm2_sched`], resolving the *Doesn't-Know-Yet* symbol-table problem
//! with any of the paper's four strategies. Per-procedure object code is
//! merged by concatenation at the end (late merge, §2.1).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use ccm2::{compile_concurrent, Options};
//! use ccm2_support::defs::DefLibrary;
//! use ccm2_support::Interner;
//!
//! let out = compile_concurrent(
//!     "MODULE Hello; \
//!      PROCEDURE Greet; BEGIN WriteString('hello, concurrent world') END Greet; \
//!      BEGIN Greet; WriteLn END Hello.",
//!     Arc::new(DefLibrary::new()),
//!     Arc::new(Interner::new()),
//!     Options::threads(2),
//! );
//! assert!(out.is_ok(), "{:?}", out.diagnostics);
//! assert_eq!(out.procedures, 1);
//! assert_eq!(out.streams, 2, "main module + one procedure stream");
//! ```

pub mod driver;
pub mod importer;
pub mod queue;
pub mod splitter;

pub use ccm2_analysis::LockStats;
pub use driver::{compile_concurrent, CompileError, ConcurrentOutput, Executor, Options};
pub use queue::{StreamCursor, TokenQueue, BLOCK_SIZE};
pub use splitter::{run_splitter, SplitReport, StreamFactory};
