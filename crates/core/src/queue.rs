//! Lexical token queues with per-block barrier events (paper §2.3.1/§2.3.3).
//!
//! Producer/consumer pairs communicate through a [`TokenQueue`]: the
//! producer (a Lexor task, or the Splitter routing tokens to a procedure
//! stream) pushes tokens; each time a fixed-size *block* fills, the
//! block's event is signaled, "indicating to the consumer that it now
//! may begin to read the tokens of that block". Consumers read through a
//! [`StreamCursor`], which implements the parser's
//! [`ccm2_syntax::parser::TokenSource`] and parks on the block's barrier
//! event when it runs ahead of the producer.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use ccm2_sched::{EventClass, ExecEnv};
use ccm2_support::ids::EventId;
use ccm2_support::work::Work;
use ccm2_syntax::parser::TokenSource;
use ccm2_syntax::token::Token;

/// Tokens per block — the granularity of producer/consumer batching. The
/// paper does not give its block size; 64 keeps event traffic low while
/// letting consumers start promptly.
pub const BLOCK_SIZE: usize = 64;

struct QueueState {
    tokens: Vec<Token>,
    /// Number of tokens sealed (available to consumers without waiting).
    sealed: usize,
    closed: bool,
    /// Lazily created barrier event per block index.
    block_events: HashMap<usize, EventId>,
}

/// A multi-consumer token queue (the Lexor output feeds both the Splitter
/// and the Importer, §3).
pub struct TokenQueue {
    env: Arc<dyn ExecEnv>,
    name: String,
    state: Mutex<QueueState>,
}

impl std::fmt::Debug for TokenQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "TokenQueue(sealed = {}, total = {}, closed = {})",
            st.sealed,
            st.tokens.len(),
            st.closed
        )
    }
}

impl TokenQueue {
    /// Creates an empty open queue.
    pub fn new(env: Arc<dyn ExecEnv>) -> Arc<TokenQueue> {
        Self::named(env, "tokens")
    }

    /// Creates an empty open queue with a diagnostic name.
    pub fn named(env: Arc<dyn ExecEnv>, name: impl Into<String>) -> Arc<TokenQueue> {
        Arc::new(TokenQueue {
            env,
            name: name.into(),
            state: Mutex::new(QueueState {
                tokens: Vec::new(),
                sealed: 0,
                closed: false,
                block_events: HashMap::new(),
            }),
        })
    }

    fn event_for_block(&self, st: &mut QueueState, block: usize) -> EventId {
        *st.block_events.entry(block).or_insert_with(|| {
            self.env
                .new_event_named(EventClass::Barrier, &format!("{}/block#{block}", self.name))
        })
    }

    /// Appends one token; signals the block event when a block fills.
    pub fn push(&self, token: Token) {
        let mut st = self.state.lock();
        debug_assert!(!st.closed, "push into closed queue");
        st.tokens.push(token);
        if st.tokens.len() - st.sealed >= BLOCK_SIZE {
            let block = st.sealed / BLOCK_SIZE;
            st.sealed += BLOCK_SIZE;
            let ev = self.event_for_block(&mut st, block);
            drop(st);
            self.env.signal(ev);
        }
    }

    /// Appends many tokens.
    pub fn extend(&self, tokens: impl IntoIterator<Item = Token>) {
        for t in tokens {
            self.push(t);
        }
    }

    /// Closes the stream: seals the partial block and wakes every waiting
    /// consumer.
    pub fn close(&self) {
        let events: Vec<EventId> = {
            let mut st = self.state.lock();
            st.closed = true;
            st.sealed = st.tokens.len();
            // Wake consumers waiting on any block — including blocks that
            // will never fill.
            let last_block = st.tokens.len() / BLOCK_SIZE;
            for b in 0..=last_block {
                self.event_for_block(&mut st, b);
            }
            st.block_events.values().copied().collect()
        };
        for e in events {
            self.env.signal(e);
        }
    }

    /// Non-blocking read of token `i`: `Ok(Some)` if available,
    /// `Ok(None)` if the stream ended before `i`, `Err(event)` with the
    /// barrier event to wait on otherwise.
    pub fn try_get(&self, i: usize) -> Result<Option<Token>, EventId> {
        let mut st = self.state.lock();
        if i < st.sealed {
            return Ok(Some(st.tokens[i]));
        }
        if st.closed {
            return Ok(st.tokens.as_slice().get(i).copied());
        }
        let block = i / BLOCK_SIZE;
        Err(self.event_for_block(&mut st, block))
    }

    /// Blocking read of token `i` (parks on the block's barrier event).
    pub fn get_blocking(&self, i: usize) -> Option<Token> {
        loop {
            match self.try_get(i) {
                Ok(t) => return t,
                Err(ev) => self.env.wait(ev),
            }
        }
    }

    /// Total tokens pushed so far.
    pub fn len(&self) -> usize {
        self.state.lock().tokens.len()
    }

    /// Whether no tokens have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the producer has closed the stream.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

/// A read cursor over a [`TokenQueue`] that charges `work` per newly
/// consumed token — this is how parse/split/import work reaches the
/// virtual-time cost model.
pub struct StreamCursor {
    queue: Arc<TokenQueue>,
    work: Work,
    high_water: Mutex<usize>,
}

impl std::fmt::Debug for StreamCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StreamCursor(over {:?})", self.queue)
    }
}

impl StreamCursor {
    /// Creates a cursor charging `work` units per token first touched.
    pub fn new(queue: Arc<TokenQueue>, work: Work) -> StreamCursor {
        StreamCursor {
            queue,
            work,
            high_water: Mutex::new(0),
        }
    }
}

impl TokenSource for StreamCursor {
    fn get(&self, i: usize) -> Option<Token> {
        let t = self.queue.get_blocking(i);
        if t.is_some() {
            let mut hw = self.high_water.lock();
            if i >= *hw {
                let delta = (i + 1 - *hw) as u64;
                *hw = i + 1;
                drop(hw);
                self.queue.env.charge(self.work, delta);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_sched::run_threaded;
    use ccm2_sched::task::{TaskDesc, TaskKind, WaitSet};
    use ccm2_support::source::{FileId, Span};
    use ccm2_syntax::token::TokenKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tok(i: u32) -> Token {
        Token::new(TokenKind::Int(i as i64), Span::new(i, i + 1), FileId(0))
    }

    #[test]
    fn producer_consumer_through_barriers() {
        let consumed = Arc::new(AtomicUsize::new(0));
        let n_tokens = 3 * BLOCK_SIZE + 7;
        run_threaded(2, |sup| {
            let env: Arc<dyn ExecEnv> = Arc::clone(sup) as Arc<dyn ExecEnv>;
            let q = TokenQueue::new(env);
            let q_prod = Arc::clone(&q);
            let mut producer = TaskDesc::new(
                "lexor",
                TaskKind::Lexor,
                Box::new(move || {
                    for i in 0..n_tokens {
                        q_prod.push(tok(i as u32));
                    }
                    q_prod.close();
                }),
            );
            producer.signals_barriers = true;
            sup.spawn(producer);
            let q_cons = Arc::clone(&q);
            let done = Arc::clone(&consumed);
            let mut consumer = TaskDesc::new(
                "parser",
                TaskKind::ModuleParse,
                Box::new(move || {
                    let mut i = 0;
                    while q_cons.get_blocking(i).is_some() {
                        i += 1;
                    }
                    done.store(i, Ordering::Relaxed);
                }),
            );
            consumer.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: false,
                any_barrier: true,
            };
            sup.spawn(consumer);
        });
        assert_eq!(consumed.load(Ordering::Relaxed), n_tokens);
    }

    #[test]
    fn try_get_reports_waiting_event() {
        // Outside any scheduler: exercise the state machine directly with
        // a throwaway threaded env that we only use for event allocation.
        run_threaded(1, |sup| {
            let env: Arc<dyn ExecEnv> = Arc::clone(sup) as Arc<dyn ExecEnv>;
            let q = TokenQueue::new(env);
            assert!(q.try_get(0).is_err(), "nothing sealed yet");
            for i in 0..BLOCK_SIZE {
                q.push(tok(i as u32));
            }
            assert_eq!(
                q.try_get(0).expect("sealed").map(|t| t.kind),
                Some(TokenKind::Int(0))
            );
            assert!(q.try_get(BLOCK_SIZE).is_err(), "second block not sealed");
            q.push(tok(99));
            q.close();
            assert!(q.is_closed());
            assert_eq!(
                q.try_get(BLOCK_SIZE)
                    .expect("sealed by close")
                    .map(|t| t.kind),
                Some(TokenKind::Int(99))
            );
            assert_eq!(q.try_get(BLOCK_SIZE + 1), Ok(None), "past the end");
            assert_eq!(q.len(), BLOCK_SIZE + 1);
        });
    }

    #[test]
    fn cursor_charges_per_token() {
        let report = run_threaded(1, |sup| {
            let env: Arc<dyn ExecEnv> = Arc::clone(sup) as Arc<dyn ExecEnv>;
            let q = TokenQueue::new(env);
            for i in 0..10 {
                q.push(tok(i));
            }
            q.close();
            let q2 = Arc::clone(&q);
            sup.spawn(TaskDesc::new(
                "reader",
                TaskKind::ModuleParse,
                Box::new(move || {
                    let cursor = StreamCursor::new(q2, Work::Parse);
                    // Read some tokens twice: charges must count each
                    // token once.
                    for i in 0..10 {
                        let _ = cursor.get(i);
                        let _ = cursor.get(i / 2);
                    }
                }),
            ));
        });
        assert_eq!(report.charges[Work::Parse as usize], 10);
    }
}
