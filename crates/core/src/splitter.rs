//! The Splitter task: early source splitting (paper §2.1, §3).
//!
//! A finite-state recognizer over the main module's token stream. It
//! relies on reserved words determining program structure: by balancing
//! the `END`-consuming openers it can find where each `PROCEDURE …
//! END Name ;` begins and ends *without parsing*. For every procedure it
//! discovers (at any nesting depth) it:
//!
//! 1. creates a new stream via the [`StreamFactory`] (which pre-creates
//!    the procedure's scope and schedules its tasks);
//! 2. copies the heading tokens to **both** the enclosing stream and the
//!    new stream (the enclosing scope must process the heading — §2.4);
//! 3. diverts the body tokens to the new stream only, leaving a
//!    [`TokenKind::ProcStub`] marker in the enclosing stream;
//! 4. recognizes the closing `END Name ;` by depth matching.
//!
//! The "small amount of token stream lookahead" the paper mentions (§2.1)
//! resolves `PROCEDURE` used as a *type* (`TYPE F = PROCEDURE(…)`):
//! a procedure declaration is recognized only when an identifier follows.

use std::sync::Arc;

use ccm2_support::ids::{ScopeId, StreamId};
use ccm2_support::intern::Symbol;
use ccm2_support::source::{FileId, Span};
use ccm2_syntax::token::{Token, TokenKind};

use crate::queue::TokenQueue;

/// Driver-side factory the splitter calls when it discovers structure.
pub trait StreamFactory: Send + Sync {
    /// The splitter read the module header: create the main module scope.
    fn main_module_started(&self, name: Symbol, file: FileId) -> ScopeId;
    /// The splitter found `PROCEDURE name` nested in `parent` scope:
    /// create the procedure's stream (scope, queue, tasks).
    fn proc_stream(
        &self,
        name: Symbol,
        file: FileId,
        parent: ScopeId,
    ) -> (StreamId, Arc<TokenQueue>);
    /// The scope created for `stream` (needed to parent nested
    /// procedures).
    fn scope_for(&self, stream: StreamId) -> Option<ScopeId>;
    /// The splitter finished carving `stream` out of the main module's
    /// text: `heading` covers `PROCEDURE … ;` and `full` the whole
    /// declaration through `END Name ;`. Called once per stream, before
    /// [`StreamFactory::split_eof`]. Default: ignore.
    fn stream_carved(&self, _stream: StreamId, _heading: Span, _full: Span) {}
    /// All streams have been carved and reported; the main stream is
    /// still open. Incremental drivers use this to decide hit/miss per
    /// stream before any deferred per-procedure work starts. Default:
    /// ignore.
    fn split_eof(&self) {}
}

/// A token source the splitter reads from (blocking).
pub trait SplitInput {
    /// The `i`-th token, blocking until produced; `None` at end of stream.
    fn get(&self, i: usize) -> Option<Token>;
}

impl SplitInput for crate::queue::StreamCursor {
    fn get(&self, i: usize) -> Option<Token> {
        ccm2_syntax::parser::TokenSource::get(self, i)
    }
}

impl SplitInput for Vec<Token> {
    fn get(&self, i: usize) -> Option<Token> {
        self.as_slice().get(i).copied()
    }
}

struct Frame {
    sink: Arc<TokenQueue>,
    scope: Option<ScopeId>,
    /// Unclosed END-consuming openers inside this frame.
    depth: i64,
    /// Frames above the bottom one are procedure streams (closed when
    /// their END arrives).
    is_proc: bool,
    /// The stream this frame feeds (`None` for the main frame).
    stream: Option<StreamId>,
    /// Source range of `PROCEDURE … ;` for proc frames.
    heading: Span,
    /// Grows to cover every token routed into this frame.
    hi: u32,
}

impl Frame {
    /// Report the carved extent to the factory, then close the sink.
    fn carve_and_close(self, factory: &dyn StreamFactory) {
        if let Some(stream) = self.stream {
            let full = Span::new(self.heading.lo, self.hi.max(self.heading.hi));
            factory.stream_carved(stream, self.heading, full);
        }
        self.sink.close();
    }
}

/// Statistics about one splitter run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SplitReport {
    /// Number of procedure streams created.
    pub procedures: usize,
    /// Tokens processed.
    pub tokens: usize,
}

/// Runs the splitter: consumes `input`, routes tokens to `main_out` and
/// to procedure streams created through `factory`. Closes every stream it
/// opened (and `main_out`) before returning.
pub fn run_splitter(
    input: &dyn SplitInput,
    main_out: Arc<TokenQueue>,
    factory: &dyn StreamFactory,
) -> SplitReport {
    let mut report = SplitReport::default();
    let mut stack: Vec<Frame> = vec![Frame {
        sink: main_out,
        scope: None,
        depth: 0,
        is_proc: false,
        stream: None,
        heading: Span::default(),
        hi: 0,
    }];
    let mut pos = 0usize;
    let next = |pos: &mut usize| -> Option<Token> {
        let t = input.get(*pos);
        if t.is_some() {
            *pos += 1;
        }
        t
    };

    while let Some(t) = next(&mut pos) {
        report.tokens += 1;
        let top = stack.last_mut().expect("bottom frame always present");
        top.hi = top.hi.max(t.span.hi);
        match t.kind {
            TokenKind::Module => {
                top.depth += 1;
                top.sink.push(t);
                // The module name follows (possibly after nothing at all
                // in malformed input).
                if let Some(name_tok) = input.get(pos) {
                    if let TokenKind::Ident(name) = name_tok.kind {
                        if top.scope.is_none() && stack.len() == 1 {
                            // Create the scope BEFORE forwarding the name
                            // token, so downstream tasks always find it.
                            let scope = factory.main_module_started(name, name_tok.file);
                            stack.last_mut().expect("frame").scope = Some(scope);
                        }
                    }
                }
            }
            k if k.opens_end_block() => {
                top.depth += 1;
                top.sink.push(t);
            }
            TokenKind::End => {
                top.depth -= 1;
                if top.is_proc && top.depth < 0 {
                    // This END closes the current procedure stream:
                    // `END Name ;` goes to the procedure stream, which is
                    // then complete.
                    top.sink.push(t);
                    let (copied, tail_hi) = copy_end_name(input, &mut pos, &top.sink);
                    report.tokens += copied;
                    let mut frame = stack.pop().expect("proc frame");
                    frame.hi = frame.hi.max(tail_hi);
                    frame.carve_and_close(factory);
                } else {
                    top.sink.push(t);
                }
            }
            TokenKind::Procedure => {
                // Lookahead: declaration only if an identifier follows.
                let Some(next_tok) = input.get(pos) else {
                    top.sink.push(t);
                    continue;
                };
                let TokenKind::Ident(name) = next_tok.kind else {
                    // Procedure *type* — plain pass-through.
                    top.sink.push(t);
                    continue;
                };
                let Some(parent_scope) = top.scope else {
                    // PROCEDURE before the module header: malformed; let
                    // the parser report it.
                    top.sink.push(t);
                    continue;
                };
                report.procedures += 1;
                let (stream, proc_q) = factory.proc_stream(name, next_tok.file, parent_scope);
                // Heading: `PROCEDURE Name … ;` (first `;` at paren depth
                // 0) — copied to both the enclosing stream and the new
                // one.
                let mut heading = vec![t];
                let mut paren_depth = 0i64;
                while let Some(ht) = next(&mut pos) {
                    report.tokens += 1;
                    heading.push(ht);
                    match ht.kind {
                        TokenKind::LParen => paren_depth += 1,
                        TokenKind::RParen => paren_depth -= 1,
                        TokenKind::Semi if paren_depth <= 0 => break,
                        _ => {}
                    }
                }
                let top = stack.last_mut().expect("frame");
                for &ht in &heading {
                    top.sink.push(ht);
                }
                // Stub replaces the body in the enclosing stream (§3:
                // "stripped of all embedded streams").
                let stub_span = heading.last().map(|h| h.span).unwrap_or_default();
                let stub_file = heading.last().map(|h| h.file).unwrap_or(FileId(0));
                top.sink.push(Token::new(
                    TokenKind::ProcStub(stream),
                    stub_span,
                    stub_file,
                ));
                top.sink
                    .push(Token::new(TokenKind::Semi, stub_span, stub_file));
                // The new stream gets the heading then its body tokens.
                proc_q.extend(heading.iter().copied());
                let child_scope = factory.scope_for(stream);
                let heading_span = Span::new(
                    t.span.lo,
                    heading.last().map(|h| h.span.hi).unwrap_or(t.span.hi),
                );
                stack.push(Frame {
                    sink: proc_q,
                    scope: child_scope,
                    depth: 0,
                    is_proc: true,
                    stream: Some(stream),
                    heading: heading_span,
                    hi: heading_span.hi,
                });
            }
            _ => top.sink.push(t),
        }
    }
    // Close every procedure stream (unterminated ones included — their
    // parsers will report the malformed input) and report its carve, let
    // the factory act on the complete carve set, then close the main
    // stream last so hit/miss decisions exist before the module parser
    // can finish.
    while stack.len() > 1 {
        let frame = stack.pop().expect("proc frame");
        frame.carve_and_close(factory);
    }
    factory.split_eof();
    if let Some(main) = stack.pop() {
        main.sink.close();
    }
    report
}

/// After the procedure's END: copy the closing name and semicolon to the
/// procedure stream. Returns tokens consumed and the highest byte offset
/// copied (so the carve extends through `END Name ;`).
fn copy_end_name(input: &dyn SplitInput, pos: &mut usize, sink: &Arc<TokenQueue>) -> (usize, u32) {
    let mut copied = 0;
    let mut hi = 0;
    // `END` was already pushed; expect Ident then Semi (copy whatever is
    // there so the stream parser can report precise errors).
    for _ in 0..2 {
        let Some(t) = input.get(*pos) else { break };
        let stop = !matches!(t.kind, TokenKind::Ident(_) | TokenKind::Semi);
        if stop {
            break;
        }
        *pos += 1;
        copied += 1;
        hi = hi.max(t.span.hi);
        let is_semi = t.kind == TokenKind::Semi;
        sink.push(t);
        if is_semi {
            break;
        }
    }
    (copied, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_sched::{run_threaded, ExecEnv};
    use ccm2_support::intern::Interner;
    use ccm2_support::source::SourceMap;
    use ccm2_support::DiagnosticSink;
    use ccm2_syntax::lexer::lex_file;
    use parking_lot::Mutex;

    type StreamRecord = (StreamId, Symbol, ScopeId, Arc<TokenQueue>);

    struct TestFactory {
        env: Arc<dyn ExecEnv>,
        tables: Arc<ccm2_sema::symtab::SymbolTables>,
        streams: Mutex<Vec<StreamRecord>>,
        scopes: Mutex<std::collections::HashMap<StreamId, ScopeId>>,
        next: std::sync::atomic::AtomicU32,
    }

    impl StreamFactory for TestFactory {
        fn main_module_started(&self, name: Symbol, file: FileId) -> ScopeId {
            self.tables
                .new_scope(ccm2_sema::symtab::ScopeKind::MainModule, name, None, file)
        }
        fn proc_stream(
            &self,
            name: Symbol,
            file: FileId,
            parent: ScopeId,
        ) -> (StreamId, Arc<TokenQueue>) {
            let id = StreamId(self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
            let scope = self.tables.new_scope(
                ccm2_sema::symtab::ScopeKind::Procedure,
                name,
                Some(parent),
                file,
            );
            let q = TokenQueue::new(Arc::clone(&self.env));
            self.streams.lock().push((id, name, scope, Arc::clone(&q)));
            self.scopes.lock().insert(id, scope);
            (id, q)
        }
        fn scope_for(&self, stream: StreamId) -> Option<ScopeId> {
            self.scopes.lock().get(&stream).copied()
        }
    }

    type SplitResult = (Vec<TokenKind>, Vec<(String, Vec<TokenKind>)>);

    fn split_source(src: &str) -> SplitResult {
        let interner = Arc::new(Interner::new());
        let out: Arc<Mutex<SplitResult>> = Arc::new(Mutex::new((vec![], vec![])));
        let out2 = Arc::clone(&out);
        let interner2 = Arc::clone(&interner);
        let src = src.to_string();
        run_threaded(1, move |sup| {
            let env: Arc<dyn ExecEnv> = Arc::clone(sup) as Arc<dyn ExecEnv>;
            let map = SourceMap::new();
            let file = map.add("M.mod", src.clone());
            let sink = DiagnosticSink::new();
            let tokens = lex_file(&file, &interner2, &sink);
            let tables = Arc::new(ccm2_sema::symtab::SymbolTables::new());
            let factory = Arc::new(TestFactory {
                env: Arc::clone(&env),
                tables,
                streams: Mutex::new(vec![]),
                scopes: Mutex::new(Default::default()),
                next: std::sync::atomic::AtomicU32::new(0),
            });
            let main_q = TokenQueue::new(Arc::clone(&env));
            let fac2 = Arc::clone(&factory);
            let mq2 = Arc::clone(&main_q);
            sup.spawn(ccm2_sched::task::TaskDesc::new(
                "split",
                ccm2_sched::TaskKind::Splitter,
                Box::new(move || {
                    run_splitter(&tokens, mq2, fac2.as_ref());
                }),
            ));
            let out3 = Arc::clone(&out2);
            let fac3 = Arc::clone(&factory);
            let mq3 = Arc::clone(&main_q);
            let interner3 = Arc::clone(&interner2);
            let mut collect = ccm2_sched::task::TaskDesc::new(
                "collect",
                ccm2_sched::TaskKind::Merge,
                Box::new(move || {
                    let mut main = Vec::new();
                    let mut i = 0;
                    while let Some(t) = mq3.get_blocking(i) {
                        main.push(t.kind);
                        i += 1;
                    }
                    let mut procs = Vec::new();
                    for (_, name, _, q) in fac3.streams.lock().iter() {
                        let mut toks = Vec::new();
                        let mut i = 0;
                        while let Some(t) = q.get_blocking(i) {
                            toks.push(t.kind);
                            i += 1;
                        }
                        procs.push((interner3.resolve(*name), toks));
                    }
                    *out3.lock() = (main, procs);
                }),
            );
            collect.may_wait = ccm2_sched::WaitSet {
                events: vec![],
                all_def_scopes: false,
                any_barrier: true,
            };
            sup.spawn(collect);
        });
        let r = out.lock().clone();
        r
    }

    #[test]
    fn no_procedures_passes_through() {
        let (main, procs) = split_source("MODULE M; VAR x : INTEGER; BEGIN x := 1 END M.");
        assert!(procs.is_empty());
        assert_eq!(main.len(), 15);
        assert!(!main.iter().any(|k| matches!(k, TokenKind::ProcStub(_))));
    }

    #[test]
    fn procedure_extracted_with_stub() {
        let (main, procs) =
            split_source("MODULE M; PROCEDURE P(a : INTEGER); BEGIN a := 1 END P; BEGIN END M.");
        assert_eq!(procs.len(), 1);
        let (name, toks) = &procs[0];
        assert_eq!(name, "P");
        // Proc stream: PROCEDURE P ( a : INTEGER ) ; BEGIN a := 1 END P ;
        assert_eq!(toks[0], TokenKind::Procedure);
        assert_eq!(*toks.last().expect("tokens"), TokenKind::Semi);
        assert!(toks.contains(&TokenKind::Begin));
        // Main stream: heading + stub, no BEGIN from the proc body before
        // the module body.
        assert!(main.iter().any(|k| matches!(k, TokenKind::ProcStub(_))));
        let assigns = main.iter().filter(|k| **k == TokenKind::Assign).count();
        assert_eq!(assigns, 0, "proc body diverted away from main stream");
        // Heading appears in both streams.
        assert!(main.contains(&TokenKind::Procedure));
    }

    #[test]
    fn nested_procedures_get_own_streams() {
        let (_, procs) = split_source(
            "MODULE M; \
             PROCEDURE Outer; \
               VAR t : INTEGER; \
               PROCEDURE Inner(k : INTEGER); BEGIN t := k END Inner; \
             BEGIN Inner(1) END Outer; \
             BEGIN END M.",
        );
        assert_eq!(procs.len(), 2);
        let outer = procs.iter().find(|(n, _)| n == "Outer").expect("outer");
        let inner = procs.iter().find(|(n, _)| n == "Inner").expect("inner");
        // Outer's stream contains Inner's heading and a stub, not its body.
        assert!(outer.1.iter().any(|k| matches!(k, TokenKind::ProcStub(_))));
        assert!(inner.1.contains(&TokenKind::Begin));
        // Inner body went only to inner's stream.
        let outer_assigns = outer.1.iter().filter(|k| **k == TokenKind::Assign).count();
        assert_eq!(outer_assigns, 0);
    }

    #[test]
    fn procedure_type_not_split() {
        let (main, procs) = split_source(
            "MODULE M; TYPE F = PROCEDURE (INTEGER) : INTEGER; VAR f : F; BEGIN END M.",
        );
        assert!(procs.is_empty(), "PROCEDURE as a type must not split");
        assert!(main.contains(&TokenKind::Procedure));
    }

    #[test]
    fn end_matching_through_control_flow() {
        let (_, procs) = split_source(
            "MODULE M; \
             PROCEDURE P; \
             BEGIN \
               IF TRUE THEN \
                 WHILE FALSE DO \
                   LOOP EXIT END \
                 END \
               END; \
               CASE 1 OF 1 : END; \
               LOCK m DO END; \
               TRY EXCEPT END \
             END P; \
             BEGIN END M.",
        );
        assert_eq!(procs.len(), 1);
        let toks = &procs[0].1;
        // Final three tokens are END P ;
        let n = toks.len();
        assert_eq!(toks[n - 3], TokenKind::End);
        assert!(matches!(toks[n - 2], TokenKind::Ident(_)));
        assert_eq!(toks[n - 1], TokenKind::Semi);
    }

    #[test]
    fn record_ends_balanced_in_declarations() {
        let (_, procs) = split_source(
            "MODULE M; \
             PROCEDURE P; \
               TYPE R = RECORD x : INTEGER END; \
               VAR r : R; \
             BEGIN r.x := 1 END P; \
             BEGIN END M.",
        );
        assert_eq!(procs.len(), 1);
        assert!(procs[0].1.contains(&TokenKind::Record));
    }

    #[test]
    fn procedure_with_proc_type_param_splits_once() {
        let (_, procs) = split_source(
            "MODULE M; \
             PROCEDURE Apply(f : PROCEDURE(INTEGER); x : INTEGER); \
             BEGIN f(x) END Apply; \
             BEGIN END M.",
        );
        assert_eq!(procs.len(), 1, "inner PROCEDURE is a type, not a split");
        assert_eq!(procs[0].0, "Apply");
    }
}
