//! Splitter conservation: expanding every procedure stub back into the
//! main stream must reproduce the original token sequence exactly.
//!
//! The splitter (paper §2.1/§3) copies each procedure heading to both the
//! enclosing stream and the procedure stream, replaces the body with a
//! stub in the enclosing stream, and diverts the body tokens. Inverting
//! that transformation — replace `ProcStub ;` with the procedure stream's
//! tokens minus its duplicated heading, recursively — must be the
//! identity on token kinds. This pins the FSM's END-matching, heading
//! scanning and lookahead against the real lexer on arbitrary generated
//! programs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ccm2::queue::TokenQueue;
use ccm2::splitter::{run_splitter, StreamFactory};
use ccm2_sched::{run_threaded, ExecEnv, TaskDesc, TaskKind, WaitSet};
use ccm2_sema::symtab::{ScopeKind, SymbolTables};
use ccm2_support::ids::{ScopeId, StreamId};
use ccm2_support::intern::{Interner, Symbol};
use ccm2_support::source::{FileId, SourceMap};
use ccm2_support::DiagnosticSink;
use ccm2_syntax::lexer::lex_file;
use ccm2_syntax::token::TokenKind;
use ccm2_workload::{generate, GenParams};

struct CollectFactory {
    env: Arc<dyn ExecEnv>,
    tables: Arc<SymbolTables>,
    queues: Mutex<HashMap<StreamId, Arc<TokenQueue>>>,
    scopes: Mutex<HashMap<StreamId, ScopeId>>,
    next: AtomicU32,
}

impl StreamFactory for CollectFactory {
    fn main_module_started(&self, name: Symbol, file: FileId) -> ScopeId {
        self.tables
            .new_scope(ScopeKind::MainModule, name, None, file)
    }
    fn proc_stream(
        &self,
        name: Symbol,
        file: FileId,
        parent: ScopeId,
    ) -> (StreamId, Arc<TokenQueue>) {
        let id = StreamId(self.next.fetch_add(1, Ordering::Relaxed));
        let scope = self
            .tables
            .new_scope(ScopeKind::Procedure, name, Some(parent), file);
        let q = TokenQueue::new(Arc::clone(&self.env));
        self.queues.lock().insert(id, Arc::clone(&q));
        self.scopes.lock().insert(id, scope);
        (id, q)
    }
    fn scope_for(&self, stream: StreamId) -> Option<ScopeId> {
        self.scopes.lock().get(&stream).copied()
    }
}

fn drain(q: &TokenQueue) -> Vec<TokenKind> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(t) = q.get_blocking(i) {
        out.push(t.kind);
        i += 1;
    }
    out
}

type SplitStreams = (
    Vec<TokenKind>,
    HashMap<StreamId, Vec<TokenKind>>,
    Vec<TokenKind>,
);

/// Splits `src`, returning (main stream kinds, proc stream kinds by id).
fn split(src: &str) -> SplitStreams {
    let interner = Arc::new(Interner::new());
    let result: Arc<Mutex<SplitStreams>> = Arc::new(Mutex::new((vec![], HashMap::new(), vec![])));
    let r2 = Arc::clone(&result);
    let src = src.to_string();
    run_threaded(1, move |sup| {
        let env: Arc<dyn ExecEnv> = Arc::clone(sup) as Arc<dyn ExecEnv>;
        let map = SourceMap::new();
        let file = map.add("M.mod", src.clone());
        let sink = DiagnosticSink::new();
        let tokens = lex_file(&file, &interner, &sink);
        assert!(!sink.has_errors());
        let original: Vec<TokenKind> = tokens.iter().map(|t| t.kind).collect();
        let factory = Arc::new(CollectFactory {
            env: Arc::clone(&env),
            tables: Arc::new(SymbolTables::new()),
            queues: Mutex::new(HashMap::new()),
            scopes: Mutex::new(HashMap::new()),
            next: AtomicU32::new(0),
        });
        let main_q = TokenQueue::new(Arc::clone(&env));
        let fac = Arc::clone(&factory);
        let mq = Arc::clone(&main_q);
        sup.spawn(TaskDesc::new(
            "split",
            TaskKind::Splitter,
            Box::new(move || {
                run_splitter(&tokens, mq, fac.as_ref());
            }),
        ));
        let r3 = Arc::clone(&r2);
        let fac = Arc::clone(&factory);
        let mq = Arc::clone(&main_q);
        let mut collect = TaskDesc::new(
            "collect",
            TaskKind::Merge,
            Box::new(move || {
                let main = drain(&mq);
                let procs: HashMap<StreamId, Vec<TokenKind>> = fac
                    .queues
                    .lock()
                    .iter()
                    .map(|(&id, q)| (id, drain(q)))
                    .collect();
                *r3.lock() = (main, procs, original);
            }),
        );
        collect.may_wait = WaitSet {
            events: vec![],
            all_def_scopes: false,
            any_barrier: true,
        };
        sup.spawn(collect);
    });
    let r = result.lock().clone();
    r
}

/// The heading length of a procedure stream: tokens up to and including
/// the first `;` at paren depth 0 (the rule the splitter itself uses).
fn heading_len(stream: &[TokenKind]) -> usize {
    let mut depth = 0i64;
    for (ix, k) in stream.iter().enumerate() {
        match k {
            TokenKind::LParen => depth += 1,
            TokenKind::RParen => depth -= 1,
            TokenKind::Semi if depth <= 0 => return ix + 1,
            _ => {}
        }
    }
    stream.len()
}

/// Recursively expands stubs in `stream`, splicing procedure bodies back.
fn expand(stream: &[TokenKind], procs: &HashMap<StreamId, Vec<TokenKind>>) -> Vec<TokenKind> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < stream.len() {
        match stream[i] {
            TokenKind::ProcStub(id) => {
                let child = &procs[&id];
                let h = heading_len(child);
                let body = expand(&child[h..], procs);
                out.extend(body);
                // Skip the stub and its synthesized `;`.
                i += 1;
                if stream.get(i) == Some(&TokenKind::Semi) {
                    i += 1;
                }
            }
            k => {
                out.push(k);
                i += 1;
            }
        }
    }
    out
}

fn assert_reconstructs(src: &str) {
    let (main, procs, original) = split(src);
    let rebuilt = expand(&main, &procs);
    assert_eq!(
        rebuilt.len(),
        original.len(),
        "token count mismatch for:\n{src}"
    );
    assert_eq!(rebuilt, original, "token sequence mismatch for:\n{src}");
}

#[test]
fn reconstructs_simple_module() {
    assert_reconstructs("MODULE M; VAR x : INTEGER; BEGIN x := 1 END M.");
}

#[test]
fn reconstructs_module_with_procedures() {
    assert_reconstructs(
        "MODULE M; \
         PROCEDURE A(x : INTEGER) : INTEGER; BEGIN RETURN x END A; \
         PROCEDURE B; VAR t : INTEGER; BEGIN t := A(1) END B; \
         BEGIN B END M.",
    );
}

#[test]
fn reconstructs_nested_procedures() {
    assert_reconstructs(
        "MODULE M; \
         PROCEDURE Outer(a : INTEGER); \
           VAR t : INTEGER; \
           PROCEDURE Mid(b : INTEGER); \
             PROCEDURE Leaf; BEGIN t := a END Leaf; \
           BEGIN Leaf END Mid; \
         BEGIN Mid(a) END Outer; \
         BEGIN END M.",
    );
}

#[test]
fn reconstructs_control_flow_heavy_bodies() {
    assert_reconstructs(
        "MODULE M; \
         PROCEDURE P; \
           TYPE R = RECORD x : INTEGER END; \
           VAR r : R; i : INTEGER; \
         BEGIN \
           IF i > 0 THEN \
             WHILE i > 0 DO CASE i OF 1 : EXIT ELSE DEC(i) END END \
           END; \
           LOOP TRY i := 1 EXCEPT i := 2 END; EXIT END; \
           WITH r DO x := 1 END \
         END P; \
         BEGIN END M.",
    );
}

#[test]
fn reconstructs_procedure_types_without_splitting() {
    assert_reconstructs(
        "MODULE M; \
         TYPE F = PROCEDURE (INTEGER) : INTEGER; \
         VAR f : F; \
         PROCEDURE Use(g : PROCEDURE(INTEGER); x : INTEGER); BEGIN g(x) END Use; \
         BEGIN END M.",
    );
}

#[test]
fn reconstructs_generated_modules() {
    for seed in 0..8u64 {
        let m = generate(&GenParams {
            name: format!("Split{seed}"),
            seed,
            procedures: 8,
            interfaces: 0,
            import_depth: 0,
            stmts_per_proc: 14,
            nested_ratio: 0.3,
            lint_seeds: false,
            fault_seeds: false,
            lock_seeds: false,
        });
        assert_reconstructs(&m.source);
    }
}

#[test]
fn reconstructs_large_generated_module() {
    let m = generate(&GenParams {
        name: "SplitBig".into(),
        seed: 4242,
        procedures: 60,
        interfaces: 0,
        import_depth: 0,
        stmts_per_proc: 25,
        nested_ratio: 0.2,
        lint_seeds: false,
        fault_seeds: false,
        lock_seeds: false,
    });
    assert_reconstructs(&m.source);
}
