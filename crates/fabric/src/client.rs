//! The fleet's client side: router-failover retry with back-off hints.
//!
//! A multi-router fleet (see `crate::router`) only survives router loss
//! if *somebody* moves the traffic: a [`FabricClient`] holds every
//! router of the fleet and retries a [`FabricResponse::Retry`] against
//! the next one, honoring the `after_ms` back-off hint the shard (or
//! router) attached. The client is deliberately dumb about roles — it
//! neither knows nor cares which router currently holds the eviction
//! lease, because *serving* needs no authority: any live router can
//! route and dispatch. It only needs a live one, and the rotation plus
//! the [`FabricRouter::is_shutdown`] check find it.
//!
//! The retry loop is the fleet-level mirror of the admission-retry
//! budget inside one service (`ccm2_serve::CompileService::serve_batch_report`):
//! bounded attempts, hint-driven back-off, and an honest
//! [`FabricResponse::Retry`] when the budget is gone.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ccm2_serve::CompileRequest;
use parking_lot::Mutex;

use crate::router::{FabricResponse, FabricRouter};

/// Attempts before the client gives up and surfaces the last `Retry`.
pub const CLIENT_MAX_ATTEMPTS: u32 = 8;

/// Cap on one honored back-off hint; a shard drowning in queue depth
/// may suggest more, but a client that sleeps unboundedly turns a shed
/// into a hang.
pub const CLIENT_MAX_SLEEP_MS: u64 = 16;

/// Client-side retry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientRetryStats {
    /// `serve` calls.
    pub serves: u64,
    /// Calls that ended in a [`FabricResponse::Done`].
    pub served: u64,
    /// `Retry` answers absorbed by the loop (each costs one attempt).
    pub retries: u64,
    /// Times the loop moved to a different router (shutdown skip or
    /// post-`Retry` rotation).
    pub router_rotations: u64,
    /// Milliseconds of back-off hints honored (after the per-hint cap).
    pub hint_ms_honored: u64,
    /// Calls that exhausted the attempt budget.
    pub exhausted: u64,
}

/// See the module docs.
pub struct FabricClient {
    routers: Vec<Arc<FabricRouter>>,
    preferred: AtomicUsize,
    max_attempts: u32,
    stats: Mutex<ClientRetryStats>,
}

impl FabricClient {
    /// A client over `routers` (at least one), preferring the first.
    pub fn new(routers: Vec<Arc<FabricRouter>>) -> FabricClient {
        assert!(!routers.is_empty(), "a client needs at least one router");
        FabricClient {
            routers,
            preferred: AtomicUsize::new(0),
            max_attempts: CLIENT_MAX_ATTEMPTS,
            stats: Mutex::new(ClientRetryStats::default()),
        }
    }

    /// Overrides the attempt budget (clamped to at least 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> FabricClient {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Client counters.
    pub fn stats(&self) -> ClientRetryStats {
        *self.stats.lock()
    }

    /// The router index the next serve will try first.
    pub fn preferred(&self) -> usize {
        self.preferred.load(Ordering::Relaxed) % self.routers.len()
    }

    /// Picks the preferred router, skipping shut-down ones; sticky
    /// across calls so a healthy fleet keeps one router's caches hot.
    fn pick(&self) -> usize {
        let n = self.routers.len();
        let start = self.preferred.load(Ordering::Relaxed) % n;
        for off in 0..n {
            let i = (start + off) % n;
            if !self.routers[i].is_shutdown() {
                if off != 0 {
                    self.preferred.store(i, Ordering::Relaxed);
                    self.stats.lock().router_rotations += 1;
                }
                return i;
            }
        }
        start // every router down: let the Retry surface
    }

    /// Rotates away from router `i` after a `Retry` from it.
    fn rotate_from(&self, i: usize) {
        let n = self.routers.len();
        if n > 1 {
            self.preferred.store((i + 1) % n, Ordering::Relaxed);
            self.stats.lock().router_rotations += 1;
        }
    }

    /// Serves one request through the fleet, failing over across
    /// routers and honoring back-off hints, until served or the
    /// attempt budget is gone.
    pub fn serve(&self, req: &CompileRequest) -> FabricResponse {
        self.stats.lock().serves += 1;
        let mut last = FabricResponse::Retry {
            after_ms: crate::router::DEFAULT_RETRY_AFTER_MS,
        };
        for attempt in 0..self.max_attempts {
            let i = self.pick();
            match self.routers[i].serve(req) {
                FabricResponse::Done(out) => {
                    self.stats.lock().served += 1;
                    return FabricResponse::Done(out);
                }
                FabricResponse::Retry { after_ms } => {
                    self.stats.lock().retries += 1;
                    last = FabricResponse::Retry { after_ms };
                    self.rotate_from(i);
                    if attempt + 1 < self.max_attempts {
                        let sleep = after_ms.min(CLIENT_MAX_SLEEP_MS);
                        self.stats.lock().hint_ms_honored += sleep;
                        if sleep > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(sleep));
                        }
                    }
                }
            }
        }
        self.stats.lock().exhausted += 1;
        last
    }

    /// Serves a whole batch concurrently (one thread per request, the
    /// drill path) and returns responses in order.
    pub fn serve_batch(&self, requests: &[CompileRequest]) -> Vec<FabricResponse> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|req| scope.spawn(move || self.serve(req)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client serve thread panicked"))
                .collect()
        })
    }
}
