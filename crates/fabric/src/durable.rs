//! `CCM2RLOG` — durable replica logs: the router-crash half of the
//! fabric's recovery plane.
//!
//! A shard's per-origin [`ReplicaLog`](crate::ReplicaLog)s are pure
//! potential energy: they only matter at failover, which is exactly
//! when the process holding them may itself have just restarted. This
//! module persists the full replica map with the same checksummed
//! temp-file + atomic-rename discipline as the `CCM2SNAP` store
//! snapshots, so a shard (or the whole fleet) can come back up holding
//! every delta op it had parked for its peers — a router kill between
//! ship and absorb loses zero ops.
//!
//! # Image format (version 1)
//!
//! ```text
//! magic      8 bytes   b"CCM2RLOG"
//! version    u32 LE    1
//! count      u32 LE    number of per-origin logs
//! log*                 (count times)
//!   origin     u32 LE    shard the ops came from
//!   last_seq   u64 LE    origin sequence after the last op
//!   gaps       u64 LE    tolerated sequence gaps observed
//!   gapped     u8        log has lost ops; absorb must not replay it
//!   batch      u32 LE length + bytes   `ccm2_incr::encode_delta(0, ops)`
//! checksum   hi u64 LE, lo u64 LE   Fp128 of everything above
//! ```
//!
//! Images are named `rlog-{seq:08}.img`; loading walks them
//! newest-first and quarantines (into `quarantine/`) any that fail
//! validation, falling back to the next older image — identical to the
//! snapshot protocol. After a successful save, images older than the
//! previous one are pruned: the logs are rewritten whole on every
//! mutation, so only the newest image (plus one fallback) carries
//! information.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ccm2_incr::{decode_delta, encode_delta};
use ccm2_support::hash::{Fp128, StableHasher};

use crate::shard::ReplicaLog;

const MAGIC: &[u8; 8] = b"CCM2RLOG";
/// Bump on any change to the persisted replica-log encoding; ci.sh
/// greps for a matching `rlog_version_{N}_mismatch_quarantined` test.
pub const RLOG_FORMAT_VERSION: u32 = 1;

/// A directory of replica-log images plus their quarantine.
#[derive(Debug)]
pub struct ReplicaLogStore {
    dir: PathBuf,
}

/// What [`ReplicaLogStore::load_latest`] found.
#[derive(Debug, Default)]
pub struct LoadedReplicaLogs {
    /// The newest valid image's per-origin logs; `None` when no valid
    /// image exists (fresh directory, or every image damaged).
    pub logs: Option<HashMap<u32, ReplicaLog>>,
    /// Images that failed validation and were quarantined by this call.
    pub quarantined: Vec<PathBuf>,
}

impl ReplicaLogStore {
    /// Opens (creating if needed) a replica-log directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<ReplicaLogStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ReplicaLogStore { dir })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `(sequence, path)` of every `rlog-*.img` present, ascending.
    fn images(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut v = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name
                .strip_prefix("rlog-")
                .and_then(|r| r.strip_suffix(".img"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                v.push((seq, entry.path()));
            }
        }
        v.sort();
        Ok(v)
    }

    /// Writes a new image of `logs` (crash-atomic: temp file, flush,
    /// rename) and prunes images older than the previous one.
    pub fn save(&self, logs: &HashMap<u32, ReplicaLog>) -> io::Result<PathBuf> {
        let existing = self.images()?;
        let seq = existing.last().map_or(1, |(s, _)| s + 1);
        let bytes = encode(logs);
        let path = self.dir.join(format!("rlog-{seq:08}.img"));
        let tmp = self
            .dir
            .join(format!(".rlog-{seq:08}.{}.tmp", std::process::id()));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)?;
        // Keep the new image plus one fallback; everything older is a
        // strict subset of information already superseded twice.
        for (_, old) in existing.iter().rev().skip(1) {
            let _ = fs::remove_file(old);
        }
        Ok(path)
    }

    /// Loads the newest valid image, quarantining any torn/corrupt ones
    /// encountered on the way down.
    pub fn load_latest(&self) -> io::Result<LoadedReplicaLogs> {
        let mut loaded = LoadedReplicaLogs::default();
        for (_, path) in self.images()?.into_iter().rev() {
            let bytes = fs::read(&path)?;
            if let Some(logs) = decode(&bytes) {
                loaded.logs = Some(logs);
                return Ok(loaded);
            }
            let qdir = self.dir.join("quarantine");
            fs::create_dir_all(&qdir)?;
            let dest = qdir.join(path.file_name().expect("image file name"));
            fs::rename(&path, &dest)?;
            loaded.quarantined.push(dest);
        }
        Ok(loaded)
    }

    /// Number of quarantined images currently on disk.
    pub fn quarantined_count(&self) -> usize {
        fs::read_dir(self.dir.join("quarantine"))
            .map(|rd| rd.count())
            .unwrap_or(0)
    }
}

fn encode(logs: &HashMap<u32, ReplicaLog>) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&RLOG_FORMAT_VERSION.to_le_bytes());
    // Deterministic image bytes: origins in ascending order.
    let mut origins: Vec<u32> = logs.keys().copied().collect();
    origins.sort_unstable();
    buf.extend_from_slice(&(origins.len() as u32).to_le_bytes());
    for origin in origins {
        let log = &logs[&origin];
        buf.extend_from_slice(&origin.to_le_bytes());
        buf.extend_from_slice(&log.last_seq.to_le_bytes());
        buf.extend_from_slice(&log.gaps.to_le_bytes());
        buf.push(u8::from(log.gapped));
        let batch = encode_delta(0, &log.ops);
        buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
        buf.extend_from_slice(&batch);
    }
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.hi.to_le_bytes());
    buf.extend_from_slice(&sum.lo.to_le_bytes());
    buf
}

/// Strict validation: magic, version, exact length accounting, the
/// trailer checksum, and every embedded `CCM2DELT` batch must all
/// hold; anything else is `None` and the caller quarantines the image.
fn decode(buf: &[u8]) -> Option<HashMap<u32, ReplicaLog>> {
    if buf.len() < MAGIC.len() + 4 + 4 + 16 || &buf[..MAGIC.len()] != MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 16];
    let trailer = &buf[buf.len() - 16..];
    let sum = checksum(body);
    if trailer[..8] != sum.hi.to_le_bytes() || trailer[8..] != sum.lo.to_le_bytes() {
        return None;
    }
    let mut pos = MAGIC.len();
    let version = u32::from_le_bytes(body[pos..pos + 4].try_into().ok()?);
    pos += 4;
    if version != RLOG_FORMAT_VERSION {
        return None;
    }
    let count = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?) as usize;
    pos += 4;
    let mut logs = HashMap::with_capacity(count.min(1024));
    for _ in 0..count {
        if body.len() < pos + 4 + 8 + 8 + 1 + 4 {
            return None;
        }
        let origin = u32::from_le_bytes(body[pos..pos + 4].try_into().ok()?);
        pos += 4;
        let last_seq = u64::from_le_bytes(body[pos..pos + 8].try_into().ok()?);
        pos += 8;
        let gaps = u64::from_le_bytes(body[pos..pos + 8].try_into().ok()?);
        pos += 8;
        let gapped = match body[pos] {
            0 => false,
            1 => true,
            _ => return None,
        };
        pos += 1;
        let len = u32::from_le_bytes(body[pos..pos + 4].try_into().ok()?) as usize;
        pos += 4;
        let batch = body.get(pos..pos + len)?;
        pos += len;
        let (_, ops) = decode_delta(batch)?;
        if logs
            .insert(
                origin,
                ReplicaLog {
                    last_seq,
                    ops,
                    gaps,
                    gapped,
                },
            )
            .is_some()
        {
            return None; // duplicate origin: framing bug or tampering
        }
    }
    (pos == body.len()).then_some(logs)
}

fn checksum(bytes: &[u8]) -> Fp128 {
    let mut h = StableHasher::new();
    h.write_str("ccm2-rlog/v1");
    h.write(bytes);
    h.finish()
}

// ---- CCM2MBRS: durable membership images ------------------------------

const MBRS_MAGIC: &[u8; 8] = b"CCM2MBRS";
/// Bump on any change to the persisted membership encoding; ci.sh greps
/// for a matching `mbrs_version_{N}_mismatch_quarantined` test.
pub const MBRS_FORMAT_VERSION: u32 = 1;

/// One durable membership record: the lease epoch it was written under,
/// the router that wrote it, and the ring membership at that moment.
/// This is the state a standby router mirrors and a freshly promoted
/// leader restores — the durable half of router failover, sharing the
/// `CCM2RLOG` directory discipline (crash-atomic temp+rename, Fp128
/// trailer, quarantine + newest-fallback, prune to newest+1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MembershipImage {
    /// Lease epoch the writer held.
    pub epoch: u64,
    /// The writing router's id.
    pub leader: u32,
    /// Ring members at write time, ascending.
    pub members: Vec<u32>,
}

/// A directory of membership images plus their quarantine.
#[derive(Debug)]
pub struct MembershipStore {
    dir: PathBuf,
}

/// What [`MembershipStore::load_latest`] found.
#[derive(Debug, Default)]
pub struct LoadedMembership {
    /// The newest valid image; `None` when no valid image exists.
    pub image: Option<MembershipImage>,
    /// Images that failed validation and were quarantined by this call.
    pub quarantined: Vec<PathBuf>,
}

impl MembershipStore {
    /// Opens (creating if needed) a membership directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<MembershipStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(MembershipStore { dir })
    }

    /// The image directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `(sequence, path)` of every `mbrs-*.img` present, ascending.
    fn images(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut v = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name
                .strip_prefix("mbrs-")
                .and_then(|r| r.strip_suffix(".img"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                v.push((seq, entry.path()));
            }
        }
        v.sort();
        Ok(v)
    }

    /// Writes a new membership image (crash-atomic) and prunes images
    /// older than the previous one.
    pub fn save(&self, image: &MembershipImage) -> io::Result<PathBuf> {
        let existing = self.images()?;
        let seq = existing.last().map_or(1, |(s, _)| s + 1);
        let bytes = encode_membership(image);
        let path = self.dir.join(format!("mbrs-{seq:08}.img"));
        let tmp = self
            .dir
            .join(format!(".mbrs-{seq:08}.{}.tmp", std::process::id()));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)?;
        for (_, old) in existing.iter().rev().skip(1) {
            let _ = fs::remove_file(old);
        }
        Ok(path)
    }

    /// Loads the newest valid image, quarantining torn/corrupt/skewed
    /// ones encountered on the way down.
    pub fn load_latest(&self) -> io::Result<LoadedMembership> {
        let mut loaded = LoadedMembership::default();
        for (_, path) in self.images()?.into_iter().rev() {
            let bytes = fs::read(&path)?;
            if let Some(image) = decode_membership(&bytes) {
                loaded.image = Some(image);
                return Ok(loaded);
            }
            let qdir = self.dir.join("quarantine");
            fs::create_dir_all(&qdir)?;
            let dest = qdir.join(path.file_name().expect("image file name"));
            fs::rename(&path, &dest)?;
            loaded.quarantined.push(dest);
        }
        Ok(loaded)
    }

    /// Number of quarantined images currently on disk.
    pub fn quarantined_count(&self) -> usize {
        fs::read_dir(self.dir.join("quarantine"))
            .map(|rd| rd.count())
            .unwrap_or(0)
    }
}

fn encode_membership(image: &MembershipImage) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MBRS_MAGIC);
    buf.extend_from_slice(&MBRS_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&image.epoch.to_le_bytes());
    buf.extend_from_slice(&image.leader.to_le_bytes());
    // Deterministic image bytes: members in ascending order.
    let mut members = image.members.clone();
    members.sort_unstable();
    buf.extend_from_slice(&(members.len() as u32).to_le_bytes());
    for m in members {
        buf.extend_from_slice(&m.to_le_bytes());
    }
    let sum = membership_checksum(&buf);
    buf.extend_from_slice(&sum.hi.to_le_bytes());
    buf.extend_from_slice(&sum.lo.to_le_bytes());
    buf
}

/// Strict validation, mirroring the replica-log decoder: magic,
/// version, exact length accounting and the trailer checksum.
fn decode_membership(buf: &[u8]) -> Option<MembershipImage> {
    if buf.len() < MBRS_MAGIC.len() + 4 + 8 + 4 + 4 + 16 || &buf[..MBRS_MAGIC.len()] != MBRS_MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 16];
    let trailer = &buf[buf.len() - 16..];
    let sum = membership_checksum(body);
    if trailer[..8] != sum.hi.to_le_bytes() || trailer[8..] != sum.lo.to_le_bytes() {
        return None;
    }
    let mut pos = MBRS_MAGIC.len();
    let version = u32::from_le_bytes(body[pos..pos + 4].try_into().ok()?);
    pos += 4;
    if version != MBRS_FORMAT_VERSION {
        return None;
    }
    let epoch = u64::from_le_bytes(body.get(pos..pos + 8)?.try_into().ok()?);
    pos += 8;
    let leader = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?);
    pos += 4;
    let count = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?) as usize;
    pos += 4;
    let mut members = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        members.push(u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?));
        pos += 4;
    }
    if members.windows(2).any(|w| w[0] >= w[1]) {
        return None; // unsorted or duplicated members: tampering
    }
    (pos == body.len()).then_some(MembershipImage {
        epoch,
        leader,
        members,
    })
}

fn membership_checksum(bytes: &[u8]) -> Fp128 {
    let mut h = StableHasher::new();
    h.write_str("ccm2-mbrs/v1");
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_incr::DeltaOp;

    fn fp(n: u64) -> Fp128 {
        Fp128 { hi: n, lo: !n }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ccm2-rlog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_logs() -> HashMap<u32, ReplicaLog> {
        let mut logs = HashMap::new();
        logs.insert(
            2,
            ReplicaLog {
                last_seq: 11,
                ops: vec![
                    DeltaOp::Insert {
                        fp: fp(1),
                        bytes: b"one".to_vec(),
                    },
                    DeltaOp::Evict { fp: fp(9) },
                ],
                gaps: 0,
                gapped: false,
            },
        );
        logs.insert(
            5,
            ReplicaLog {
                last_seq: 40,
                ops: vec![DeltaOp::Insert {
                    fp: fp(3),
                    bytes: b"three".to_vec(),
                }],
                gaps: 2,
                gapped: true,
            },
        );
        logs
    }

    fn assert_same(a: &HashMap<u32, ReplicaLog>, b: &HashMap<u32, ReplicaLog>) {
        assert_eq!(a.len(), b.len());
        for (origin, log) in a {
            let other = b.get(origin).expect("origin survives");
            assert_eq!(log.last_seq, other.last_seq);
            assert_eq!(log.ops, other.ops);
            assert_eq!(log.gaps, other.gaps);
            assert_eq!(log.gapped, other.gapped);
        }
    }

    #[test]
    fn round_trip_preserves_every_log_field() {
        let dir = tmp_dir("rt");
        let store = ReplicaLogStore::new(&dir).unwrap();
        let logs = sample_logs();
        let path = store.save(&logs).unwrap();
        assert!(path.ends_with("rlog-00000001.img"));
        let loaded = store.load_latest().unwrap();
        assert!(loaded.quarantined.is_empty());
        assert_same(&logs, &loaded.logs.expect("image loads"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_image_quarantined_and_fallback_wins() {
        let dir = tmp_dir("torn");
        let store = ReplicaLogStore::new(&dir).unwrap();
        let logs = sample_logs();
        store.save(&logs).unwrap();
        let good = encode(&logs);
        fs::write(dir.join("rlog-00000002.img"), &good[..good.len() / 2]).unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.quarantined.len(), 1);
        assert_eq!(store.quarantined_count(), 1);
        assert_same(&logs, &loaded.logs.expect("fallback image loads"));
        assert!(store.load_latest().unwrap().quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn saves_prune_to_newest_plus_one_fallback() {
        let dir = tmp_dir("prune");
        let store = ReplicaLogStore::new(&dir).unwrap();
        for _ in 0..5 {
            store.save(&sample_logs()).unwrap();
        }
        let left = store.images().unwrap();
        assert_eq!(
            left.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![4, 5],
            "older images pruned"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    // CI greps for an `rlog_version_{N}_mismatch_quarantined` test
    // matching the current RLOG_FORMAT_VERSION: bumping the constant
    // without a fresh cross-version test fails the gate (ci.sh).
    #[test]
    fn rlog_version_1_mismatch_quarantined() {
        assert_eq!(RLOG_FORMAT_VERSION, 1);
        let dir = tmp_dir("vskew");
        let store = ReplicaLogStore::new(&dir).unwrap();
        // A well-formed image claiming a future version, with a valid
        // checksum — the version guard (not the integrity check) must
        // reject it.
        let mut img = encode(&sample_logs());
        img.truncate(img.len() - 16);
        img[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&2u32.to_le_bytes());
        let sum = checksum(&img);
        img.extend_from_slice(&sum.hi.to_le_bytes());
        img.extend_from_slice(&sum.lo.to_le_bytes());
        assert!(decode(&img).is_none(), "future version rejected");
        fs::write(dir.join("rlog-00000001.img"), &img).unwrap();
        let loaded = store.load_latest().unwrap();
        assert!(loaded.logs.is_none());
        assert_eq!(loaded.quarantined.len(), 1, "skewed image quarantined");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_and_bad_embedded_batches_fail_validation() {
        let logs = sample_logs();
        let good = encode(&logs);
        assert!(decode(&good).is_some());
        for i in (0..good.len()).step_by(7) {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            assert!(decode(&bad).is_none(), "flip at byte {i} undetected");
        }
        assert!(decode(&good[..good.len() - 1]).is_none(), "torn");
        assert!(decode(b"").is_none());
    }

    #[test]
    fn empty_dir_loads_cold() {
        let dir = tmp_dir("cold");
        let store = ReplicaLogStore::new(&dir).unwrap();
        let loaded = store.load_latest().unwrap();
        assert!(loaded.logs.is_none());
        assert!(loaded.quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    fn sample_membership() -> MembershipImage {
        MembershipImage {
            epoch: 7,
            leader: 2,
            members: vec![0, 1, 4],
        }
    }

    #[test]
    fn membership_round_trips_and_prunes() {
        let dir = tmp_dir("mbrs-rt");
        let store = MembershipStore::new(&dir).unwrap();
        assert!(store.load_latest().unwrap().image.is_none(), "cold start");
        for _ in 0..4 {
            store.save(&sample_membership()).unwrap();
        }
        let loaded = store.load_latest().unwrap();
        assert!(loaded.quarantined.is_empty());
        assert_eq!(loaded.image, Some(sample_membership()));
        assert_eq!(
            store.images().unwrap().len(),
            2,
            "pruned to newest + fallback"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_membership_quarantined_and_fallback_wins() {
        let dir = tmp_dir("mbrs-torn");
        let store = MembershipStore::new(&dir).unwrap();
        store.save(&sample_membership()).unwrap();
        let good = encode_membership(&sample_membership());
        fs::write(dir.join("mbrs-00000002.img"), &good[..good.len() / 2]).unwrap();
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.quarantined.len(), 1);
        assert_eq!(store.quarantined_count(), 1);
        assert_eq!(loaded.image, Some(sample_membership()));
        for i in (0..good.len()).step_by(5) {
            let mut bad = good.clone();
            bad[i] ^= 0x20;
            assert!(
                decode_membership(&bad).is_none(),
                "flip at byte {i} undetected"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    // CI greps for an `mbrs_version_{N}_mismatch_quarantined` test
    // matching the current MBRS_FORMAT_VERSION: bumping the constant
    // without a fresh cross-version test fails the gate (ci.sh).
    #[test]
    fn mbrs_version_1_mismatch_quarantined() {
        assert_eq!(MBRS_FORMAT_VERSION, 1);
        let dir = tmp_dir("mbrs-vskew");
        let store = MembershipStore::new(&dir).unwrap();
        let mut img = encode_membership(&sample_membership());
        img.truncate(img.len() - 16);
        img[MBRS_MAGIC.len()..MBRS_MAGIC.len() + 4].copy_from_slice(&2u32.to_le_bytes());
        let sum = membership_checksum(&img);
        img.extend_from_slice(&sum.hi.to_le_bytes());
        img.extend_from_slice(&sum.lo.to_le_bytes());
        assert!(decode_membership(&img).is_none(), "future version rejected");
        fs::write(dir.join("mbrs-00000001.img"), &img).unwrap();
        let loaded = store.load_latest().unwrap();
        assert!(loaded.image.is_none());
        assert_eq!(loaded.quarantined.len(), 1, "skewed image quarantined");
        let _ = fs::remove_dir_all(&dir);
    }
}
