//! `ccm2-fabric` — a sharded compile fleet over `ccm2-serve`.
//!
//! One [`CompileService`](ccm2_serve::CompileService) scales to one
//! machine's worker pool; the fabric scales *out*: N shards, each a
//! full service with its own bounded store, behind a router that
//! places requests with a consistent-hash ring and survives shard
//! death without losing an admitted request. The pieces:
//!
//! * [`wire`] — `CCM2WIRE`: versioned, length-prefixed, checksummed
//!   frames for the compile plane (request/outcome/reject) and the
//!   replication plane (sync/delta-ship/absorb). Damage anywhere is a
//!   decode failure, never misdecoded data.
//! * [`ring`] — the consistent-hash ring over request fingerprints:
//!   stable across processes, minimal key movement on shard
//!   join/leave.
//! * [`transport`] — the byte conduit: a deterministic, seedable
//!   in-process loopback (drills, proptests) and a real TCP transport
//!   (one frame per connection), interchangeable behind one trait.
//! * [`shard`] — a service wrapped as a passive frame handler, plus
//!   the replica logs it keeps for its peers' `CCM2DELT` streams.
//! * [`router`] — routing, router-level single-flight, failover
//!   (ring removal + replica absorption), replication epochs, and the
//!   epoch-numbered eviction lease that keeps membership authority
//!   exclusive when several routers run at once.
//! * [`client`] — the fleet's client side: sticky router preference,
//!   router-failover retry, and honored `Retry-After` back-off hints.
//! * [`durable`] — crash-atomic persistence: `CCM2RLOG` replica-log
//!   images and `CCM2MBRS` membership images (what standby routers
//!   mirror and promoted leaders restore).
//!
//! The fleet invariant the drills pin: for any seeded workload, an
//! N-shard fabric returns byte-identical objects and diagnostics to a
//! standalone service — including across a mid-stream shard kill.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use ccm2_fabric::Fabric;
//! use ccm2_serve::{CompileRequest, ServeConfig};
//! use ccm2_support::defs::DefLibrary;
//!
//! let fabric = Fabric::start(3, ServeConfig::default());
//! let req = CompileRequest::new(
//!     1,
//!     "Hello",
//!     "MODULE Hello; BEGIN WriteLn END Hello.",
//!     Arc::new(DefLibrary::new()),
//! );
//! let resp = fabric.router().serve(&req);
//! assert!(resp.outcome().expect("served").ok);
//! assert_eq!(fabric.router().live_shards(), vec![0, 1, 2]);
//! ```

pub mod client;
pub mod durable;
pub mod ring;
pub mod router;
pub mod shard;
pub mod transport;
pub mod wire;

use std::sync::Arc;

use ccm2_serve::ServeConfig;

pub use client::{ClientRetryStats, FabricClient, CLIENT_MAX_ATTEMPTS, CLIENT_MAX_SLEEP_MS};
pub use durable::{
    LoadedMembership, LoadedReplicaLogs, MembershipImage, MembershipStore, ReplicaLogStore,
    MBRS_FORMAT_VERSION, RLOG_FORMAT_VERSION,
};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use router::{
    start_heartbeats, AdaptiveCadence, FabricResponse, FabricRouter, FabricStats, FleetRetryBurn,
    HealthState, HeartbeatConfig, HeartbeatHandle, LeaseConfig, RouterRole, ShardRetryBurn,
    DEFAULT_RETRY_AFTER_MS,
};
pub use shard::{LeaseView, ReplicaLog, ShardNode, ShardStats, REPLICA_LOG_CAP};
pub use transport::{
    read_frame, FrameHandler, LoopbackTransport, TcpShardServer, TcpTransport, Transport,
    MAX_PAYLOAD,
};
pub use wire::{
    decode_frame, encode_frame, frame_len, Message, WireOutcome, WireRequest, FRAME_OVERHEAD,
    NO_ROUTER, WIRE_FORMAT_VERSION, WIRE_MAGIC,
};

/// A whole loopback fleet in one value: N shards, the transport, and
/// the router. The unit the drills and equivalence tests spin up.
pub struct Fabric {
    transport: Arc<LoopbackTransport>,
    router: FabricRouter,
    nodes: Vec<Arc<ShardNode>>,
}

impl Fabric {
    /// Starts `shards` fresh shards (ids `0..shards`) with identical
    /// configs on a clean loopback transport.
    pub fn start(shards: usize, config: ServeConfig) -> Fabric {
        Fabric::start_on(
            Arc::new(LoopbackTransport::new()),
            (0..shards as u32)
                .map(|id| Arc::new(ShardNode::start(id, config)))
                .collect(),
        )
    }

    /// Assembles a fleet from pre-built nodes on a caller-provided
    /// loopback (seeded corruption, restored shards, odd ids — the
    /// drills' entry point).
    pub fn start_on(transport: Arc<LoopbackTransport>, nodes: Vec<Arc<ShardNode>>) -> Fabric {
        for node in &nodes {
            transport.register(node.id(), Arc::clone(node) as Arc<dyn FrameHandler>);
        }
        let router = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>);
        Fabric {
            transport,
            router,
            nodes,
        }
    }

    /// The router (serve requests through this).
    pub fn router(&self) -> &FabricRouter {
        &self.router
    }

    /// Arms the router with a fault plan (`shard:{id}#d{n}` sites).
    pub fn with_faults(mut self, plan: Arc<ccm2_faults::FaultPlan>) -> Fabric {
        self.router = self.router.with_faults(plan);
        self
    }

    /// Overrides the router's failure-detector thresholds.
    pub fn with_heartbeat(mut self, config: HeartbeatConfig) -> Fabric {
        self.router = self.router.with_heartbeat(config);
        self
    }

    /// Lets the router's failure detector scale its miss budget with
    /// observed RTT percentiles (see [`FabricRouter::with_adaptive_heartbeat`]).
    pub fn with_adaptive_heartbeat(mut self, cadence: AdaptiveCadence) -> Fabric {
        self.router = self.router.with_adaptive_heartbeat(cadence);
        self
    }

    /// The loopback transport (corruption counters, manual kills).
    pub fn transport(&self) -> &Arc<LoopbackTransport> {
        &self.transport
    }

    /// The shard nodes, in id order (drill assertions; node `i` may be
    /// dead — check [`FabricRouter::live_shards`]).
    pub fn nodes(&self) -> &[Arc<ShardNode>] {
        &self.nodes
    }

    /// Total compiles executed across all shards (dedup denominator).
    pub fn total_compiles(&self) -> u64 {
        self.nodes.iter().map(|n| n.stats().compiles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_serve::{CompileRequest, ExecChoice};
    use ccm2_support::defs::DefLibrary;

    fn request(client: u64, name: &str) -> CompileRequest {
        let mut req = CompileRequest::new(
            client,
            name,
            format!("MODULE {name}; VAR x: INTEGER; BEGIN x := 3; END {name}."),
            Arc::new(DefLibrary::new()),
        );
        req.exec = ExecChoice::Sim(2);
        req
    }

    fn small_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            store_budget: 256 * 1024,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn fleet_serves_and_dedups_identical_requests() {
        let fabric = Fabric::start(3, small_config());
        let reqs: Vec<CompileRequest> = (0..4)
            .flat_map(|client| (0..3).map(move |m| request(client, &format!("Mod{m}"))))
            .collect();
        let responses = fabric.router().serve_batch(&reqs);
        for resp in &responses {
            assert!(resp.outcome().expect("served").ok);
        }
        // 12 requests, 3 distinct modules: single-flight at the router
        // and on the shards keeps actual compiles at the distinct
        // count (identical fingerprints route to one shard, so no
        // duplicate can slip through on a second shard; stragglers
        // arriving after completion re-compile warm at worst).
        let stats = fabric.router().stats();
        assert_eq!(stats.dispatched, 12);
        assert_eq!(stats.failovers, 0);
        assert!(
            fabric.total_compiles() >= 3,
            "all three modules must compile somewhere"
        );
        assert!(
            stats.joined + stats.routed_calls >= 12,
            "every request either joined or crossed the wire"
        );
        // Replication ran: every served compile triggers an epoch, and
        // fresh stores definitely had insertions to ship.
        assert!(stats.ships > 0, "no delta batch ever shipped: {stats:?}");
    }

    #[test]
    fn killed_shard_fails_over_and_survivors_absorb_its_deltas() {
        let fabric = Fabric::start(3, small_config());
        // Find a module routed to shard 1 so the kill actually matters.
        let victim_req = (0..64)
            .map(|i| request(7, &format!("Pick{i}")))
            .find(|r| HashRing::new(&[0, 1, 2], DEFAULT_VNODES).route(r.fingerprint()) == Some(1));
        let victim_req = victim_req.expect("some module routes to shard 1");
        assert!(fabric.router().serve(&victim_req).outcome().is_some());

        // The compile's artifacts were replicated to the peers' logs.
        let parked: usize = fabric.nodes()[0].replica_len(1) + fabric.nodes()[2].replica_len(1);
        assert!(parked > 0, "peers hold no replicas for shard 1");

        fabric.router().kill_shard(1);
        fabric.router().kill_shard(1); // idempotent
        assert_eq!(fabric.router().live_shards(), vec![0, 2]);
        let stats = fabric.router().stats();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.absorbs, 2, "both survivors absorbed");
        let absorbed: u64 =
            fabric.nodes()[0].stats().absorbed_ops + fabric.nodes()[2].stats().absorbed_ops;
        assert!(absorbed > 0, "absorb applied nothing");

        // The same request now serves from a survivor — and its
        // artifacts are already warm there thanks to the absorbed log.
        let resp = fabric.router().serve(&victim_req);
        assert!(resp.outcome().expect("served by a survivor").ok);
    }

    #[test]
    fn injected_shard_death_mid_batch_loses_nothing() {
        let plan = Arc::new(ccm2_faults::FaultPlan::single(
            "shard:1#d*",
            ccm2_faults::FaultKind::Panic,
        ));
        let fabric = Fabric::start(3, small_config()).with_faults(plan);
        let reqs: Vec<CompileRequest> = (0..12).map(|m| request(1, &format!("Batch{m}"))).collect();
        let responses = fabric.router().serve_batch(&reqs);
        for (req, resp) in reqs.iter().zip(&responses) {
            let out = resp.outcome().expect("failover must not lose requests");
            assert!(out.ok, "{}: {:?}", req.module, out.diagnostics);
        }
        let stats = fabric.router().stats();
        assert_eq!(stats.failovers, 1, "shard 1 died exactly once: {stats:?}");
        assert_eq!(fabric.router().live_shards(), vec![0, 2]);
    }

    #[test]
    fn corrupted_frames_are_retried_not_trusted() {
        // ~25% of frames damaged: plenty of rejects, still converges.
        let transport = Arc::new(LoopbackTransport::with_corruption(0x5EED, 250_000));
        let nodes = (0..3u32)
            .map(|id| Arc::new(ShardNode::start(id, small_config())))
            .collect();
        let fabric = Fabric::start_on(transport, nodes);
        let reqs: Vec<CompileRequest> = (0..8).map(|m| request(2, &format!("Noise{m}"))).collect();
        let responses = fabric.router().serve_batch(&reqs);
        let served = responses.iter().filter(|r| r.outcome().is_some()).count();
        assert!(
            served >= 6,
            "checksum retries should serve nearly everything ({served}/8)"
        );
        for resp in &responses {
            if let Some(out) = resp.outcome() {
                assert!(out.ok, "{:?}", out.diagnostics);
            }
        }
        assert!(
            fabric.transport().corrupted() > 0,
            "corruption never fired — the test is vacuous"
        );
        assert!(
            fabric.router().stats().checksum_rejects > 0
                || fabric.nodes().iter().all(|n| n.stats().bad_frames == 0),
            "damage was observed but never counted"
        );
        assert_eq!(
            fabric.router().stats().failovers,
            0,
            "corruption must not be misdiagnosed as shard death"
        );
    }

    #[test]
    fn heartbeat_detector_suspects_then_evicts_a_partitioned_shard() {
        let fabric = Fabric::start(3, small_config()).with_heartbeat(HeartbeatConfig {
            suspect_misses: 1,
            evict_misses: 3,
        });
        // Standing partition of the link to shard 1: every delivery on
        // it is dropped. Shards 0 and 2 keep answering.
        fabric
            .transport()
            .set_link_faults(Some(Arc::new(ccm2_faults::FaultPlan::single(
                "link:1#c*",
                ccm2_faults::FaultKind::Panic,
            ))));

        assert!(fabric.router().heartbeat_tick().is_empty());
        assert_eq!(fabric.router().health(1), HealthState::Suspect);
        assert_eq!(fabric.router().health(0), HealthState::Alive);
        assert_eq!(
            fabric.router().live_shards(),
            vec![0, 1, 2],
            "a suspect keeps its keys"
        );

        assert!(fabric.router().heartbeat_tick().is_empty());
        assert_eq!(fabric.router().heartbeat_tick(), vec![1], "third miss");
        assert_eq!(fabric.router().health(1), HealthState::Evicted);
        assert_eq!(fabric.router().live_shards(), vec![0, 2]);
        let stats = fabric.router().stats();
        assert_eq!(stats.heartbeat_evictions, 1);
        assert_eq!(stats.failovers, 1, "eviction is a real failover");
        assert_eq!(stats.suspects, 1, "one transition into suspicion");
        assert_eq!(stats.pings, 3 + 3 + 3);
        assert_eq!(stats.pongs, 2 + 2 + 2, "shards 0 and 2 kept answering");
        assert!(fabric.transport().link_faults_fired() >= 3);

        // Healing the partition does not resurrect the shard — only an
        // explicit re-admission does, through the warm-up path.
        fabric.transport().set_link_faults(None);
        assert!(fabric.router().heartbeat_tick().is_empty());
        assert_eq!(fabric.router().health(1), HealthState::Evicted);
        fabric.router().admit_shard(1);
        assert_eq!(fabric.router().health(1), HealthState::Alive);
        assert_eq!(fabric.router().live_shards(), vec![0, 1, 2]);
    }

    #[test]
    fn admit_shard_warms_the_joiner_before_ring_ownership() {
        let fabric = Fabric::start(2, small_config());
        let reqs: Vec<CompileRequest> = (0..4).map(|m| request(3, &format!("Warm{m}"))).collect();
        for resp in fabric.router().serve_batch(&reqs) {
            assert!(resp.outcome().expect("served").ok);
        }
        let fleet_entries: usize = fabric.nodes()[0].service().store().export().len()
            + fabric.nodes()[1].service().store().export().len();
        assert!(fleet_entries > 0, "serving warmed nobody");

        let joiner = Arc::new(ShardNode::start(7, small_config()));
        fabric
            .transport()
            .register(7, Arc::clone(&joiner) as Arc<dyn FrameHandler>);
        fabric.router().admit_shard(7);
        assert_eq!(fabric.router().live_shards(), vec![0, 1, 7]);
        let stats = fabric.router().stats();
        assert_eq!(stats.warm_joins, 1);
        assert!(stats.warmup_entries > 0, "head-ship carried no entries");
        assert!(
            joiner.stats().imported_entries > 0,
            "the joiner imported nothing"
        );
        assert!(
            !joiner.service().store().export().is_empty(),
            "the joiner's store is still cold"
        );
        // Admitting an already-ringed shard is a no-op.
        fabric.router().admit_shard(7);
        assert_eq!(fabric.router().stats().warm_joins, 1);
    }

    #[test]
    fn gapped_survivor_is_reconciled_with_a_full_image_at_failover() {
        let fabric = Fabric::start(3, small_config());
        // Warm shard 1 so the peers hold a (clean) replica log for it
        // and shard 0 / 2 have authoritative bytes to reconcile from.
        let victim_req = (0..64)
            .map(|i| request(7, &format!("Gap{i}")))
            .find(|r| HashRing::new(&[0, 1, 2], DEFAULT_VNODES).route(r.fingerprint()) == Some(1))
            .expect("some module routes to shard 1");
        assert!(fabric.router().serve(&victim_req).outcome().is_some());

        // Poison shard 2's log for origin 1 with a far-future batch:
        // sequence gap ⇒ gapped ⇒ absorb must discard it.
        let poison = encode_frame(&Message::DeltaShip {
            from_shard: 1,
            batch: ccm2_incr::encode_delta(
                10_000,
                &[ccm2_incr::DeltaOp::Evict {
                    fp: ccm2_support::hash::Fp128 { hi: 1, lo: 1 },
                }],
            ),
            router: 0,
            epoch: 0,
        });
        assert_eq!(
            decode_frame(&fabric.nodes()[2].handle(&poison)),
            Some(Message::Ack)
        );

        fabric.router().kill_shard(1);
        let stats = fabric.router().stats();
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.absorbs, 2, "both survivors answered the absorb");
        assert_eq!(
            stats.gapped_reconciliations, 1,
            "the gapped survivor got a full image: {stats:?}"
        );
        let n2 = fabric.nodes()[2].stats();
        assert_eq!(n2.gapped_discards, 1);
        assert!(n2.imported_entries > 0, "reconciliation shipped entries");
        assert!(
            !fabric.nodes()[2].service().store().export().is_empty(),
            "shard 2 should hold the reconciled bytes"
        );
        // The victim's artifacts survived somewhere: the re-routed
        // request serves identically.
        let resp = fabric.router().serve(&victim_req);
        assert!(resp.outcome().expect("served by a survivor").ok);
    }

    fn temp_store(tag: &str) -> Arc<MembershipStore> {
        let dir = std::env::temp_dir().join(format!(
            "ccm2-mbrs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(MembershipStore::new(dir).expect("membership dir"))
    }

    #[test]
    fn standby_promotes_on_lease_expiry_and_stale_leader_demotes() {
        let transport = Arc::new(LoopbackTransport::new());
        let nodes: Vec<Arc<ShardNode>> = (0..3u32)
            .map(|id| Arc::new(ShardNode::start(id, small_config())))
            .collect();
        for node in &nodes {
            transport.register(node.id(), Arc::clone(node) as Arc<dyn FrameHandler>);
        }
        let store = temp_store("promote");
        let a = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>)
            .with_identity(1)
            .with_membership_store(Arc::clone(&store));
        let b = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>)
            .with_identity(2)
            .as_standby()
            .with_lease(LeaseConfig { expiry_ticks: 2 })
            .with_membership_store(Arc::clone(&store));

        assert!(a.acquire_lease(), "uncontested majority grant");
        assert_eq!(a.role(), RouterRole::Leader);
        assert_eq!(a.epoch(), 1);
        assert!(a.heartbeat_tick().is_empty(), "healthy fleet, no evictions");

        // A goes silent (crash, GC pause, partition — the standby can't
        // tell and doesn't need to). B watches the lease age out on the
        // shards' own probe clocks, then claims the next epoch.
        assert!(b.heartbeat_tick().is_empty());
        assert_eq!(b.role(), RouterRole::Standby, "lease still fresh");
        assert!(b.heartbeat_tick().is_empty());
        assert_eq!(b.role(), RouterRole::Leader, "expired lease claimed");
        assert_eq!(b.epoch(), 2);
        assert_eq!(b.stats().promotions, 1);

        // The ex-leader wakes up, hears the newer epoch on its first
        // answered probe, and stands down before touching membership.
        assert!(a.heartbeat_tick().is_empty());
        assert_eq!(a.role(), RouterRole::Standby);
        assert_eq!(a.stats().demotions, 1);
        assert_eq!(a.leadership_epochs(), vec![1]);
        assert_eq!(b.leadership_epochs(), vec![2]);

        // The durable image records the new leader.
        let image = store.load_latest().unwrap().image.expect("image persisted");
        assert_eq!(image.epoch, 2);
        assert_eq!(image.leader, 2);
        assert_eq!(image.members, vec![0, 1, 2]);
    }

    #[test]
    fn client_fails_over_to_the_standby_when_its_router_dies() {
        let transport = Arc::new(LoopbackTransport::new());
        let nodes: Vec<Arc<ShardNode>> = (0..3u32)
            .map(|id| Arc::new(ShardNode::start(id, small_config())))
            .collect();
        for node in &nodes {
            transport.register(node.id(), Arc::clone(node) as Arc<dyn FrameHandler>);
        }
        let store = temp_store("client");
        let a = Arc::new(
            FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>)
                .with_identity(1)
                .with_membership_store(Arc::clone(&store)),
        );
        let b = Arc::new(
            FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>)
                .with_identity(2)
                .as_standby()
                .with_membership_store(Arc::clone(&store)),
        );
        assert!(a.acquire_lease());
        let client = FabricClient::new(vec![Arc::clone(&a), Arc::clone(&b)]);

        let resp = client.serve(&request(1, "Sticky"));
        assert!(resp.outcome().expect("served via preferred router").ok);
        assert_eq!(client.preferred(), 0, "healthy preferred router sticks");

        a.shutdown();
        let resp = client.serve(&request(1, "Moved"));
        assert!(resp.outcome().expect("served via the standby").ok);
        assert_eq!(client.preferred(), 1, "client rotated to the standby");
        let stats = client.stats();
        assert_eq!(stats.served, 2);
        assert!(stats.router_rotations >= 1);
        assert_eq!(stats.exhausted, 0);
    }

    #[test]
    fn client_exhausts_its_budget_against_a_dead_fleet() {
        let transport = Arc::new(LoopbackTransport::new());
        let router = Arc::new(FabricRouter::new(
            Arc::clone(&transport) as Arc<dyn Transport>
        ));
        let client = FabricClient::new(vec![router]).with_max_attempts(2);
        let resp = client.serve(&request(1, "Nobody"));
        assert!(matches!(resp, FabricResponse::Retry { after_ms } if after_ms >= 1));
        let stats = client.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn adaptive_cadence_stretches_the_miss_budget_with_rtt_spread() {
        let transport = Arc::new(LoopbackTransport::new());
        let router = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>)
            .with_adaptive_heartbeat(AdaptiveCadence::default());
        let fixed = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>);

        // Below min_samples the static config rules.
        for _ in 0..8 {
            router.record_rtt(100);
        }
        assert_eq!(router.effective_heartbeat(), HeartbeatConfig::default());

        // A tight distribution keeps the tight budget.
        for _ in 0..24 {
            router.record_rtt(100);
        }
        assert_eq!(router.effective_heartbeat(), HeartbeatConfig::default());

        // A long tail (p95 ≫ p50) stretches suspicion, clamped by caps.
        for _ in 0..24 {
            router.record_rtt(100);
            router.record_rtt(2_000);
        }
        let adapted = router.effective_heartbeat();
        assert!(
            adapted.suspect_misses > HeartbeatConfig::default().suspect_misses,
            "long tail should earn a longer rope: {adapted:?}"
        );
        assert!(adapted.suspect_misses <= AdaptiveCadence::default().max_suspect);
        assert!(adapted.evict_misses > adapted.suspect_misses);
        assert!(adapted.evict_misses <= AdaptiveCadence::default().max_evict);

        // Fixed cadence (the default) never adapts — the deterministic
        // opt-out the drills rely on.
        for _ in 0..64 {
            fixed.record_rtt(100);
            fixed.record_rtt(9_000);
        }
        assert_eq!(fixed.effective_heartbeat(), HeartbeatConfig::default());
    }

    #[test]
    fn retry_burn_aggregates_shard_reports() {
        let fabric = Fabric::start(2, small_config());
        let reqs: Vec<CompileRequest> = (0..4).map(|m| request(9, &format!("Burn{m}"))).collect();
        for resp in fabric.router().serve_batch(&reqs) {
            assert!(resp.outcome().expect("served").ok);
        }
        let burn = fabric.router().retry_burn();
        assert_eq!(burn.shards.len(), 2, "every live shard reports");
        assert_eq!(
            burn.shards.iter().map(|s| s.compiles).sum::<u64>(),
            fabric.total_compiles()
        );
        for shard in &burn.shards {
            assert_eq!(shard.retry_budget, small_config().retry_attempts);
            assert_eq!(shard.queue_len, 0, "drained fleet reports empty queues");
            assert_eq!(shard.budget_remaining(), shard.retry_budget);
        }
        assert_eq!(burn.attempts_used(), 0, "healthy fleet burns no retries");
    }

    #[test]
    fn fleet_over_tcp_matches_the_loopback_contract() {
        let nodes: Vec<Arc<ShardNode>> = (0..3u32)
            .map(|id| Arc::new(ShardNode::start(id, small_config())))
            .collect();
        let mut servers: Vec<TcpShardServer> = Vec::new();
        let transport = Arc::new(TcpTransport::new());
        for node in &nodes {
            let server = TcpShardServer::serve(Arc::clone(node) as Arc<dyn FrameHandler>).unwrap();
            transport.register(node.id(), server.addr());
            servers.push(server);
        }
        let router = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>);
        let reqs: Vec<CompileRequest> = (0..6).map(|m| request(5, &format!("Tcp{m}"))).collect();
        let responses = router.serve_batch(&reqs);
        for resp in &responses {
            assert!(resp.outcome().expect("served over sockets").ok);
        }
        assert!(router.stats().ships > 0, "replication runs over TCP too");
        for server in &mut servers {
            server.stop();
        }
    }
}
