//! Consistent-hash placement of request fingerprints on shards.
//!
//! Each shard contributes `vnodes` points to a ring of `u64` positions;
//! a request fingerprint lands at [`Fp128::fold64`] and is owned by the
//! first shard point at or clockwise-after it. The properties the
//! fabric relies on:
//!
//! * **Stability** — points are a pure function of `(shard id, vnode
//!   index)` through [`StableHasher`], so every router instance (and
//!   every restart) computes the identical ring. No coordination
//!   service needed.
//! * **Minimal disruption** — removing a shard reassigns *only* the
//!   keys it owned (to the next point clockwise, i.e. spread over the
//!   survivors); adding a shard only steals keys, never shuffles them
//!   between incumbents. [`HashRing::remove`] is the failover
//!   primitive; the rebalance test pins both properties.
//! * **Spread** — vnodes smooth the per-shard share; with the default
//!   [`DEFAULT_VNODES`] the max/min key-share ratio over a seeded key
//!   population stays within small constant factors.

use ccm2_support::hash::{Fp128, StableHasher};

/// Default virtual nodes per shard; enough to keep shares even at the
/// fleet sizes the drills run (3–8 shards), small enough that ring
/// rebuilds are free.
pub const DEFAULT_VNODES: usize = 64;

/// The stable position of one `(shard, vnode)` pair on the ring.
fn point(shard: u32, vnode: u32) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("ccm2-fabric/ring/v1");
    h.write_u32(shard);
    h.write_u32(vnode);
    h.finish().fold64()
}

/// A consistent-hash ring over shard ids. Cheap to clone and rebuild;
/// the router holds it under its own lock.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(position, shard)` sorted by position; ties broken by shard id
    /// (deterministic whatever the insertion order).
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

impl HashRing {
    /// A ring with `vnodes` points for each of `shards`.
    pub fn new(shards: &[u32], vnodes: usize) -> HashRing {
        let mut ring = HashRing {
            points: Vec::with_capacity(shards.len() * vnodes),
            vnodes,
        };
        for &s in shards {
            ring.add(s);
        }
        ring
    }

    /// Adds a shard's points (idempotent).
    pub fn add(&mut self, shard: u32) {
        if self.contains(shard) {
            return;
        }
        for v in 0..self.vnodes {
            self.points.push((point(shard, v as u32), shard));
        }
        self.points.sort_unstable();
    }

    /// Removes a shard's points; keys it owned fall through to the next
    /// point clockwise. Returns whether the shard was present.
    pub fn remove(&mut self, shard: u32) -> bool {
        let before = self.points.len();
        self.points.retain(|&(_, s)| s != shard);
        self.points.len() != before
    }

    /// Whether the shard is on the ring.
    pub fn contains(&self, shard: u32) -> bool {
        self.points.iter().any(|&(_, s)| s == shard)
    }

    /// The live shard ids, ascending.
    pub fn shards(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.points.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.shards().len()
    }

    /// Whether the ring has no shards (all dead: nothing to route to).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The shard owning `key`: first point at or clockwise-after
    /// `key.fold64()`, wrapping at the top. `None` on an empty ring.
    pub fn route(&self, key: Fp128) -> Option<u32> {
        self.route_u64(key.fold64())
    }

    fn route_u64(&self, pos: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(p, _)| p < pos);
        let (_, shard) = self.points[idx % self.points.len()];
        Some(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<Fp128> {
        (0..n)
            .map(|i| Fp128::of(format!("key-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_insertion_order_independent() {
        let a = HashRing::new(&[1, 2, 3], DEFAULT_VNODES);
        let b = HashRing::new(&[3, 1, 2], DEFAULT_VNODES);
        for k in keys(256) {
            assert_eq!(a.route(k), b.route(k));
        }
        assert_eq!(a.shards(), vec![1, 2, 3]);
    }

    #[test]
    fn every_shard_gets_a_reasonable_share() {
        let ring = HashRing::new(&[0, 1, 2, 3], DEFAULT_VNODES);
        let mut counts = [0usize; 4];
        for k in keys(4000) {
            counts[ring.route(k).unwrap() as usize] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                (400..=2000).contains(&c),
                "shard {shard} owns {c}/4000 keys — spread degenerated: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        let full = HashRing::new(&[1, 2, 3, 4], DEFAULT_VNODES);
        let mut survivors = full.clone();
        assert!(survivors.remove(3));
        assert!(!survivors.remove(3), "already gone");
        let mut moved = 0usize;
        for k in keys(2000) {
            let before = full.route(k).unwrap();
            let after = survivors.route(k).unwrap();
            if before == 3 {
                assert_ne!(after, 3, "key still routed to the dead shard");
                moved += 1;
            } else {
                assert_eq!(before, after, "a survivor's key moved on failover");
            }
        }
        assert!(moved > 0, "the dead shard owned no keys — test is vacuous");
    }

    #[test]
    fn adding_a_shard_only_steals_keys() {
        let small = HashRing::new(&[1, 2, 3], DEFAULT_VNODES);
        let mut grown = small.clone();
        grown.add(9);
        grown.add(9); // idempotent
        assert_eq!(grown.len(), 4);
        let mut stolen = 0usize;
        for k in keys(2000) {
            let before = small.route(k).unwrap();
            let after = grown.route(k).unwrap();
            if after == 9 {
                stolen += 1;
            } else {
                assert_eq!(before, after, "a key moved between incumbents");
            }
        }
        assert!(stolen > 0, "the new shard took nothing");
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let mut ring = HashRing::new(&[5], 8);
        assert!(!ring.is_empty());
        assert!(ring.remove(5));
        assert!(ring.is_empty());
        assert_eq!(ring.route(Fp128::of(b"x")), None);
    }
}
