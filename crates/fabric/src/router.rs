//! The fleet's front door: consistent-hash routing, router-level
//! single-flight, and failover.
//!
//! [`FabricRouter::serve`] takes an ordinary [`CompileRequest`] and
//! returns a [`FabricResponse`]:
//!
//! 1. **Route** — the request fingerprint (the same single-flight key
//!    the standalone service uses) lands on a shard via the
//!    [`HashRing`]. Identical requests therefore always hit the same
//!    shard, so the shard-level single-flight keeps deduplicating
//!    across clients even in a fleet.
//! 2. **Single-flight at the router** — concurrent identical requests
//!    don't even cross the wire twice: later arrivals park on the
//!    in-flight entry and share the leader's response.
//! 3. **Dispatch** — one `CCM2WIRE` compile frame. A response that
//!    fails frame validation is retried against the *same* shard (the
//!    checksum plane caught damage in transit; the shard is fine). A
//!    transport error is shard death.
//! 4. **Failover** — the dead shard leaves the ring (its key range
//!    spreads over the survivors — see the ring's minimal-disruption
//!    guarantee), every survivor is told to [`absorb`](crate::wire::Message::Absorb)
//!    the replica log it holds for the dead shard, and the dispatch
//!    loop re-routes. An admitted request is therefore never lost to a
//!    shard death: it either completes on a survivor or (all shards
//!    dead / shed at admission) surfaces as [`FabricResponse::Retry`],
//!    the same back-off contract as [`ccm2_serve::Response::Retry`].
//! 5. **Replicate** — after a served compile the router syncs the
//!    owning shard and fans the returned `CCM2DELT` batch to the
//!    surviving peers (see `crate::shard`).
//!
//! Shard deaths can also be *injected* deterministically: give the
//! router a [`FaultPlan`] and it queries site `shard:{id}#d{n}` before
//! dispatch `n` to shard `id`; a [`FaultKind::Panic`] there kills the
//! shard at exactly that dispatch — the chaos-drill analog of the
//! `task:`/`store:` sites inside a single compile.
//!
//! # The failure detector
//!
//! Waiting for a blocking round-trip error is a *reactive* detector: a
//! partitioned shard is only discovered when a request happens to route
//! to it. The router also runs a **proactive** suspicion clock:
//! [`FabricRouter::heartbeat_tick`] probes every ring member with a
//! [`Message::Ping`] and tracks consecutive misses per shard. Misses at
//! or past [`HeartbeatConfig::suspect_misses`] mark the shard
//! [`HealthState::Suspect`]; at [`HeartbeatConfig::evict_misses`] the
//! shard is evicted — the same [`fail_over`](FabricRouter::kill_shard)
//! path as a detected death, so its replica logs are absorbed and its
//! key range moves *before* a client request has to eat the error. A
//! later [`FabricRouter::admit_shard`] moves it through
//! [`HealthState::Rejoining`] (warm-up) back to [`HealthState::Alive`].
//!
//! Ticks are driven two ways: drills call `heartbeat_tick()` directly
//! (virtual time — deterministic), while a TCP deployment runs
//! [`start_heartbeats`] for a wall-clock cadence.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ccm2_faults::{FaultKind, FaultPlan};
use ccm2_serve::CompileRequest;
use ccm2_support::hash::Fp128;
use parking_lot::{Condvar, Mutex};

use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::transport::Transport;
use crate::wire::{decode_frame, encode_frame, Message, WireOutcome, WireRequest};

/// A full store image on the move: the delta cursor at the cut plus the
/// entries, coldest first (the payload of [`Message::Image`]).
type StoreImage = (u64, Vec<(Fp128, Vec<u8>)>);

/// Give up re-sending after this many consecutive invalid responses
/// from one shard and shed to the client's back-off protocol instead;
/// persistent damage at this density means the conduit is sick, not
/// unlucky.
const MAX_CHECKSUM_RETRIES: u32 = 8;

/// The fabric's answer to one request. Mirrors
/// [`ccm2_serve::Response`], carrying the wire outcome.
#[derive(Clone, Debug)]
pub enum FabricResponse {
    /// Served (possibly by a survivor after failover, possibly joined
    /// onto an identical in-flight request).
    Done(WireOutcome),
    /// Shed — queue full, over quota, no live shards, or a conduit too
    /// damaged to trust. Back off and resubmit.
    Retry,
}

impl FabricResponse {
    /// The outcome, if served.
    pub fn outcome(&self) -> Option<&WireOutcome> {
        match self {
            FabricResponse::Done(out) => Some(out),
            FabricResponse::Retry => None,
        }
    }
}

/// Router counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// `serve` calls.
    pub dispatched: u64,
    /// Requests that joined an identical in-flight one at the router
    /// (never crossed the wire).
    pub joined: u64,
    /// Compile frames actually sent.
    pub routed_calls: u64,
    /// Admission rejections relayed from shards (queue full / quota).
    pub rejected: u64,
    /// Responses that failed frame validation, or shard-side reports of
    /// a damaged request frame; retried against the same shard.
    pub checksum_rejects: u64,
    /// Shards declared dead and removed from the ring.
    pub failovers: u64,
    /// Survivors that acknowledged an `Absorb` at failover.
    pub absorbs: u64,
    /// Non-empty delta batches fanned out to peers.
    pub ships: u64,
    /// Delta ops contained in those batches.
    pub shipped_ops: u64,
    /// Heartbeat probes sent.
    pub pings: u64,
    /// Valid heartbeat answers received.
    pub pongs: u64,
    /// Transitions into [`HealthState::Suspect`].
    pub suspects: u64,
    /// Shards evicted by the failure detector (subset of `failovers`).
    pub heartbeat_evictions: u64,
    /// Survivors whose gapped replica log was discarded at absorb and
    /// reconciled with a full store image from a healthy peer.
    pub gapped_reconciliations: u64,
    /// Shards admitted through the join warm-up (image head-ship +
    /// delta catch-up before ring ownership).
    pub warm_joins: u64,
    /// Store entries shipped to joiners during warm-up.
    pub warmup_entries: u64,
}

/// Failure-detector tuning: consecutive heartbeat misses before a shard
/// is suspected, and before it is evicted from the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Misses at which the shard turns [`HealthState::Suspect`].
    pub suspect_misses: u32,
    /// Misses at which the shard is evicted (ring removal + absorb).
    /// Clamped to at least `suspect_misses`.
    pub evict_misses: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> HeartbeatConfig {
        HeartbeatConfig {
            suspect_misses: 1,
            evict_misses: 3,
        }
    }
}

/// A shard's position in the failure-detector state machine
/// (alive → suspect → evicted → rejoining → alive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HealthState {
    /// Answering probes (or not yet probed).
    #[default]
    Alive,
    /// Missed probes, but below the eviction threshold; still on the
    /// ring and still serving whatever reaches it.
    Suspect,
    /// Evicted from the ring (by the detector, a transport error, or a
    /// drill kill). Not probed again until re-admitted.
    Evicted,
    /// Inside [`FabricRouter::admit_shard`]'s warm-up: reachable and
    /// catching up, but not yet owning keys.
    Rejoining,
}

#[derive(Clone, Copy, Debug, Default)]
struct Health {
    state: HealthState,
    misses: u32,
}

type Flight = Arc<(Mutex<Option<FabricResponse>>, Condvar)>;

/// See the module docs.
pub struct FabricRouter {
    transport: Arc<dyn Transport>,
    ring: Mutex<HashRing>,
    inflight: Mutex<HashMap<Fp128, Flight>>,
    stats: Mutex<FabricStats>,
    faults: Option<Arc<FaultPlan>>,
    dispatch_seq: AtomicU64,
    heartbeat: HeartbeatConfig,
    health: Mutex<HashMap<u32, Health>>,
    probe_seq: AtomicU64,
}

impl FabricRouter {
    /// A router over every shard `transport` can currently reach, with
    /// the default vnode count.
    pub fn new(transport: Arc<dyn Transport>) -> FabricRouter {
        let ring = HashRing::new(&transport.shards(), DEFAULT_VNODES);
        FabricRouter {
            transport,
            ring: Mutex::new(ring),
            inflight: Mutex::new(HashMap::new()),
            stats: Mutex::new(FabricStats::default()),
            faults: None,
            dispatch_seq: AtomicU64::new(0),
            heartbeat: HeartbeatConfig::default(),
            health: Mutex::new(HashMap::new()),
            probe_seq: AtomicU64::new(0),
        }
    }

    /// Arms deterministic shard-death injection (site
    /// `shard:{id}#d{n}`, kind [`FaultKind::Panic`]).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> FabricRouter {
        self.faults = Some(plan);
        self
    }

    /// Overrides the failure-detector thresholds.
    pub fn with_heartbeat(mut self, config: HeartbeatConfig) -> FabricRouter {
        self.heartbeat = HeartbeatConfig {
            suspect_misses: config.suspect_misses,
            evict_misses: config.evict_misses.max(config.suspect_misses),
        };
        self
    }

    /// Router counters.
    pub fn stats(&self) -> FabricStats {
        *self.stats.lock()
    }

    /// Live shards on the ring, ascending.
    pub fn live_shards(&self) -> Vec<u32> {
        self.ring.lock().shards()
    }

    /// The failure detector's current verdict on `shard`.
    pub fn health(&self, shard: u32) -> HealthState {
        self.health
            .lock()
            .get(&shard)
            .copied()
            .unwrap_or_default()
            .state
    }

    /// One failure-detector round: probe every ring member with a
    /// nonce'd [`Message::Ping`] and advance the suspicion clock on the
    /// answers. Shards whose consecutive misses reach
    /// [`HeartbeatConfig::evict_misses`] are evicted (ring removal +
    /// replica absorption, the same path as a detected death); the ids
    /// evicted this round are returned. Deterministic: drills drive it
    /// in virtual time, [`start_heartbeats`] drives it on the wall
    /// clock over TCP.
    pub fn heartbeat_tick(&self) -> Vec<u32> {
        let members = self.ring.lock().shards();
        let mut evicted = Vec::new();
        for shard in members {
            let nonce = self.probe_seq.fetch_add(1, Ordering::Relaxed);
            self.stats.lock().pings += 1;
            let ping = encode_frame(&Message::Ping { nonce });
            let answered = match self.transport.call(shard, &ping) {
                Ok(bytes) => matches!(
                    decode_frame(&bytes),
                    Some(Message::Pong { shard: s, nonce: n }) if s == shard && n == nonce
                ),
                Err(_) => false,
            };
            if answered {
                self.stats.lock().pongs += 1;
                let mut health = self.health.lock();
                let h = health.entry(shard).or_default();
                h.misses = 0;
                h.state = HealthState::Alive;
                continue;
            }
            let (suspect_transition, evict) = {
                let mut health = self.health.lock();
                let h = health.entry(shard).or_default();
                h.misses += 1;
                let evict = h.misses >= self.heartbeat.evict_misses;
                let suspect =
                    h.misses >= self.heartbeat.suspect_misses && h.state == HealthState::Alive;
                if suspect {
                    h.state = HealthState::Suspect;
                }
                (suspect, evict)
            };
            if suspect_transition {
                self.stats.lock().suspects += 1;
            }
            if evict {
                self.stats.lock().heartbeat_evictions += 1;
                self.fail_over(shard);
                evicted.push(shard);
            }
        }
        evicted
    }

    /// Adds a shard to the ring (it must already be reachable through
    /// the transport), warming it up first so its earliest requests hit
    /// instead of recompiling:
    ///
    /// 1. **Head-ship** — a full store image is pulled from *every*
    ///    ring member that answers [`Message::FetchImage`] and pushed
    ///    to the joiner (`SharedStore::import` merges, preserving LRU
    ///    order). The ring hands the joiner keys from all members, so
    ///    a single member's image would leave most of them cold.
    /// 2. **Catch-up** — every ring member is synced; the resulting
    ///    `CCM2DELT` batches fan out to the ordinary peers *and* the
    ///    joiner, so deltas pending since the last replication epoch
    ///    reach it too (parked in its replica logs, per origin).
    /// 3. Only then does the ring take the joiner — keys move to a
    ///    shard that can already serve them warm.
    pub fn admit_shard(&self, shard: u32) {
        let sources: Vec<u32> = {
            let ring = self.ring.lock();
            if ring.contains(shard) {
                return;
            }
            ring.shards()
        };
        if !sources.is_empty() {
            self.health.lock().entry(shard).or_default().state = HealthState::Rejoining;
            let mut shipped = None;
            for &src in &sources {
                if let Some((delta_seq, entries)) = self.fetch_image(src) {
                    let n = entries.len() as u64;
                    if self.push_image(shard, delta_seq, entries) {
                        shipped = Some(shipped.unwrap_or(0) + n);
                    }
                }
            }
            for &src in &sources {
                self.replication_epoch(src, Some(shard));
            }
            if let Some(n) = shipped {
                let mut stats = self.stats.lock();
                stats.warm_joins += 1;
                stats.warmup_entries += n;
            }
        }
        self.ring.lock().add(shard);
        let mut health = self.health.lock();
        let h = health.entry(shard).or_default();
        h.state = HealthState::Alive;
        h.misses = 0;
    }

    /// Drill hook: kill `shard` now — drop its transport endpoint,
    /// remove it from the ring, and have the survivors absorb its
    /// replica logs. Idempotent.
    pub fn kill_shard(&self, shard: u32) {
        self.transport.kill(shard);
        self.fail_over(shard);
    }

    /// Serves one request through the fleet. Blocks until served, shed,
    /// or joined onto an identical in-flight request.
    pub fn serve(&self, req: &CompileRequest) -> FabricResponse {
        self.stats.lock().dispatched += 1;
        let fp = req.fingerprint();
        let flight: Flight = {
            let mut map = self.inflight.lock();
            if let Some(existing) = map.get(&fp) {
                let flight = Arc::clone(existing);
                drop(map);
                self.stats.lock().joined += 1;
                let mut slot = flight.0.lock();
                while slot.is_none() {
                    flight.1.wait(&mut slot);
                }
                return slot.clone().expect("flight published");
            }
            let flight: Flight = Arc::new((Mutex::new(None), Condvar::new()));
            map.insert(fp, Arc::clone(&flight));
            flight
        };

        let resp = self.dispatch(req, fp);
        // A `Retry` fans out to the joiners too: they are copies of the
        // same request, so whatever made the leader back off (shed,
        // fleet-wide death) applies to every one of them.
        *flight.0.lock() = Some(resp.clone());
        flight.1.notify_all();
        self.inflight.lock().remove(&fp);
        resp
    }

    /// Serves a whole batch concurrently (one thread per request, the
    /// drill/test harness path) and returns responses in order.
    pub fn serve_batch(&self, requests: &[CompileRequest]) -> Vec<FabricResponse> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|req| scope.spawn(move || self.serve(req)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve thread panicked"))
                .collect()
        })
    }

    fn dispatch(&self, req: &CompileRequest, fp: Fp128) -> FabricResponse {
        let frame = encode_frame(&Message::Compile(WireRequest::from_request(req)));
        let mut checksum_retries = 0u32;
        loop {
            let Some(shard) = self.ring.lock().route(fp) else {
                return FabricResponse::Retry; // fleet-wide death
            };
            let n = self.dispatch_seq.fetch_add(1, Ordering::Relaxed);
            if let Some(plan) = &self.faults {
                if matches!(
                    plan.at(&format!("shard:{shard}#d{n}")),
                    Some(FaultKind::Panic)
                ) {
                    self.transport.kill(shard);
                    self.fail_over(shard);
                    continue;
                }
            }
            self.stats.lock().routed_calls += 1;
            let bytes = match self.transport.call(shard, &frame) {
                Ok(bytes) => bytes,
                Err(_) => {
                    self.fail_over(shard);
                    continue;
                }
            };
            match decode_frame(&bytes) {
                Some(Message::Outcome(out)) => {
                    self.replicate_from(shard);
                    return FabricResponse::Done(out);
                }
                Some(Message::Reject(reason)) if reason.starts_with("bad") => {
                    // The shard saw a damaged request frame; transit
                    // damage, not shard damage — same shard, try again.
                    self.stats.lock().checksum_rejects += 1;
                    checksum_retries += 1;
                    if checksum_retries > MAX_CHECKSUM_RETRIES {
                        return FabricResponse::Retry;
                    }
                }
                Some(Message::Reject(_)) => {
                    self.stats.lock().rejected += 1;
                    return FabricResponse::Retry;
                }
                Some(_) | None => {
                    // Damaged or nonsensical response frame.
                    self.stats.lock().checksum_rejects += 1;
                    checksum_retries += 1;
                    if checksum_retries > MAX_CHECKSUM_RETRIES {
                        return FabricResponse::Retry;
                    }
                }
            }
        }
    }

    /// One replication epoch: sync `shard` for its pending deltas and
    /// fan the batch to every surviving peer. Best-effort — replication
    /// is warmth (see `crate::shard`), so errors are swallowed and cost
    /// at most a recompile after a later failover.
    fn replicate_from(&self, shard: u32) {
        self.replication_epoch(shard, None);
    }

    /// The epoch body: `extra_peer` (a joiner mid-warm-up, not yet on
    /// the ring) receives the fan-out alongside the ring peers.
    fn replication_epoch(&self, shard: u32, extra_peer: Option<u32>) {
        let sync = encode_frame(&Message::Sync);
        let Ok(bytes) = self.transport.call(shard, &sync) else {
            return;
        };
        let Some(Message::DeltaShip { from_shard, batch }) = decode_frame(&bytes) else {
            return;
        };
        let Some((_base, ops)) = ccm2_incr::decode_delta(&batch) else {
            return;
        };
        if ops.is_empty() {
            return;
        }
        let mut peers: Vec<u32> = self
            .ring
            .lock()
            .shards()
            .into_iter()
            .filter(|&s| s != shard)
            .collect();
        if let Some(extra) = extra_peer {
            if extra != shard && !peers.contains(&extra) {
                peers.push(extra);
            }
        }
        let ship = encode_frame(&Message::DeltaShip { from_shard, batch });
        for peer in peers {
            let _ = self.transport.call(peer, &ship);
        }
        let mut stats = self.stats.lock();
        stats.ships += 1;
        stats.shipped_ops += ops.len() as u64;
    }

    /// Pulls a full store image from `shard`.
    fn fetch_image(&self, shard: u32) -> Option<StoreImage> {
        let fetch = encode_frame(&Message::FetchImage);
        let bytes = self.transport.call(shard, &fetch).ok()?;
        match decode_frame(&bytes) {
            Some(Message::Image { delta_seq, entries }) => Some((delta_seq, entries)),
            _ => None,
        }
    }

    /// Pushes a full store image to `shard`; `true` on its `Ack`.
    fn push_image(&self, shard: u32, delta_seq: u64, entries: Vec<(Fp128, Vec<u8>)>) -> bool {
        let image = encode_frame(&Message::Image { delta_seq, entries });
        matches!(
            self.transport.call(shard, &image).map(|b| decode_frame(&b)),
            Ok(Some(Message::Ack))
        )
    }

    /// Declares `shard` dead: off the ring, survivors absorb their
    /// replica logs for it. A survivor that reports its log *gapped*
    /// ([`Message::AbsorbDone`]) discarded it rather than replay a
    /// hole; the router reconciles it with a full store image pulled
    /// from a survivor that absorbed cleanly. Idempotent under races —
    /// only the caller that actually removes the shard runs the absorb
    /// fan-out.
    fn fail_over(&self, shard: u32) {
        let survivors = {
            let mut ring = self.ring.lock();
            if !ring.remove(shard) {
                return;
            }
            ring.shards()
        };
        self.stats.lock().failovers += 1;
        self.health.lock().entry(shard).or_default().state = HealthState::Evicted;
        let absorb = encode_frame(&Message::Absorb { dead_shard: shard });
        let mut gapped_survivors = Vec::new();
        for &s in &survivors {
            if let Ok(bytes) = self.transport.call(s, &absorb) {
                match decode_frame(&bytes) {
                    Some(Message::AbsorbDone { gapped, .. }) => {
                        self.stats.lock().absorbs += 1;
                        if gapped {
                            gapped_survivors.push(s);
                        }
                    }
                    // Pre-v2 shards answered a bare Ack; still a
                    // completed absorb.
                    Some(Message::Ack) => self.stats.lock().absorbs += 1,
                    _ => {}
                }
            }
        }
        if gapped_survivors.is_empty() {
            return;
        }
        // Full-image reconciliation: a healthy survivor's store covers
        // everything the gapped logs lost (and more).
        let image = survivors
            .iter()
            .filter(|s| !gapped_survivors.contains(s))
            .find_map(|&s| self.fetch_image(s));
        let Some((delta_seq, entries)) = image else {
            return; // every survivor gapped: nothing authoritative left
        };
        for g in gapped_survivors {
            if self.push_image(g, delta_seq, entries.clone()) {
                self.stats.lock().gapped_reconciliations += 1;
            }
        }
    }
}

/// A running wall-clock heartbeat driver (TCP deployments). Stops on
/// [`HeartbeatHandle::stop`] or drop.
pub struct HeartbeatHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatHandle {
    /// Signals the driver thread and joins it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Runs [`FabricRouter::heartbeat_tick`] every `period` on a background
/// thread until the handle is stopped or dropped. The wall-clock
/// counterpart of a drill's virtual-time tick loop.
pub fn start_heartbeats(router: Arc<FabricRouter>, period: std::time::Duration) -> HeartbeatHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        while !flag.load(Ordering::Relaxed) {
            router.heartbeat_tick();
            // Sleep in small slices so stop() never waits a full period.
            let mut left = period;
            let slice = std::time::Duration::from_millis(5);
            while !left.is_zero() && !flag.load(Ordering::Relaxed) {
                let d = left.min(slice);
                std::thread::sleep(d);
                left -= d;
            }
        }
    });
    HeartbeatHandle {
        stop,
        thread: Some(thread),
    }
}
