//! The fleet's front door: consistent-hash routing, router-level
//! single-flight, failover, and (since wire v3) the epoch lease that
//! makes eviction authority exclusive.
//!
//! [`FabricRouter::serve`] takes an ordinary [`CompileRequest`] and
//! returns a [`FabricResponse`]:
//!
//! 1. **Route** — the request fingerprint (the same single-flight key
//!    the standalone service uses) lands on a shard via the
//!    [`HashRing`]. Identical requests therefore always hit the same
//!    shard, so the shard-level single-flight keeps deduplicating
//!    across clients even in a fleet.
//! 2. **Single-flight at the router** — concurrent identical requests
//!    don't even cross the wire twice: later arrivals park on the
//!    in-flight entry and share the leader's response.
//! 3. **Dispatch** — one `CCM2WIRE` compile frame. A response that
//!    fails frame validation is retried against the *same* shard (the
//!    checksum plane caught damage in transit; the shard is fine). A
//!    transport error is shard death.
//! 4. **Failover** — the dead shard leaves the ring (its key range
//!    spreads over the survivors — see the ring's minimal-disruption
//!    guarantee), every survivor is told to [`absorb`](crate::wire::Message::Absorb)
//!    the replica log it holds for the dead shard, and the dispatch
//!    loop re-routes. An admitted request is therefore never lost to a
//!    shard death: it either completes on a survivor or (all shards
//!    dead / shed at admission) surfaces as [`FabricResponse::Retry`]
//!    with a back-off hint, the same contract as
//!    [`ccm2_serve::Response::Retry`].
//! 5. **Replicate** — after a served compile the router syncs the
//!    owning shard and fans the returned `CCM2DELT` batch to the
//!    surviving peers (see `crate::shard`).
//!
//! Shard deaths can also be *injected* deterministically: give the
//! router a [`FaultPlan`] and it queries site `shard:{id}#d{n}` before
//! dispatch `n` to shard `id`; a [`FaultKind::Panic`] there kills the
//! shard at exactly that dispatch — the chaos-drill analog of the
//! `task:`/`store:` sites inside a single compile.
//!
//! # The failure detector
//!
//! Waiting for a blocking round-trip error is a *reactive* detector: a
//! partitioned shard is only discovered when a request happens to route
//! to it. The router also runs a **proactive** suspicion clock:
//! [`FabricRouter::heartbeat_tick`] probes every ring member with a
//! [`Message::Ping`] and tracks consecutive misses per shard. Misses at
//! or past [`HeartbeatConfig::suspect_misses`] mark the shard
//! [`HealthState::Suspect`]; at [`HeartbeatConfig::evict_misses`] the
//! shard is evicted — the same [`fail_over`](FabricRouter::kill_shard)
//! path as a detected death, so its replica logs are absorbed and its
//! key range moves *before* a client request has to eat the error. A
//! later [`FabricRouter::admit_shard`] moves it through
//! [`HealthState::Rejoining`] (warm-up) back to [`HealthState::Alive`].
//!
//! The thresholds can also *adapt*: arm
//! [`FabricRouter::with_adaptive_heartbeat`] and the detector derives
//! the miss budget from observed Ping/Pong round-trip percentiles — a
//! fleet whose p95 RTT is far above its median gets a proportionally
//! longer rope before suspicion, because slow-but-alive is the expected
//! failure mode there. The static [`HeartbeatConfig`] stays the floor
//! (and the default: fixed cadence is the deterministic-test opt-out).
//!
//! Ticks are driven two ways: drills call `heartbeat_tick()` directly
//! (virtual time — deterministic), while a TCP deployment runs
//! [`start_heartbeats`] for a wall-clock cadence.
//!
//! # The eviction lease: who may run a failover
//!
//! With one router, eviction authority is implicit. With standbys (this
//! is what makes router loss survivable) it must be *exclusive*, or a
//! partitioned ex-leader can resurrect an evicted shard or double-
//! absorb a replica log — split-brain. Authority is an **epoch lease**:
//!
//! - [`FabricRouter::acquire_lease`] fans [`Message::LeaseGrant`] at
//!   `max(known epoch) + 1` to every member. A shard grants each epoch
//!   at most once; the router leads only with a **majority** of grants.
//!   Two leaders in one epoch would need two disjoint majorities —
//!   impossible — so every epoch has at most one leader.
//! - A leading router renews per heartbeat tick ([`Message::LeaseRenew`]);
//!   shards age the lease in *probe rounds answered* (deterministic
//!   virtual time, no wall clock). Control frames (`Absorb`,
//!   `DeltaShip` fan-out, pushed `Image`) carry the `(router, epoch)`
//!   stamp and shards refuse stale stamps with
//!   [`Message::EpochReject`] — the moment a partitioned ex-leader
//!   hears one it [demotes](RouterRole::Standby) and resyncs.
//! - A **standby** mirrors state instead of driving it: each tick it
//!   reloads the durable membership image (see
//!   `crate::durable::MembershipStore`), pings members (which also
//!   mirrors the lease view carried on [`Message::Pong`]) and promotes
//!   itself — one `acquire_lease` round — once a majority of answering
//!   shards report the lease older than [`LeaseConfig::expiry_ticks`].
//!
//! A single router with the default identity (`router 0`, epoch 0)
//! needs none of this machinery: shards start with a vacant lease and
//! adopt the first claimant, so the legacy standalone fabric works
//! unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ccm2_faults::{FaultKind, FaultPlan};
use ccm2_serve::CompileRequest;
use ccm2_support::hash::Fp128;
use parking_lot::{Condvar, Mutex};

use crate::durable::{MembershipImage, MembershipStore};
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::transport::Transport;
use crate::wire::{decode_frame, encode_frame, Message, WireOutcome, WireRequest, NO_ROUTER};

/// A full store image on the move: the delta cursor at the cut plus the
/// entries, coldest first (the payload of [`Message::Image`]).
type StoreImage = (u64, Vec<(Fp128, Vec<u8>)>);

/// Give up re-sending after this many consecutive invalid responses
/// from one shard and shed to the client's back-off protocol instead;
/// persistent damage at this density means the conduit is sick, not
/// unlucky.
const MAX_CHECKSUM_RETRIES: u32 = 8;

/// Back-off hint attached to a [`FabricResponse::Retry`] when no shard
/// supplied a better one (fleet-wide death, damaged conduit, router
/// shut down).
pub const DEFAULT_RETRY_AFTER_MS: u64 = 2;

/// The fabric's answer to one request. Mirrors
/// [`ccm2_serve::Response`], carrying the wire outcome.
#[derive(Clone, Debug)]
pub enum FabricResponse {
    /// Served (possibly by a survivor after failover, possibly joined
    /// onto an identical in-flight request).
    Done(WireOutcome),
    /// Shed — queue full, over quota, no live shards, or a conduit too
    /// damaged to trust. Back off for roughly `after_ms` and resubmit;
    /// the hint scales with the owning shard's queue depth, so a
    /// loaded fleet tells its clients to slow down instead of having
    /// them hammer the admission gate.
    Retry {
        /// Suggested back-off before resubmitting, in milliseconds.
        after_ms: u64,
    },
}

impl FabricResponse {
    /// The outcome, if served.
    pub fn outcome(&self) -> Option<&WireOutcome> {
        match self {
            FabricResponse::Done(out) => Some(out),
            FabricResponse::Retry { .. } => None,
        }
    }
}

/// Router counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// `serve` calls.
    pub dispatched: u64,
    /// Requests that joined an identical in-flight one at the router
    /// (never crossed the wire).
    pub joined: u64,
    /// Compile frames actually sent.
    pub routed_calls: u64,
    /// Admission rejections relayed from shards (queue full / quota).
    pub rejected: u64,
    /// Responses that failed frame validation, or shard-side reports of
    /// a damaged request frame; retried against the same shard.
    pub checksum_rejects: u64,
    /// Shards declared dead and removed from the ring.
    pub failovers: u64,
    /// Survivors that acknowledged an `Absorb` at failover.
    pub absorbs: u64,
    /// Non-empty delta batches fanned out to peers.
    pub ships: u64,
    /// Delta ops contained in those batches.
    pub shipped_ops: u64,
    /// Heartbeat probes sent.
    pub pings: u64,
    /// Valid heartbeat answers received.
    pub pongs: u64,
    /// Transitions into [`HealthState::Suspect`].
    pub suspects: u64,
    /// Shards evicted by the failure detector (subset of `failovers`).
    pub heartbeat_evictions: u64,
    /// Survivors whose gapped replica log was discarded at absorb and
    /// reconciled with a full store image from a healthy peer.
    pub gapped_reconciliations: u64,
    /// Shards admitted through the join warm-up (image head-ship +
    /// delta catch-up before ring ownership).
    pub warm_joins: u64,
    /// Store entries shipped to joiners during warm-up.
    pub warmup_entries: u64,
    /// Lease grants acknowledged by shards during `acquire_lease`.
    pub lease_grants: u64,
    /// Lease renewals acknowledged by shards.
    pub lease_renews: u64,
    /// `EpochReject` answers received — evidence this router's
    /// authority is (or was) stale.
    pub epoch_rejects: u64,
    /// Successful `acquire_lease` rounds (promotions to leader).
    pub promotions: u64,
    /// Demotions to standby after an `EpochReject` or an observed
    /// newer epoch.
    pub demotions: u64,
    /// Membership reloads from the durable store.
    pub membership_resyncs: u64,
}

/// Failure-detector tuning: consecutive heartbeat misses before a shard
/// is suspected, and before it is evicted from the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Misses at which the shard turns [`HealthState::Suspect`].
    pub suspect_misses: u32,
    /// Misses at which the shard is evicted (ring removal + absorb).
    /// Clamped to at least `suspect_misses`.
    pub evict_misses: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> HeartbeatConfig {
        HeartbeatConfig {
            suspect_misses: 1,
            evict_misses: 3,
        }
    }
}

/// Adaptive-cadence tuning (see [`FabricRouter::with_adaptive_heartbeat`]).
/// The derived thresholds scale the static [`HeartbeatConfig`] floor by
/// the observed p95/p50 Ping/Pong RTT ratio, clamped to the caps here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveCadence {
    /// RTT samples required before the detector adapts at all; below
    /// this it runs the static config verbatim.
    pub min_samples: usize,
    /// Upper clamp for the derived `suspect_misses`.
    pub max_suspect: u32,
    /// Upper clamp for the derived `evict_misses`.
    pub max_evict: u32,
}

impl Default for AdaptiveCadence {
    fn default() -> AdaptiveCadence {
        AdaptiveCadence {
            min_samples: 16,
            max_suspect: 4,
            max_evict: 8,
        }
    }
}

/// How many Ping/Pong RTT samples the adaptive detector retains
/// (oldest evicted first).
const RTT_WINDOW: usize = 256;

/// Which side of the lease a router is on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RouterRole {
    /// Holds (or, for the legacy single-router fabric, assumes) the
    /// eviction lease: runs the failure detector, evicts, admits,
    /// absorbs, fans out replication.
    #[default]
    Leader,
    /// Mirrors membership and the lease view; promotes itself when the
    /// lease expires. Serves client traffic (routing and dispatch need
    /// no authority) but never changes membership.
    Standby,
}

/// Lease tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseConfig {
    /// Probe rounds a shard may answer without seeing a renewal before
    /// a standby counts its lease as expired. Expiry is measured in
    /// the *shard's* virtual clock (its `lease_age` as mirrored on
    /// [`Message::Pong`]), so drills in virtual time and TCP
    /// deployments on the wall clock expire identically.
    pub expiry_ticks: u32,
}

impl Default for LeaseConfig {
    fn default() -> LeaseConfig {
        LeaseConfig { expiry_ticks: 3 }
    }
}

/// A shard's position in the failure-detector state machine
/// (alive → suspect → evicted → rejoining → alive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HealthState {
    /// Answering probes (or not yet probed).
    #[default]
    Alive,
    /// Missed probes, but below the eviction threshold; still on the
    /// ring and still serving whatever reaches it.
    Suspect,
    /// Evicted from the ring (by the detector, a transport error, or a
    /// drill kill). Not probed again until re-admitted.
    Evicted,
    /// Inside [`FabricRouter::admit_shard`]'s warm-up: reachable and
    /// catching up, but not yet owning keys.
    Rejoining,
}

#[derive(Clone, Copy, Debug, Default)]
struct Health {
    state: HealthState,
    misses: u32,
}

/// One shard's retry burn, as reported over [`Message::FetchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRetryBurn {
    /// Reporting shard.
    pub shard: u32,
    /// Compiles it has served.
    pub compiles: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests shed by the fairness quota.
    pub quota_shed: u64,
    /// Admission-retry attempts its serve loop has burned.
    pub retry_attempts_used: u64,
    /// Requests that recovered within the budget.
    pub retry_recovered: u64,
    /// Requests that exhausted the budget.
    pub retry_exhausted: u64,
    /// The configured per-request retry budget.
    pub retry_budget: u32,
    /// Queue depth at report time.
    pub queue_len: u32,
}

impl ShardRetryBurn {
    /// Budget left for the *average* in-flight request: the configured
    /// per-request budget minus the mean attempts burned per request
    /// that needed any. Saturates at zero.
    pub fn budget_remaining(&self) -> u32 {
        let strained = self.retry_recovered + self.retry_exhausted;
        if strained == 0 {
            return self.retry_budget;
        }
        let mean = (self.retry_attempts_used / strained).min(u64::from(u32::MAX)) as u32;
        self.retry_budget.saturating_sub(mean)
    }
}

/// Fleet-level retry-burn view (see [`FabricRouter::retry_burn`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetRetryBurn {
    /// Per-shard reports, ascending by shard id.
    pub shards: Vec<ShardRetryBurn>,
}

impl FleetRetryBurn {
    /// Total admission-retry attempts burned across the fleet.
    pub fn attempts_used(&self) -> u64 {
        self.shards.iter().map(|s| s.retry_attempts_used).sum()
    }

    /// Total requests that recovered within their budget.
    pub fn recovered(&self) -> u64 {
        self.shards.iter().map(|s| s.retry_recovered).sum()
    }

    /// Total requests that exhausted their budget.
    pub fn exhausted(&self) -> u64 {
        self.shards.iter().map(|s| s.retry_exhausted).sum()
    }
}

type Flight = Arc<(Mutex<Option<FabricResponse>>, Condvar)>;

/// See the module docs.
pub struct FabricRouter {
    transport: Arc<dyn Transport>,
    ring: Mutex<HashRing>,
    inflight: Mutex<HashMap<Fp128, Flight>>,
    stats: Mutex<FabricStats>,
    faults: Option<Arc<FaultPlan>>,
    dispatch_seq: AtomicU64,
    heartbeat: HeartbeatConfig,
    health: Mutex<HashMap<u32, Health>>,
    probe_seq: AtomicU64,
    router_id: u32,
    role: Mutex<RouterRole>,
    epoch: AtomicU64,
    known_epoch: AtomicU64,
    leadership_epochs: Mutex<Vec<u64>>,
    lease: LeaseConfig,
    membership: Option<Arc<MembershipStore>>,
    adaptive: Option<AdaptiveCadence>,
    rtt_samples: Mutex<Vec<u64>>,
    down: AtomicBool,
}

impl FabricRouter {
    /// A router over every shard `transport` can currently reach, with
    /// the default vnode count. Identity defaults to router 0, leading
    /// at epoch 0 — the legacy single-router configuration, which
    /// shards accept without any lease ceremony.
    pub fn new(transport: Arc<dyn Transport>) -> FabricRouter {
        let ring = HashRing::new(&transport.shards(), DEFAULT_VNODES);
        FabricRouter {
            transport,
            ring: Mutex::new(ring),
            inflight: Mutex::new(HashMap::new()),
            stats: Mutex::new(FabricStats::default()),
            faults: None,
            dispatch_seq: AtomicU64::new(0),
            heartbeat: HeartbeatConfig::default(),
            health: Mutex::new(HashMap::new()),
            probe_seq: AtomicU64::new(0),
            router_id: 0,
            role: Mutex::new(RouterRole::Leader),
            epoch: AtomicU64::new(0),
            known_epoch: AtomicU64::new(0),
            leadership_epochs: Mutex::new(Vec::new()),
            lease: LeaseConfig::default(),
            membership: None,
            adaptive: None,
            rtt_samples: Mutex::new(Vec::new()),
            down: AtomicBool::new(false),
        }
    }

    /// Arms deterministic shard-death injection (site
    /// `shard:{id}#d{n}`, kind [`FaultKind::Panic`]).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> FabricRouter {
        self.faults = Some(plan);
        self
    }

    /// Overrides the failure-detector thresholds.
    pub fn with_heartbeat(mut self, config: HeartbeatConfig) -> FabricRouter {
        self.heartbeat = HeartbeatConfig {
            suspect_misses: config.suspect_misses,
            evict_misses: config.evict_misses.max(config.suspect_misses),
        };
        self
    }

    /// Lets the detector scale its miss budget with observed Ping/Pong
    /// RTT percentiles (see the module docs). The static config from
    /// [`with_heartbeat`](FabricRouter::with_heartbeat) stays the
    /// floor; fixed cadence (the default) is the opt-out deterministic
    /// tests rely on.
    pub fn with_adaptive_heartbeat(mut self, cadence: AdaptiveCadence) -> FabricRouter {
        self.adaptive = Some(cadence);
        self
    }

    /// Names this router on the control plane. Stamps travel on every
    /// membership-changing frame, so two routers in one fleet must use
    /// distinct ids.
    pub fn with_identity(mut self, router_id: u32) -> FabricRouter {
        assert!(router_id != NO_ROUTER, "NO_ROUTER is reserved");
        self.router_id = router_id;
        self
    }

    /// Starts this router as a standby: it mirrors membership and the
    /// lease, serves traffic, and promotes itself only when the lease
    /// expires.
    pub fn as_standby(self) -> FabricRouter {
        *self.role.lock() = RouterRole::Standby;
        self
    }

    /// Overrides the lease tuning.
    pub fn with_lease(mut self, lease: LeaseConfig) -> FabricRouter {
        self.lease = LeaseConfig {
            expiry_ticks: lease.expiry_ticks.max(1),
        };
        self
    }

    /// Attaches the durable membership store every router of a fleet
    /// shares: leaders persist membership changes into it, standbys
    /// mirror from it each tick and promoted leaders restore from it.
    pub fn with_membership_store(mut self, store: Arc<MembershipStore>) -> FabricRouter {
        self.membership = Some(store);
        self
    }

    /// Router counters.
    pub fn stats(&self) -> FabricStats {
        *self.stats.lock()
    }

    /// Live shards on the ring, ascending.
    pub fn live_shards(&self) -> Vec<u32> {
        self.ring.lock().shards()
    }

    /// This router's control-plane identity.
    pub fn router_id(&self) -> u32 {
        self.router_id
    }

    /// Current role.
    pub fn role(&self) -> RouterRole {
        *self.role.lock()
    }

    /// The epoch this router last led under.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Every epoch this router has ever acquired leadership for, in
    /// acquisition order. Drills assert these sets are disjoint across
    /// routers — the no-two-leaders-per-epoch invariant.
    pub fn leadership_epochs(&self) -> Vec<u64> {
        self.leadership_epochs.lock().clone()
    }

    /// Models router death for drills: a shut-down router answers every
    /// `serve` with an immediate [`FabricResponse::Retry`] (clients
    /// fail over to another router) and its ticks are no-ops.
    pub fn shutdown(&self) {
        self.down.store(true, Ordering::Relaxed);
    }

    /// Whether [`shutdown`](FabricRouter::shutdown) was called.
    pub fn is_shutdown(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// The failure detector's current verdict on `shard`.
    pub fn health(&self, shard: u32) -> HealthState {
        self.health
            .lock()
            .get(&shard)
            .copied()
            .unwrap_or_default()
            .state
    }

    /// Records one observed Ping/Pong round trip (microseconds) for
    /// the adaptive detector. Public so transports and drills can feed
    /// synthetic RTT distributions.
    pub fn record_rtt(&self, micros: u64) {
        let mut samples = self.rtt_samples.lock();
        if samples.len() >= RTT_WINDOW {
            samples.remove(0);
        }
        samples.push(micros);
    }

    /// The thresholds the detector will use this tick: the static
    /// config unless adaptive cadence is armed *and* warmed up, in
    /// which case the miss budget stretches by the p95/p50 RTT ratio
    /// (clamped to the [`AdaptiveCadence`] caps).
    pub fn effective_heartbeat(&self) -> HeartbeatConfig {
        let Some(cadence) = self.adaptive else {
            return self.heartbeat;
        };
        let mut samples = self.rtt_samples.lock().clone();
        if samples.len() < cadence.min_samples.max(2) {
            return self.heartbeat;
        }
        samples.sort_unstable();
        let p50 = samples[samples.len() / 2].max(1);
        let p95 = samples[(samples.len() * 95) / 100].max(1);
        let ratio = p95.div_ceil(p50).min(u64::from(cadence.max_suspect)) as u32;
        let suspect = ratio
            .max(self.heartbeat.suspect_misses)
            .min(cadence.max_suspect.max(self.heartbeat.suspect_misses));
        let evict = (suspect + 1)
            .max(self.heartbeat.evict_misses)
            .min(cadence.max_evict.max(self.heartbeat.evict_misses));
        HeartbeatConfig {
            suspect_misses: suspect,
            evict_misses: evict,
        }
    }

    fn note_epoch(&self, seen: u64) {
        self.known_epoch.fetch_max(seen, Ordering::Relaxed);
    }

    /// Claims leadership: fans [`Message::LeaseGrant`] at one past the
    /// highest epoch this router has seen, and promotes itself iff a
    /// **majority** of the membership grants. Quorum intersection makes
    /// two leaders in one epoch impossible. Returns whether leadership
    /// was acquired.
    pub fn acquire_lease(&self) -> bool {
        if self.is_shutdown() {
            return false;
        }
        self.resync_membership();
        let members = self.ring.lock().shards();
        if members.is_empty() {
            return false;
        }
        let epoch = self
            .known_epoch
            .load(Ordering::Relaxed)
            .max(self.epoch.load(Ordering::Relaxed))
            + 1;
        let grant = encode_frame(&Message::LeaseGrant {
            router: self.router_id,
            epoch,
        });
        let mut granted = 0usize;
        for &shard in &members {
            match self.transport.call(shard, &grant).map(|b| decode_frame(&b)) {
                Ok(Some(Message::Ack)) => {
                    granted += 1;
                    self.stats.lock().lease_grants += 1;
                }
                Ok(Some(Message::EpochReject { epoch: seen, .. })) => {
                    self.note_epoch(seen);
                    self.stats.lock().epoch_rejects += 1;
                }
                _ => {}
            }
        }
        self.note_epoch(epoch);
        if granted * 2 > members.len() {
            self.epoch.store(epoch, Ordering::Relaxed);
            *self.role.lock() = RouterRole::Leader;
            self.leadership_epochs.lock().push(epoch);
            self.stats.lock().promotions += 1;
            self.persist_membership();
            true
        } else {
            false
        }
    }

    /// Demotes to standby (after an `EpochReject` or an observed newer
    /// epoch) and resyncs membership from the durable store — the
    /// ex-leader's local ring may carry unauthorized evictions.
    fn demote(&self) {
        *self.role.lock() = RouterRole::Standby;
        self.stats.lock().demotions += 1;
        self.resync_membership();
    }

    /// Reloads ring membership from the shared durable store, if one is
    /// attached and holds a valid image. Public so drills can force a
    /// healed router to converge without waiting for its next tick.
    pub fn resync_membership(&self) {
        let Some(store) = &self.membership else {
            return;
        };
        let Ok(loaded) = store.load_latest() else {
            return;
        };
        let Some(image) = loaded.image else {
            return;
        };
        self.note_epoch(image.epoch);
        *self.ring.lock() = HashRing::new(&image.members, DEFAULT_VNODES);
        let mut health = self.health.lock();
        for &m in &image.members {
            let h = health.entry(m).or_default();
            if h.state == HealthState::Evicted {
                h.state = HealthState::Alive;
                h.misses = 0;
            }
        }
        self.stats.lock().membership_resyncs += 1;
    }

    /// Persists the current membership under this router's epoch.
    fn persist_membership(&self) {
        let Some(store) = &self.membership else {
            return;
        };
        let image = MembershipImage {
            epoch: self.epoch.load(Ordering::Relaxed),
            leader: self.router_id,
            members: self.ring.lock().shards(),
        };
        let _ = store.save(&image);
    }

    /// Renew-barrier: confirms this router still holds the lease by
    /// renewing against every member *before* a membership change. Any
    /// `EpochReject` demotes and returns `false` — closing the window
    /// where a partitioned ex-leader with no pending traffic would
    /// otherwise admit or evict on stale authority.
    fn confirm_lease(&self) -> bool {
        let members = self.ring.lock().shards();
        let renew = encode_frame(&Message::LeaseRenew {
            router: self.router_id,
            epoch: self.epoch.load(Ordering::Relaxed),
        });
        for &shard in &members {
            match self.transport.call(shard, &renew).map(|b| decode_frame(&b)) {
                Ok(Some(Message::Ack)) => self.stats.lock().lease_renews += 1,
                Ok(Some(Message::EpochReject { epoch: seen, .. })) => {
                    self.note_epoch(seen);
                    self.stats.lock().epoch_rejects += 1;
                    self.demote();
                    return false;
                }
                _ => {}
            }
        }
        true
    }

    /// One failure-detector round, dispatched by role. Leaders probe,
    /// renew the lease, and evict (ids evicted this round are
    /// returned); standbys probe to mirror the lease view and promote
    /// themselves when it expires. Deterministic: drills drive it in
    /// virtual time, [`start_heartbeats`] drives it on the wall clock
    /// over TCP.
    pub fn heartbeat_tick(&self) -> Vec<u32> {
        if self.is_shutdown() {
            return Vec::new();
        }
        match self.role() {
            RouterRole::Leader => self.leader_tick(),
            RouterRole::Standby => {
                self.standby_tick();
                Vec::new()
            }
        }
    }

    /// The leading router's round: nonce'd pings advance the suspicion
    /// clock, renewals keep the lease fresh, and any `EpochReject`
    /// demotes *before* an eviction can run on stale authority.
    fn leader_tick(&self) -> Vec<u32> {
        if self.ring.lock().is_empty() {
            // A partitioned ex-leader can evict its whole view; the
            // durable image is the way back.
            self.resync_membership();
        }
        let members = self.ring.lock().shards();
        let cadence = self.effective_heartbeat();
        let mut evicted = Vec::new();
        let mut answered = Vec::new();
        let mut to_evict = Vec::new();
        for shard in members {
            let nonce = self.probe_seq.fetch_add(1, Ordering::Relaxed);
            self.stats.lock().pings += 1;
            let ping = encode_frame(&Message::Ping { nonce });
            let sent = std::time::Instant::now();
            let pong = match self.transport.call(shard, &ping) {
                Ok(bytes) => match decode_frame(&bytes) {
                    Some(Message::Pong {
                        shard: s,
                        nonce: n,
                        lease_epoch,
                        lease_router,
                        lease_age: _,
                    }) if s == shard && n == nonce => Some((lease_epoch, lease_router)),
                    _ => None,
                },
                Err(_) => None,
            };
            if let Some((lease_epoch, lease_router)) = pong {
                self.record_rtt(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                self.stats.lock().pongs += 1;
                self.note_epoch(lease_epoch);
                if lease_epoch > self.epoch.load(Ordering::Relaxed)
                    && lease_router != self.router_id
                {
                    // Someone newer leads; stand down before touching
                    // membership.
                    self.demote();
                    return Vec::new();
                }
                let mut health = self.health.lock();
                let h = health.entry(shard).or_default();
                h.misses = 0;
                h.state = HealthState::Alive;
                answered.push(shard);
                continue;
            }
            let (suspect_transition, evict) = {
                let mut health = self.health.lock();
                let h = health.entry(shard).or_default();
                h.misses += 1;
                let evict = h.misses >= cadence.evict_misses;
                let suspect = h.misses >= cadence.suspect_misses && h.state == HealthState::Alive;
                if suspect {
                    h.state = HealthState::Suspect;
                }
                (suspect, evict)
            };
            if suspect_transition {
                self.stats.lock().suspects += 1;
            }
            if evict {
                to_evict.push(shard);
            }
        }
        // Renew on every member that answered; a single EpochReject
        // means the lease moved on and the pending evictions are not
        // ours to run.
        let renew = encode_frame(&Message::LeaseRenew {
            router: self.router_id,
            epoch: self.epoch.load(Ordering::Relaxed),
        });
        for &shard in &answered {
            match self.transport.call(shard, &renew).map(|b| decode_frame(&b)) {
                Ok(Some(Message::Ack)) => self.stats.lock().lease_renews += 1,
                Ok(Some(Message::EpochReject { epoch: seen, .. })) => {
                    self.note_epoch(seen);
                    self.stats.lock().epoch_rejects += 1;
                    self.demote();
                    return Vec::new();
                }
                _ => {}
            }
        }
        for shard in to_evict {
            self.stats.lock().heartbeat_evictions += 1;
            self.fail_over(shard);
            evicted.push(shard);
        }
        evicted
    }

    /// A standby's round: mirror the durable membership, ping members
    /// to mirror the lease view, and promote once a majority of the
    /// answering shards report the lease expired.
    fn standby_tick(&self) {
        self.resync_membership();
        let members = self.ring.lock().shards();
        let mut answered = 0usize;
        let mut expired = 0usize;
        for &shard in &members {
            let nonce = self.probe_seq.fetch_add(1, Ordering::Relaxed);
            self.stats.lock().pings += 1;
            let ping = encode_frame(&Message::Ping { nonce });
            let sent = std::time::Instant::now();
            if let Ok(bytes) = self.transport.call(shard, &ping) {
                if let Some(Message::Pong {
                    shard: s,
                    nonce: n,
                    lease_epoch,
                    lease_router: _,
                    lease_age,
                }) = decode_frame(&bytes)
                {
                    if s == shard && n == nonce {
                        self.record_rtt(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                        self.stats.lock().pongs += 1;
                        self.note_epoch(lease_epoch);
                        answered += 1;
                        if lease_age >= self.lease.expiry_ticks {
                            expired += 1;
                        }
                    }
                }
            }
        }
        if answered > 0 && expired * 2 > members.len() {
            self.acquire_lease();
        }
    }

    /// Adds a shard to the ring (it must already be reachable through
    /// the transport), warming it up first so its earliest requests hit
    /// instead of recompiling:
    ///
    /// 1. **Renew-barrier** — the lease is confirmed against every
    ///    member first; a stale router aborts (returns `false`) instead
    ///    of resurrecting a shard the live leader evicted.
    /// 2. **Head-ship** — a full store image is pulled from *every*
    ///    ring member that answers [`Message::FetchImage`] and pushed
    ///    to the joiner (`SharedStore::import` merges, preserving LRU
    ///    order). The ring hands the joiner keys from all members, so
    ///    a single member's image would leave most of them cold.
    /// 3. **Catch-up** — every ring member is synced; the resulting
    ///    `CCM2DELT` batches fan out to the ordinary peers *and* the
    ///    joiner, so deltas pending since the last replication epoch
    ///    reach it too (parked in its replica logs, per origin).
    /// 4. Only then does the ring take the joiner — keys move to a
    ///    shard that can already serve them warm.
    pub fn admit_shard(&self, shard: u32) -> bool {
        if self.is_shutdown() {
            return false;
        }
        let sources: Vec<u32> = {
            let ring = self.ring.lock();
            if ring.contains(shard) {
                return true;
            }
            ring.shards()
        };
        if !self.confirm_lease() {
            return false;
        }
        if !sources.is_empty() {
            self.health.lock().entry(shard).or_default().state = HealthState::Rejoining;
            let mut shipped = None;
            for &src in &sources {
                if let Some((delta_seq, entries)) = self.fetch_image(src) {
                    let n = entries.len() as u64;
                    if self.push_image(shard, delta_seq, entries) {
                        shipped = Some(shipped.unwrap_or(0) + n);
                    }
                }
            }
            for &src in &sources {
                self.replication_epoch(src, Some(shard));
            }
            if let Some(n) = shipped {
                let mut stats = self.stats.lock();
                stats.warm_joins += 1;
                stats.warmup_entries += n;
            }
        }
        self.ring.lock().add(shard);
        {
            let mut health = self.health.lock();
            let h = health.entry(shard).or_default();
            h.state = HealthState::Alive;
            h.misses = 0;
        }
        self.persist_membership();
        true
    }

    /// Drill hook: kill `shard` now — drop its transport endpoint,
    /// remove it from the ring, and have the survivors absorb its
    /// replica logs. Idempotent.
    pub fn kill_shard(&self, shard: u32) {
        self.transport.kill(shard);
        self.fail_over(shard);
    }

    /// Serves one request through the fleet. Blocks until served, shed,
    /// or joined onto an identical in-flight request.
    pub fn serve(&self, req: &CompileRequest) -> FabricResponse {
        self.stats.lock().dispatched += 1;
        if self.is_shutdown() {
            return FabricResponse::Retry {
                after_ms: DEFAULT_RETRY_AFTER_MS,
            };
        }
        let fp = req.fingerprint();
        let flight: Flight = {
            let mut map = self.inflight.lock();
            if let Some(existing) = map.get(&fp) {
                let flight = Arc::clone(existing);
                drop(map);
                self.stats.lock().joined += 1;
                let mut slot = flight.0.lock();
                while slot.is_none() {
                    flight.1.wait(&mut slot);
                }
                return slot.clone().expect("flight published");
            }
            let flight: Flight = Arc::new((Mutex::new(None), Condvar::new()));
            map.insert(fp, Arc::clone(&flight));
            flight
        };

        let resp = self.dispatch(req, fp);
        // A `Retry` fans out to the joiners too: they are copies of the
        // same request, so whatever made the leader back off (shed,
        // fleet-wide death) applies to every one of them.
        *flight.0.lock() = Some(resp.clone());
        flight.1.notify_all();
        self.inflight.lock().remove(&fp);
        resp
    }

    /// Serves a whole batch concurrently (one thread per request, the
    /// drill/test harness path) and returns responses in order.
    pub fn serve_batch(&self, requests: &[CompileRequest]) -> Vec<FabricResponse> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|req| scope.spawn(move || self.serve(req)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve thread panicked"))
                .collect()
        })
    }

    fn dispatch(&self, req: &CompileRequest, fp: Fp128) -> FabricResponse {
        let frame = encode_frame(&Message::Compile(WireRequest::from_request(req)));
        let mut checksum_retries = 0u32;
        loop {
            let Some(shard) = self.ring.lock().route(fp) else {
                return FabricResponse::Retry {
                    after_ms: DEFAULT_RETRY_AFTER_MS,
                }; // fleet-wide death
            };
            let n = self.dispatch_seq.fetch_add(1, Ordering::Relaxed);
            if let Some(plan) = &self.faults {
                if matches!(
                    plan.at(&format!("shard:{shard}#d{n}")),
                    Some(FaultKind::Panic)
                ) {
                    self.transport.kill(shard);
                    self.fail_over(shard);
                    continue;
                }
            }
            self.stats.lock().routed_calls += 1;
            let bytes = match self.transport.call(shard, &frame) {
                Ok(bytes) => bytes,
                Err(_) => {
                    self.fail_over(shard);
                    continue;
                }
            };
            match decode_frame(&bytes) {
                Some(Message::Outcome(out)) => {
                    self.replicate_from(shard);
                    return FabricResponse::Done(out);
                }
                Some(Message::Reject { reason, .. }) if reason.starts_with("bad") => {
                    // The shard saw a damaged request frame; transit
                    // damage, not shard damage — same shard, try again.
                    self.stats.lock().checksum_rejects += 1;
                    checksum_retries += 1;
                    if checksum_retries > MAX_CHECKSUM_RETRIES {
                        return FabricResponse::Retry {
                            after_ms: DEFAULT_RETRY_AFTER_MS,
                        };
                    }
                }
                Some(Message::Reject { retry_after_ms, .. }) => {
                    self.stats.lock().rejected += 1;
                    return FabricResponse::Retry {
                        after_ms: retry_after_ms.max(1),
                    };
                }
                Some(_) | None => {
                    // Damaged or nonsensical response frame.
                    self.stats.lock().checksum_rejects += 1;
                    checksum_retries += 1;
                    if checksum_retries > MAX_CHECKSUM_RETRIES {
                        return FabricResponse::Retry {
                            after_ms: DEFAULT_RETRY_AFTER_MS,
                        };
                    }
                }
            }
        }
    }

    /// One replication epoch: sync `shard` for its pending deltas and
    /// fan the batch to every surviving peer. Best-effort — replication
    /// is warmth (see `crate::shard`), so errors are swallowed and cost
    /// at most a recompile after a later failover.
    fn replicate_from(&self, shard: u32) {
        self.replication_epoch(shard, None);
    }

    /// The epoch body: `extra_peer` (a joiner mid-warm-up, not yet on
    /// the ring) receives the fan-out alongside the ring peers. The
    /// fan-out carries this router's `(router, epoch)` stamp — a peer
    /// holding a newer lease answers `EpochReject`, which demotes this
    /// router on the spot (replication is how a partitioned dueling
    /// leader usually learns it lost).
    fn replication_epoch(&self, shard: u32, extra_peer: Option<u32>) {
        let sync = encode_frame(&Message::Sync);
        let Ok(bytes) = self.transport.call(shard, &sync) else {
            return;
        };
        let Some(Message::DeltaShip {
            from_shard, batch, ..
        }) = decode_frame(&bytes)
        else {
            return;
        };
        let Some((_base, ops)) = ccm2_incr::decode_delta(&batch) else {
            return;
        };
        if ops.is_empty() {
            return;
        }
        let mut peers: Vec<u32> = self
            .ring
            .lock()
            .shards()
            .into_iter()
            .filter(|&s| s != shard)
            .collect();
        if let Some(extra) = extra_peer {
            if extra != shard && !peers.contains(&extra) {
                peers.push(extra);
            }
        }
        let ship = encode_frame(&Message::DeltaShip {
            from_shard,
            batch,
            router: self.router_id,
            epoch: self.epoch.load(Ordering::Relaxed),
        });
        for peer in peers {
            if let Ok(bytes) = self.transport.call(peer, &ship) {
                if let Some(Message::EpochReject { epoch: seen, .. }) = decode_frame(&bytes) {
                    self.note_epoch(seen);
                    self.stats.lock().epoch_rejects += 1;
                    self.demote();
                    return;
                }
            }
        }
        let mut stats = self.stats.lock();
        stats.ships += 1;
        stats.shipped_ops += ops.len() as u64;
    }

    /// Pulls a full store image from `shard`.
    fn fetch_image(&self, shard: u32) -> Option<StoreImage> {
        let fetch = encode_frame(&Message::FetchImage);
        let bytes = self.transport.call(shard, &fetch).ok()?;
        match decode_frame(&bytes) {
            Some(Message::Image {
                delta_seq, entries, ..
            }) => Some((delta_seq, entries)),
            _ => None,
        }
    }

    /// Pushes a full store image to `shard` under this router's stamp;
    /// `true` on its `Ack`.
    fn push_image(&self, shard: u32, delta_seq: u64, entries: Vec<(Fp128, Vec<u8>)>) -> bool {
        let image = encode_frame(&Message::Image {
            delta_seq,
            entries,
            router: self.router_id,
            epoch: self.epoch.load(Ordering::Relaxed),
        });
        match self.transport.call(shard, &image).map(|b| decode_frame(&b)) {
            Ok(Some(Message::Ack)) => true,
            Ok(Some(Message::EpochReject { epoch: seen, .. })) => {
                self.note_epoch(seen);
                self.stats.lock().epoch_rejects += 1;
                false
            }
            _ => false,
        }
    }

    /// Aggregates the fleet's retry burn: every ring member answers
    /// [`Message::FetchStats`] with its serve-loop retry counters and
    /// queue depth. Shards that fail to answer are simply absent.
    pub fn retry_burn(&self) -> FleetRetryBurn {
        let fetch = encode_frame(&Message::FetchStats);
        let mut shards = Vec::new();
        for shard in self.ring.lock().shards() {
            let Ok(bytes) = self.transport.call(shard, &fetch) else {
                continue;
            };
            if let Some(Message::StatsReport {
                shard: s,
                compiles,
                shed,
                quota_shed,
                retry_attempts_used,
                retry_recovered,
                retry_exhausted,
                retry_budget,
                queue_len,
            }) = decode_frame(&bytes)
            {
                shards.push(ShardRetryBurn {
                    shard: s,
                    compiles,
                    shed,
                    quota_shed,
                    retry_attempts_used,
                    retry_recovered,
                    retry_exhausted,
                    retry_budget,
                    queue_len,
                });
            }
        }
        shards.sort_by_key(|s| s.shard);
        FleetRetryBurn { shards }
    }

    /// Declares `shard` dead: off the ring, survivors absorb their
    /// replica logs for it. A survivor that reports its log *gapped*
    /// ([`Message::AbsorbDone`]) discarded it rather than replay a
    /// hole; the router reconciles it with a full store image pulled
    /// from a survivor that absorbed cleanly. Idempotent under races —
    /// only the caller that actually removes the shard runs the absorb
    /// fan-out.
    ///
    /// Lease rules: the absorb fan-out is a membership change, so it
    /// carries this router's stamp and any `EpochReject` demotes and
    /// aborts. A **standby** never fans out at all — it only routes
    /// around the unreachable shard locally (its next tick resyncs the
    /// membership the leader vouches for).
    fn fail_over(&self, shard: u32) {
        let survivors = {
            let mut ring = self.ring.lock();
            if !ring.remove(shard) {
                return;
            }
            ring.shards()
        };
        self.stats.lock().failovers += 1;
        self.health.lock().entry(shard).or_default().state = HealthState::Evicted;
        if self.role() == RouterRole::Standby {
            return;
        }
        let absorb = encode_frame(&Message::Absorb {
            dead_shard: shard,
            router: self.router_id,
            epoch: self.epoch.load(Ordering::Relaxed),
        });
        let mut gapped_survivors = Vec::new();
        let mut witnessed = 0usize;
        for &s in &survivors {
            if let Ok(bytes) = self.transport.call(s, &absorb) {
                match decode_frame(&bytes) {
                    Some(Message::AbsorbDone { gapped, .. }) => {
                        self.stats.lock().absorbs += 1;
                        witnessed += 1;
                        if gapped {
                            gapped_survivors.push(s);
                        }
                    }
                    // Pre-v2 shards answered a bare Ack; still a
                    // completed absorb.
                    Some(Message::Ack) => {
                        self.stats.lock().absorbs += 1;
                        witnessed += 1;
                    }
                    Some(Message::EpochReject { epoch: seen, .. }) => {
                        // Our authority is stale: this eviction was
                        // never ours to run. Stand down and converge
                        // on the durable membership.
                        self.note_epoch(seen);
                        self.stats.lock().epoch_rejects += 1;
                        self.demote();
                        return;
                    }
                    _ => {}
                }
            }
        }
        // An eviction becomes durable only when a surviving shard
        // witnessed it. A fully partitioned ex-leader evicting its
        // whole (unreachable) view gets zero acknowledgements and must
        // not clobber the shared membership image the standby and the
        // next leader converge on.
        if witnessed > 0 {
            self.persist_membership();
        }
        if gapped_survivors.is_empty() {
            return;
        }
        // Full-image reconciliation: a healthy survivor's store covers
        // everything the gapped logs lost (and more).
        let image = survivors
            .iter()
            .filter(|s| !gapped_survivors.contains(s))
            .find_map(|&s| self.fetch_image(s));
        let Some((delta_seq, entries)) = image else {
            return; // every survivor gapped: nothing authoritative left
        };
        for g in gapped_survivors {
            if self.push_image(g, delta_seq, entries.clone()) {
                self.stats.lock().gapped_reconciliations += 1;
            }
        }
    }
}

/// A running wall-clock heartbeat driver (TCP deployments). Stops on
/// [`HeartbeatHandle::stop`] or drop.
pub struct HeartbeatHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatHandle {
    /// Signals the driver thread and joins it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Runs [`FabricRouter::heartbeat_tick`] every `period` on a background
/// thread until the handle is stopped or dropped. The wall-clock
/// counterpart of a drill's virtual-time tick loop.
pub fn start_heartbeats(router: Arc<FabricRouter>, period: std::time::Duration) -> HeartbeatHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        while !flag.load(Ordering::Relaxed) {
            router.heartbeat_tick();
            // Sleep in small slices so stop() never waits a full period.
            let mut left = period;
            let slice = std::time::Duration::from_millis(5);
            while !left.is_zero() && !flag.load(Ordering::Relaxed) {
                let d = left.min(slice);
                std::thread::sleep(d);
                left -= d;
            }
        }
    });
    HeartbeatHandle {
        stop,
        thread: Some(thread),
    }
}
