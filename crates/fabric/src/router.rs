//! The fleet's front door: consistent-hash routing, router-level
//! single-flight, and failover.
//!
//! [`FabricRouter::serve`] takes an ordinary [`CompileRequest`] and
//! returns a [`FabricResponse`]:
//!
//! 1. **Route** — the request fingerprint (the same single-flight key
//!    the standalone service uses) lands on a shard via the
//!    [`HashRing`]. Identical requests therefore always hit the same
//!    shard, so the shard-level single-flight keeps deduplicating
//!    across clients even in a fleet.
//! 2. **Single-flight at the router** — concurrent identical requests
//!    don't even cross the wire twice: later arrivals park on the
//!    in-flight entry and share the leader's response.
//! 3. **Dispatch** — one `CCM2WIRE` compile frame. A response that
//!    fails frame validation is retried against the *same* shard (the
//!    checksum plane caught damage in transit; the shard is fine). A
//!    transport error is shard death.
//! 4. **Failover** — the dead shard leaves the ring (its key range
//!    spreads over the survivors — see the ring's minimal-disruption
//!    guarantee), every survivor is told to [`absorb`](crate::wire::Message::Absorb)
//!    the replica log it holds for the dead shard, and the dispatch
//!    loop re-routes. An admitted request is therefore never lost to a
//!    shard death: it either completes on a survivor or (all shards
//!    dead / shed at admission) surfaces as [`FabricResponse::Retry`],
//!    the same back-off contract as [`ccm2_serve::Response::Retry`].
//! 5. **Replicate** — after a served compile the router syncs the
//!    owning shard and fans the returned `CCM2DELT` batch to the
//!    surviving peers (see `crate::shard`).
//!
//! Shard deaths can also be *injected* deterministically: give the
//! router a [`FaultPlan`] and it queries site `shard:{id}#d{n}` before
//! dispatch `n` to shard `id`; a [`FaultKind::Panic`] there kills the
//! shard at exactly that dispatch — the chaos-drill analog of the
//! `task:`/`store:` sites inside a single compile.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ccm2_faults::{FaultKind, FaultPlan};
use ccm2_serve::CompileRequest;
use ccm2_support::hash::Fp128;
use parking_lot::{Condvar, Mutex};

use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::transport::Transport;
use crate::wire::{decode_frame, encode_frame, Message, WireOutcome, WireRequest};

/// Give up re-sending after this many consecutive invalid responses
/// from one shard and shed to the client's back-off protocol instead;
/// persistent damage at this density means the conduit is sick, not
/// unlucky.
const MAX_CHECKSUM_RETRIES: u32 = 8;

/// The fabric's answer to one request. Mirrors
/// [`ccm2_serve::Response`], carrying the wire outcome.
#[derive(Clone, Debug)]
pub enum FabricResponse {
    /// Served (possibly by a survivor after failover, possibly joined
    /// onto an identical in-flight request).
    Done(WireOutcome),
    /// Shed — queue full, over quota, no live shards, or a conduit too
    /// damaged to trust. Back off and resubmit.
    Retry,
}

impl FabricResponse {
    /// The outcome, if served.
    pub fn outcome(&self) -> Option<&WireOutcome> {
        match self {
            FabricResponse::Done(out) => Some(out),
            FabricResponse::Retry => None,
        }
    }
}

/// Router counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// `serve` calls.
    pub dispatched: u64,
    /// Requests that joined an identical in-flight one at the router
    /// (never crossed the wire).
    pub joined: u64,
    /// Compile frames actually sent.
    pub routed_calls: u64,
    /// Admission rejections relayed from shards (queue full / quota).
    pub rejected: u64,
    /// Responses that failed frame validation, or shard-side reports of
    /// a damaged request frame; retried against the same shard.
    pub checksum_rejects: u64,
    /// Shards declared dead and removed from the ring.
    pub failovers: u64,
    /// Survivors that acknowledged an `Absorb` at failover.
    pub absorbs: u64,
    /// Non-empty delta batches fanned out to peers.
    pub ships: u64,
    /// Delta ops contained in those batches.
    pub shipped_ops: u64,
}

type Flight = Arc<(Mutex<Option<FabricResponse>>, Condvar)>;

/// See the module docs.
pub struct FabricRouter {
    transport: Arc<dyn Transport>,
    ring: Mutex<HashRing>,
    inflight: Mutex<HashMap<Fp128, Flight>>,
    stats: Mutex<FabricStats>,
    faults: Option<Arc<FaultPlan>>,
    dispatch_seq: AtomicU64,
}

impl FabricRouter {
    /// A router over every shard `transport` can currently reach, with
    /// the default vnode count.
    pub fn new(transport: Arc<dyn Transport>) -> FabricRouter {
        let ring = HashRing::new(&transport.shards(), DEFAULT_VNODES);
        FabricRouter {
            transport,
            ring: Mutex::new(ring),
            inflight: Mutex::new(HashMap::new()),
            stats: Mutex::new(FabricStats::default()),
            faults: None,
            dispatch_seq: AtomicU64::new(0),
        }
    }

    /// Arms deterministic shard-death injection (site
    /// `shard:{id}#d{n}`, kind [`FaultKind::Panic`]).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> FabricRouter {
        self.faults = Some(plan);
        self
    }

    /// Router counters.
    pub fn stats(&self) -> FabricStats {
        *self.stats.lock()
    }

    /// Live shards on the ring, ascending.
    pub fn live_shards(&self) -> Vec<u32> {
        self.ring.lock().shards()
    }

    /// Adds a shard to the ring (it must already be reachable through
    /// the transport). Keys move only *to* the newcomer.
    pub fn admit_shard(&self, shard: u32) {
        self.ring.lock().add(shard);
    }

    /// Drill hook: kill `shard` now — drop its transport endpoint,
    /// remove it from the ring, and have the survivors absorb its
    /// replica logs. Idempotent.
    pub fn kill_shard(&self, shard: u32) {
        self.transport.kill(shard);
        self.fail_over(shard);
    }

    /// Serves one request through the fleet. Blocks until served, shed,
    /// or joined onto an identical in-flight request.
    pub fn serve(&self, req: &CompileRequest) -> FabricResponse {
        self.stats.lock().dispatched += 1;
        let fp = req.fingerprint();
        let flight: Flight = {
            let mut map = self.inflight.lock();
            if let Some(existing) = map.get(&fp) {
                let flight = Arc::clone(existing);
                drop(map);
                self.stats.lock().joined += 1;
                let mut slot = flight.0.lock();
                while slot.is_none() {
                    flight.1.wait(&mut slot);
                }
                return slot.clone().expect("flight published");
            }
            let flight: Flight = Arc::new((Mutex::new(None), Condvar::new()));
            map.insert(fp, Arc::clone(&flight));
            flight
        };

        let resp = self.dispatch(req, fp);
        // A `Retry` fans out to the joiners too: they are copies of the
        // same request, so whatever made the leader back off (shed,
        // fleet-wide death) applies to every one of them.
        *flight.0.lock() = Some(resp.clone());
        flight.1.notify_all();
        self.inflight.lock().remove(&fp);
        resp
    }

    /// Serves a whole batch concurrently (one thread per request, the
    /// drill/test harness path) and returns responses in order.
    pub fn serve_batch(&self, requests: &[CompileRequest]) -> Vec<FabricResponse> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|req| scope.spawn(move || self.serve(req)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve thread panicked"))
                .collect()
        })
    }

    fn dispatch(&self, req: &CompileRequest, fp: Fp128) -> FabricResponse {
        let frame = encode_frame(&Message::Compile(WireRequest::from_request(req)));
        let mut checksum_retries = 0u32;
        loop {
            let Some(shard) = self.ring.lock().route(fp) else {
                return FabricResponse::Retry; // fleet-wide death
            };
            let n = self.dispatch_seq.fetch_add(1, Ordering::Relaxed);
            if let Some(plan) = &self.faults {
                if matches!(
                    plan.at(&format!("shard:{shard}#d{n}")),
                    Some(FaultKind::Panic)
                ) {
                    self.transport.kill(shard);
                    self.fail_over(shard);
                    continue;
                }
            }
            self.stats.lock().routed_calls += 1;
            let bytes = match self.transport.call(shard, &frame) {
                Ok(bytes) => bytes,
                Err(_) => {
                    self.fail_over(shard);
                    continue;
                }
            };
            match decode_frame(&bytes) {
                Some(Message::Outcome(out)) => {
                    self.replicate_from(shard);
                    return FabricResponse::Done(out);
                }
                Some(Message::Reject(reason)) if reason.starts_with("bad") => {
                    // The shard saw a damaged request frame; transit
                    // damage, not shard damage — same shard, try again.
                    self.stats.lock().checksum_rejects += 1;
                    checksum_retries += 1;
                    if checksum_retries > MAX_CHECKSUM_RETRIES {
                        return FabricResponse::Retry;
                    }
                }
                Some(Message::Reject(_)) => {
                    self.stats.lock().rejected += 1;
                    return FabricResponse::Retry;
                }
                Some(_) | None => {
                    // Damaged or nonsensical response frame.
                    self.stats.lock().checksum_rejects += 1;
                    checksum_retries += 1;
                    if checksum_retries > MAX_CHECKSUM_RETRIES {
                        return FabricResponse::Retry;
                    }
                }
            }
        }
    }

    /// One replication epoch: sync `shard` for its pending deltas and
    /// fan the batch to every surviving peer. Best-effort — replication
    /// is warmth (see `crate::shard`), so errors are swallowed and cost
    /// at most a recompile after a later failover.
    fn replicate_from(&self, shard: u32) {
        let sync = encode_frame(&Message::Sync);
        let Ok(bytes) = self.transport.call(shard, &sync) else {
            return;
        };
        let Some(Message::DeltaShip { from_shard, batch }) = decode_frame(&bytes) else {
            return;
        };
        let Some((_base, ops)) = ccm2_incr::decode_delta(&batch) else {
            return;
        };
        if ops.is_empty() {
            return;
        }
        let peers: Vec<u32> = self
            .ring
            .lock()
            .shards()
            .into_iter()
            .filter(|&s| s != shard)
            .collect();
        let ship = encode_frame(&Message::DeltaShip { from_shard, batch });
        for peer in peers {
            let _ = self.transport.call(peer, &ship);
        }
        let mut stats = self.stats.lock();
        stats.ships += 1;
        stats.shipped_ops += ops.len() as u64;
    }

    /// Declares `shard` dead: off the ring, survivors absorb their
    /// replica logs for it. Idempotent under races — only the caller
    /// that actually removes the shard runs the absorb fan-out.
    fn fail_over(&self, shard: u32) {
        let survivors = {
            let mut ring = self.ring.lock();
            if !ring.remove(shard) {
                return;
            }
            ring.shards()
        };
        self.stats.lock().failovers += 1;
        let absorb = encode_frame(&Message::Absorb { dead_shard: shard });
        for s in survivors {
            if let Ok(bytes) = self.transport.call(s, &absorb) {
                if decode_frame(&bytes) == Some(Message::Ack) {
                    self.stats.lock().absorbs += 1;
                }
            }
        }
    }
}
