//! A shard: one [`CompileService`] behind a `CCM2WIRE` frame handler,
//! plus the replica logs it holds for its peers.
//!
//! A shard is deliberately passive — it answers frames and never
//! initiates traffic. The router drives both planes: it forwards
//! compile requests, and after each served compile it [`Message::Sync`]s
//! the owning shard (which hands back the store deltas accumulated
//! since the previous sync as one `CCM2DELT` batch) and fans that batch
//! out to the surviving peers as [`Message::DeltaShip`] frames. Each
//! peer parks the ops in a per-origin [`ReplicaLog`]; the log is pure
//! potential energy until the origin dies, at which point
//! [`Message::Absorb`] replays it into the survivor's own store
//! ([`SharedStore::apply_delta`](ccm2_serve::SharedStore)) so re-routed
//! requests warm-hit instead of recompiling.
//!
//! Replication is warmth, not truth: the store is content-addressed, so
//! replaying an insert can never corrupt an entry (same fingerprint ⇒
//! same bytes), and a lost batch merely costs a recompile. But a *hole*
//! in the log must not be replayed silently: a sequence gap in the
//! incoming stream, or an overflow past [`REPLICA_LOG_CAP`], marks the
//! log **gapped**. A gapped log keeps accepting ops (it is still the
//! warmest thing available) but [`Message::Absorb`] refuses to replay
//! it — the shard answers `AbsorbDone { gapped: true }` and the router
//! reconciles with a full-image ship ([`Message::FetchImage`] /
//! [`Message::Image`]) from a healthy peer instead.
//!
//! With a [`ReplicaLogStore`] attached ([`ShardNode::with_durable_log`])
//! every replica-map mutation is persisted through the checksummed
//! `CCM2RLOG` image path, so a crash between ship and absorb loses
//! zero parked ops.
//!
//! # The eviction lease (wire version 3)
//!
//! A shard tracks exactly one lease: the highest epoch it has ever
//! granted, the router holding it, and an **age** — probe rounds
//! answered since the holder last renewed. The rules are few and
//! strict:
//!
//! * [`Message::LeaseGrant`] is honored only for a *strictly higher*
//!   epoch than any granted before. Each epoch number is therefore
//!   granted at most once per shard — with routers requiring a
//!   majority of grants to lead, two leaders for one epoch would need
//!   two disjoint majorities, which cannot exist.
//! * [`Message::LeaseRenew`] from the current holder (or for a newer
//!   epoch — the catch-up path for a shard partitioned during the
//!   grant round) resets the age to zero. Anyone else draws
//!   [`Message::EpochReject`].
//! * Every membership-changing frame — `Absorb`, a pushed `Image`, a
//!   `DeltaShip` fan-out — carries a `(router, epoch)` stamp and is
//!   validated the same way before it takes effect. A partitioned
//!   ex-leader's absorb or resurrect attempt bounces off the fleet
//!   with `EpochReject` instead of corrupting membership.
//! * [`Message::Sync`] stays unleased: it only *exports* deltas, and
//!   replication is warmth, not truth — a stale router syncing costs
//!   at most one batch of warmth (its fan-out of that batch is then
//!   epoch-rejected anyway, which is how it learns to demote).
//!
//! The age advances on answered [`Message::Ping`]s, not on wall time,
//! so lease expiry is deterministic under the drills' virtual-clock
//! ticks and still works under wall-clock heartbeat drivers.

use std::collections::HashMap;

use ccm2_incr::{decode_delta, encode_delta, DeltaOp};
use ccm2_serve::{CompileService, ServeConfig};
use parking_lot::Mutex;

use crate::durable::ReplicaLogStore;
use crate::wire::{decode_frame, encode_frame, Message, WireOutcome, NO_ROUTER};

/// Per-origin replica logs keep at most this many ops; beyond it the
/// oldest are dropped (they are the most likely to have been evicted at
/// the origin anyway). Matches the store's own in-memory delta cap.
pub const REPLICA_LOG_CAP: usize = 8192;

/// Deltas replicated from one peer, in arrival order.
#[derive(Clone, Debug, Default)]
pub struct ReplicaLog {
    /// Sequence number after the last op (origin numbering).
    pub last_seq: u64,
    /// The ops, oldest first, capped at [`REPLICA_LOG_CAP`].
    pub ops: Vec<DeltaOp>,
    /// Batches that arrived with a sequence gap (counted so the drills
    /// can assert the happy path is actually gap-free).
    pub gaps: u64,
    /// The log has lost ops — a sequence gap or a cap overflow dropped
    /// part of the stream. A gapped log must not be replayed at
    /// failover: absorb discards it and reports `gapped` so the router
    /// reconciles with a full store image instead of a silent hole.
    pub gapped: bool,
}

/// Counters for one shard's frame traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Compile frames answered with an outcome.
    pub compiles: u64,
    /// Compile frames rejected at admission (queue full / over quota).
    pub rejects: u64,
    /// Frames (or delta batches) that failed checksum/format validation.
    pub bad_frames: u64,
    /// Sync frames answered with a non-empty delta batch.
    pub ships: u64,
    /// Syncs that found the store's delta history trimmed and had to
    /// reset the cursor (the peers silently miss those ops).
    pub sync_resets: u64,
    /// Ops currently parked across all replica logs.
    pub replica_ops: u64,
    /// Ops replayed into the local store by `Absorb` frames.
    pub absorbed_ops: u64,
    /// Gapped replica logs discarded (not replayed) at absorb.
    pub gapped_discards: u64,
    /// Heartbeat probes answered.
    pub pings: u64,
    /// `FetchImage` frames answered with a full store image.
    pub images_served: u64,
    /// Entries imported from pushed `Image` frames (join warm-up /
    /// gapped-log reconciliation).
    pub imported_entries: u64,
    /// Replica-log images persisted to the attached durable store.
    pub rlog_writes: u64,
    /// Lease grants honored ([`Message::LeaseGrant`] at a new epoch).
    pub lease_grants: u64,
    /// Lease renewals honored (age reset to zero).
    pub lease_renews: u64,
    /// Stale-stamped frames refused with [`Message::EpochReject`]
    /// (grants, renews, and membership-changing control frames).
    pub epoch_rejects: u64,
    /// `FetchStats` frames answered with a [`Message::StatsReport`].
    pub stats_served: u64,
}

/// A shard's lease view: highest granted epoch, its holder, and the
/// probe-round age since the holder's last renewal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseView {
    /// Highest epoch this shard has granted (or adopted).
    pub epoch: u64,
    /// The router holding it ([`NO_ROUTER`] = none yet).
    pub holder: u32,
    /// Probe rounds answered since the last renewal.
    pub age: u32,
}

impl Default for LeaseView {
    fn default() -> LeaseView {
        LeaseView {
            epoch: 0,
            holder: NO_ROUTER,
            age: 0,
        }
    }
}

struct ShardState {
    /// Store delta sequence number up to which peers have been shipped.
    ship_cursor: u64,
    replicas: HashMap<u32, ReplicaLog>,
    stats: ShardStats,
    /// The eviction lease this shard honors (see the module docs).
    lease: LeaseView,
    /// Every `(epoch, router)` pair actually *granted* (not adopted) —
    /// the drills assert no epoch appears twice.
    grants: Vec<(u64, u32)>,
}

/// One fleet member: a shard id, its compile service, and the
/// replication state described in the module docs.
pub struct ShardNode {
    id: u32,
    svc: CompileService,
    state: Mutex<ShardState>,
    durable: Option<ReplicaLogStore>,
    /// Serialises persist snapshots: without it two concurrent ships
    /// could clone the replica map in one order and write their
    /// `rlog-{seq}` images in the other, leaving the *older* snapshot
    /// as the newest file on disk.
    persist_gate: Mutex<()>,
}

impl ShardNode {
    /// Starts a fresh shard with its own service.
    pub fn start(id: u32, config: ServeConfig) -> ShardNode {
        ShardNode::from_service(id, CompileService::start(config))
    }

    /// Wraps an existing service (e.g. one restored from snapshot +
    /// delta replay) as shard `id`. The ship cursor starts at the
    /// store's current delta sequence: history from before the wrap is
    /// the snapshot's business, not replication's.
    pub fn from_service(id: u32, svc: CompileService) -> ShardNode {
        let ship_cursor = svc.store().delta_seq();
        ShardNode {
            id,
            svc,
            state: Mutex::new(ShardState {
                ship_cursor,
                replicas: HashMap::new(),
                stats: ShardStats::default(),
                lease: LeaseView::default(),
                grants: Vec::new(),
            }),
            durable: None,
            persist_gate: Mutex::new(()),
        }
    }

    /// Attaches a durable replica-log store: the current replica map is
    /// replaced with the newest valid persisted image (so a restarted
    /// shard comes back holding everything it had parked for its
    /// peers), and every subsequent replica mutation is persisted
    /// through the crash-atomic `CCM2RLOG` path.
    pub fn with_durable_log(mut self, rlogs: ReplicaLogStore) -> std::io::Result<ShardNode> {
        let loaded = rlogs.load_latest()?;
        if let Some(logs) = loaded.logs {
            self.state.get_mut().replicas = logs;
        }
        self.durable = Some(rlogs);
        Ok(self)
    }

    /// Persists the replica map if a durable store is attached. The map
    /// is cloned under the shard lock; the disk write happens outside
    /// it so frame traffic keeps flowing. The persist gate is held
    /// across clone *and* save so image sequence order matches snapshot
    /// order — concurrent ships stay crash-consistent.
    fn persist_replicas(&self) {
        let Some(rlogs) = &self.durable else { return };
        let _gate = self.persist_gate.lock();
        let logs: HashMap<u32, ReplicaLog> = {
            let state = self.state.lock();
            state
                .replicas
                .iter()
                .map(|(origin, log)| (*origin, log.clone()))
                .collect()
        };
        if rlogs.save(&logs).is_ok() {
            self.state.lock().stats.rlog_writes += 1;
        }
    }

    /// This shard's fleet id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The underlying service (drills journal / snapshot through this).
    pub fn service(&self) -> &CompileService {
        &self.svc
    }

    /// Frame-traffic counters.
    pub fn stats(&self) -> ShardStats {
        let state = self.state.lock();
        let mut stats = state.stats;
        stats.replica_ops = state.replicas.values().map(|l| l.ops.len() as u64).sum();
        stats
    }

    /// The ops currently parked for peer `origin` (drill assertions).
    pub fn replica_len(&self, origin: u32) -> usize {
        self.state
            .lock()
            .replicas
            .get(&origin)
            .map_or(0, |l| l.ops.len())
    }

    /// This shard's current lease view.
    pub fn lease(&self) -> LeaseView {
        self.state.lock().lease
    }

    /// Every `(epoch, router)` lease actually granted, in grant order.
    /// The split-brain drills assert no epoch appears twice.
    pub fn lease_grants(&self) -> Vec<(u64, u32)> {
        self.state.lock().grants.clone()
    }

    /// Validates a membership-changing frame's `(router, epoch)` stamp
    /// against the lease. Acceptance *adopts*: a newer epoch (or the
    /// first claimant of the current one) becomes the recorded holder
    /// and the age resets — accepted control traffic is proof the
    /// leader is alive. Returns the `EpochReject` to answer with when
    /// the stamp is stale.
    fn lease_check(&self, router: u32, epoch: u64) -> Option<Message> {
        let mut state = self.state.lock();
        let l = state.lease;
        if epoch > l.epoch || (epoch == l.epoch && (l.holder == router || l.holder == NO_ROUTER)) {
            state.lease = LeaseView {
                epoch,
                holder: router,
                age: 0,
            };
            None
        } else {
            state.stats.epoch_rejects += 1;
            Some(Message::EpochReject {
                epoch: l.epoch,
                router: l.holder,
            })
        }
    }

    /// Handles one frame and returns the response frame. Never panics
    /// on wire input: anything malformed is answered with a
    /// [`Message::Reject`] so the router can retry or fail over.
    pub fn handle(&self, frame: &[u8]) -> Vec<u8> {
        let Some(msg) = decode_frame(frame) else {
            self.state.lock().stats.bad_frames += 1;
            return encode_frame(&Message::Reject {
                reason: "bad frame".into(),
                retry_after_ms: 0,
            });
        };
        let reply = match msg {
            Message::Compile(wire_req) => self.compile(wire_req),
            Message::Sync => self.sync(),
            Message::DeltaShip {
                from_shard,
                batch,
                router,
                epoch,
            } => match self.lease_check(router, epoch) {
                Some(reject) => reject,
                None => self.receive_ship(from_shard, &batch),
            },
            Message::Absorb {
                dead_shard,
                router,
                epoch,
            } => match self.lease_check(router, epoch) {
                Some(reject) => reject,
                None => self.absorb(dead_shard),
            },
            Message::Ping { nonce } => {
                let mut state = self.state.lock();
                state.stats.pings += 1;
                // The expiry clock: probe rounds since the last renewal.
                state.lease.age = state.lease.age.saturating_add(1);
                Message::Pong {
                    shard: self.id,
                    nonce,
                    lease_epoch: state.lease.epoch,
                    lease_router: state.lease.holder,
                    lease_age: state.lease.age,
                }
            }
            Message::LeaseGrant { router, epoch } => {
                let mut state = self.state.lock();
                if epoch > state.lease.epoch {
                    state.lease = LeaseView {
                        epoch,
                        holder: router,
                        age: 0,
                    };
                    state.grants.push((epoch, router));
                    state.stats.lease_grants += 1;
                    Message::Ack
                } else {
                    state.stats.epoch_rejects += 1;
                    Message::EpochReject {
                        epoch: state.lease.epoch,
                        router: state.lease.holder,
                    }
                }
            }
            Message::LeaseRenew { router, epoch } => {
                let mut state = self.state.lock();
                let l = state.lease;
                if epoch > l.epoch
                    || (epoch == l.epoch && (l.holder == router || l.holder == NO_ROUTER))
                {
                    state.lease = LeaseView {
                        epoch,
                        holder: router,
                        age: 0,
                    };
                    state.stats.lease_renews += 1;
                    Message::Ack
                } else {
                    state.stats.epoch_rejects += 1;
                    Message::EpochReject {
                        epoch: l.epoch,
                        router: l.holder,
                    }
                }
            }
            Message::FetchImage => self.serve_image(),
            Message::Image {
                entries,
                router,
                epoch,
                ..
            } => match self.lease_check(router, epoch) {
                Some(reject) => reject,
                None => self.import_image(&entries),
            },
            Message::FetchStats => self.serve_stats(),
            Message::Outcome(_)
            | Message::Reject { .. }
            | Message::Ack
            | Message::Pong { .. }
            | Message::AbsorbDone { .. }
            | Message::EpochReject { .. }
            | Message::StatsReport { .. } => Message::Reject {
                reason: "unexpected message kind".into(),
                retry_after_ms: 0,
            },
        };
        encode_frame(&reply)
    }

    fn compile(&self, wire_req: crate::wire::WireRequest) -> Message {
        let req = wire_req.to_request();
        // Through the report path (not bare submit): shard-side
        // admission retries draw from the configured budget and feed
        // the retry-burn counters the router aggregates via FetchStats.
        let report = self.svc.serve_batch_report(vec![req]);
        let answer = report
            .requests
            .into_iter()
            .next()
            .expect("one-request batch reports one response");
        match answer.response {
            ccm2_serve::Response::Done(out) => {
                self.state.lock().stats.compiles += 1;
                Message::Outcome(WireOutcome::from_outcome(&out))
            }
            ccm2_serve::Response::Retry => {
                self.state.lock().stats.rejects += 1;
                Message::Reject {
                    reason: "not admitted: queue full or over quota".into(),
                    retry_after_ms: self.svc.shed_hint_ms(),
                }
            }
        }
    }

    fn serve_stats(&self) -> Message {
        let svc_stats = self.svc.stats();
        let mut state = self.state.lock();
        state.stats.stats_served += 1;
        drop(state);
        Message::StatsReport {
            shard: self.id,
            compiles: svc_stats.compiled,
            shed: svc_stats.shed,
            quota_shed: svc_stats.quota_shed,
            retry_attempts_used: svc_stats.retry_attempts_used,
            retry_recovered: svc_stats.retry_recovered,
            retry_exhausted: svc_stats.retry_exhausted,
            retry_budget: self.svc.config().retry_attempts,
            queue_len: self.svc.queue_len().min(u32::MAX as usize) as u32,
        }
    }

    fn sync(&self) -> Message {
        let store = self.svc.store();
        let mut state = self.state.lock();
        let base = state.ship_cursor;
        let batch = match store.deltas_since(base) {
            Some(ops) => {
                state.ship_cursor = base + ops.len() as u64;
                if !ops.is_empty() {
                    state.stats.ships += 1;
                }
                encode_delta(base, &ops)
            }
            None => {
                // The store trimmed past our cursor (journal truncation
                // or log overflow). Peers miss those ops — warmth, not
                // truth — and the cursor rejoins the live edge.
                state.stats.sync_resets += 1;
                state.ship_cursor = store.delta_seq();
                encode_delta(state.ship_cursor, &[])
            }
        };
        // A sync *answer* carries no authority: the router re-stamps
        // the batch with its own lease before fanning it out.
        Message::DeltaShip {
            from_shard: self.id,
            batch,
            router: NO_ROUTER,
            epoch: 0,
        }
    }

    fn receive_ship(&self, from_shard: u32, batch: &[u8]) -> Message {
        let Some((base, ops)) = decode_delta(batch) else {
            self.state.lock().stats.bad_frames += 1;
            return Message::Reject {
                reason: "bad delta batch".into(),
                retry_after_ms: 0,
            };
        };
        let batch_end = base.saturating_add(ops.len() as u64);
        {
            let mut state = self.state.lock();
            let log = state.replicas.entry(from_shard).or_default();
            if base > log.last_seq && !log.ops.is_empty() {
                log.gaps += 1;
                log.gapped = true;
            }
            // Overlap (a re-shipped prefix) is skipped; fresh ops append.
            let skip = (log.last_seq.saturating_sub(base)) as usize;
            if skip < ops.len() {
                log.ops.extend(ops.into_iter().skip(skip));
            }
            log.last_seq = log.last_seq.max(batch_end);
            if log.ops.len() > REPLICA_LOG_CAP {
                let excess = log.ops.len() - REPLICA_LOG_CAP;
                log.ops.drain(..excess);
                // The oldest ops are gone: replaying the remainder at
                // failover would absorb a hole as if it were the whole
                // stream. Poison the log instead.
                log.gapped = true;
            }
        }
        self.persist_replicas();
        Message::Ack
    }

    fn absorb(&self, dead_shard: u32) -> Message {
        let log = self.state.lock().replicas.remove(&dead_shard);
        let reply = match log {
            Some(log) if log.gapped => {
                // The log lost ops; replaying the survivors would
                // present a hole as the full stream. Discard and tell
                // the router, which reconciles with a full image.
                self.state.lock().stats.gapped_discards += 1;
                Message::AbsorbDone {
                    applied_ops: 0,
                    gapped: true,
                }
            }
            Some(log) => {
                // Replay outside the shard lock; apply_delta takes the
                // store's own lock.
                self.svc.store().apply_delta(&log.ops);
                self.state.lock().stats.absorbed_ops += log.ops.len() as u64;
                Message::AbsorbDone {
                    applied_ops: log.ops.len() as u64,
                    gapped: false,
                }
            }
            None => Message::AbsorbDone {
                applied_ops: 0,
                gapped: false,
            },
        };
        self.persist_replicas();
        reply
    }

    fn serve_image(&self) -> Message {
        let store = self.svc.store();
        // Export under the store's own lock: a consistent cut of the
        // entries (coldest first) and the delta cursor at the cut.
        let entries = store.export();
        let delta_seq = store.delta_seq();
        self.state.lock().stats.images_served += 1;
        // An image *answer* is data, not authority (cf. sync answers).
        Message::Image {
            delta_seq,
            entries,
            router: NO_ROUTER,
            epoch: 0,
        }
    }

    fn import_image(&self, entries: &[(ccm2_support::hash::Fp128, Vec<u8>)]) -> Message {
        self.svc.store().import(entries);
        self.state.lock().stats.imported_entries += entries.len() as u64;
        Message::Ack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_support::hash::Fp128;

    fn fp(n: u64) -> Fp128 {
        Fp128 { hi: n, lo: !n }
    }

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            store_budget: 64 * 1024,
            ..ServeConfig::default()
        }
    }

    fn ship_frame(from_shard: u32, base: u64, ops: &[DeltaOp]) -> Vec<u8> {
        encode_frame(&Message::DeltaShip {
            from_shard,
            batch: encode_delta(base, ops),
            router: 0,
            epoch: 0,
        })
    }

    fn absorb_frame(dead_shard: u32) -> Vec<u8> {
        encode_frame(&Message::Absorb {
            dead_shard,
            router: 0,
            epoch: 0,
        })
    }

    fn bad_frame_reject() -> Message {
        Message::Reject {
            reason: "bad frame".into(),
            retry_after_ms: 0,
        }
    }

    fn inserts(range: std::ops::Range<u64>) -> Vec<DeltaOp> {
        range
            .map(|i| DeltaOp::Insert {
                fp: fp(i),
                bytes: vec![i as u8; 4],
            })
            .collect()
    }

    fn reply(node: &ShardNode, frame: &[u8]) -> Message {
        decode_frame(&node.handle(frame)).expect("shard replies validly")
    }

    #[test]
    fn ping_answers_pong_with_id_nonce_and_lease_view() {
        let node = ShardNode::start(4, tiny_config());
        let reply = reply(&node, &encode_frame(&Message::Ping { nonce: 99 }));
        assert_eq!(
            reply,
            Message::Pong {
                shard: 4,
                nonce: 99,
                lease_epoch: 0,
                lease_router: NO_ROUTER,
                lease_age: 1,
            }
        );
        assert_eq!(node.stats().pings, 1);
    }

    #[test]
    fn lease_grant_renew_and_stale_epoch_rejection() {
        let node = ShardNode::start(1, tiny_config());
        // First grant at epoch 1 from router 0.
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::LeaseGrant {
                    router: 0,
                    epoch: 1
                })
            ),
            Message::Ack
        );
        assert_eq!(
            node.lease(),
            LeaseView {
                epoch: 1,
                holder: 0,
                age: 0
            }
        );
        // Re-granting the *same* epoch — even by the holder — is
        // refused: an epoch number is granted at most once.
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::LeaseGrant {
                    router: 0,
                    epoch: 1
                })
            ),
            Message::EpochReject {
                epoch: 1,
                router: 0
            }
        );
        // Pings age the lease; the holder's renew resets it.
        for _ in 0..3 {
            reply(&node, &encode_frame(&Message::Ping { nonce: 5 }));
        }
        assert_eq!(node.lease().age, 3);
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::LeaseRenew {
                    router: 0,
                    epoch: 1
                })
            ),
            Message::Ack
        );
        assert_eq!(node.lease().age, 0);
        // A stranger's renew at the current epoch bounces.
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::LeaseRenew {
                    router: 9,
                    epoch: 1
                })
            ),
            Message::EpochReject {
                epoch: 1,
                router: 0
            }
        );
        // A newer epoch takes over (router 1 won a later election).
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::LeaseGrant {
                    router: 1,
                    epoch: 2
                })
            ),
            Message::Ack
        );
        assert_eq!(node.lease().holder, 1);
        assert_eq!(node.lease_grants(), vec![(1, 0), (2, 1)]);
        let stats = node.stats();
        assert_eq!(stats.lease_grants, 2);
        assert_eq!(stats.lease_renews, 1);
        assert_eq!(stats.epoch_rejects, 2);
    }

    #[test]
    fn stale_epoch_control_frames_are_refused_without_effect() {
        let node = ShardNode::start(2, tiny_config());
        // Router 1 holds epoch 2.
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::LeaseGrant {
                    router: 1,
                    epoch: 2
                })
            ),
            Message::Ack
        );
        // Park some ops under the live leader so a double-absorb would
        // have something to steal.
        let live_ship = encode_frame(&Message::DeltaShip {
            from_shard: 7,
            batch: encode_delta(0, &inserts(0..4)),
            router: 1,
            epoch: 2,
        });
        assert_eq!(reply(&node, &live_ship), Message::Ack);
        assert_eq!(node.replica_len(7), 4);

        // The partitioned ex-leader (router 0, epoch 1) tries every
        // membership-changing frame it has. All bounce, nothing moves.
        let reject = Message::EpochReject {
            epoch: 2,
            router: 1,
        };
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::Absorb {
                    dead_shard: 7,
                    router: 0,
                    epoch: 1
                })
            ),
            reject,
            "stale absorb must not replay the log"
        );
        assert_eq!(node.replica_len(7), 4, "the log is untouched");
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::DeltaShip {
                    from_shard: 9,
                    batch: encode_delta(0, &inserts(0..2)),
                    router: 0,
                    epoch: 1,
                })
            ),
            reject,
            "stale fan-out must not park ops"
        );
        assert_eq!(node.replica_len(9), 0);
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::Image {
                    delta_seq: 0,
                    entries: vec![(fp(1), b"zombie".to_vec())],
                    router: 0,
                    epoch: 1,
                })
            ),
            reject,
            "stale image push must not resurrect store bytes"
        );
        assert!(node.service().store().export().is_empty());
        assert_eq!(node.stats().epoch_rejects, 3);
        // The live leader still works.
        assert_eq!(
            reply(
                &node,
                &encode_frame(&Message::Absorb {
                    dead_shard: 7,
                    router: 1,
                    epoch: 2
                })
            ),
            Message::AbsorbDone {
                applied_ops: 4,
                gapped: false
            }
        );
    }

    #[test]
    fn fetch_stats_reports_retry_burn_counters() {
        let node = ShardNode::start(3, tiny_config());
        let Message::StatsReport {
            shard,
            retry_budget,
            queue_len,
            ..
        } = reply(&node, &encode_frame(&Message::FetchStats))
        else {
            panic!("FetchStats must answer StatsReport");
        };
        assert_eq!(shard, 3);
        assert_eq!(retry_budget, ServeConfig::default().retry_attempts);
        assert_eq!(queue_len, 0);
        assert_eq!(node.stats().stats_served, 1);
    }

    // Satellite of the version-skew suite: a *well-formed* frame from a
    // newer protocol generation (valid checksum, future version) must
    // yield a clean Reject — the version guard, not a decode panic.
    #[test]
    fn future_version_ping_yields_clean_reject() {
        let node = ShardNode::start(1, tiny_config());
        let mut payload = vec![8u8]; // Ping tag
        payload.extend_from_slice(&7u64.to_le_bytes());
        let future = crate::wire::versioned_frame(crate::wire::WIRE_FORMAT_VERSION + 1, &payload);
        let reply = reply(&node, &future);
        assert_eq!(reply, bad_frame_reject());
        assert_eq!(node.stats().bad_frames, 1);
    }

    #[test]
    fn truncated_and_flipped_pings_answered_with_reject_not_panic() {
        let node = ShardNode::start(2, tiny_config());
        let frame = encode_frame(&Message::Ping { nonce: 0xDEAD });
        let mut damaged = 0u64;
        for cut in 0..frame.len() {
            assert_eq!(
                reply(&node, &frame[..cut]),
                bad_frame_reject(),
                "torn at {cut}"
            );
            damaged += 1;
        }
        for at in 0..frame.len() {
            let mut bad = frame.clone();
            bad[at] ^= 0x80;
            assert_eq!(reply(&node, &bad), bad_frame_reject(), "flip at {at}");
            damaged += 1;
        }
        assert_eq!(node.stats().bad_frames, damaged);
    }

    #[test]
    fn sequence_gap_marks_log_gapped_and_absorb_discards_it() {
        let node = ShardNode::start(3, tiny_config());
        assert_eq!(
            reply(&node, &ship_frame(7, 0, &inserts(0..4))),
            Message::Ack
        );
        // Sequence jumps from 4 to 50: ops 4..50 are missing.
        assert_eq!(
            reply(&node, &ship_frame(7, 50, &inserts(50..52))),
            Message::Ack
        );
        assert_eq!(node.replica_len(7), 6, "a gapped log still parks ops");
        assert_eq!(
            reply(&node, &absorb_frame(7)),
            Message::AbsorbDone {
                applied_ops: 0,
                gapped: true,
            },
            "a holey log must not replay"
        );
        let stats = node.stats();
        assert_eq!(stats.gapped_discards, 1);
        assert_eq!(stats.absorbed_ops, 0);
        assert!(
            node.service().store().export().is_empty(),
            "nothing was applied"
        );
    }

    // Regression: before the `gapped` flag, overflowing REPLICA_LOG_CAP
    // silently dropped the oldest ops and a later absorb replayed the
    // remainder as if it were the whole stream.
    #[test]
    fn cap_overflow_poisons_the_log_instead_of_absorbing_a_hole() {
        let node = ShardNode::start(5, tiny_config());
        let n = (REPLICA_LOG_CAP + 16) as u64;
        assert_eq!(
            reply(&node, &ship_frame(9, 0, &inserts(0..n))),
            Message::Ack
        );
        assert_eq!(node.replica_len(9), REPLICA_LOG_CAP, "capped");
        assert_eq!(
            reply(&node, &absorb_frame(9)),
            Message::AbsorbDone {
                applied_ops: 0,
                gapped: true,
            }
        );
        assert_eq!(node.stats().gapped_discards, 1);
        assert!(node.service().store().export().is_empty());
    }

    #[test]
    fn clean_log_absorbs_and_reports_applied_ops() {
        let node = ShardNode::start(6, tiny_config());
        assert_eq!(
            reply(&node, &ship_frame(2, 0, &inserts(0..3))),
            Message::Ack
        );
        assert_eq!(
            reply(&node, &ship_frame(2, 3, &inserts(3..5))),
            Message::Ack
        );
        assert_eq!(
            reply(&node, &absorb_frame(2)),
            Message::AbsorbDone {
                applied_ops: 5,
                gapped: false,
            }
        );
        assert_eq!(node.stats().absorbed_ops, 5);
        assert_eq!(node.service().store().export().len(), 5);
    }

    #[test]
    fn fetch_image_and_import_round_trip_between_nodes() {
        let source = ShardNode::start(1, tiny_config());
        use ccm2_incr::ArtifactStore as _;
        source.service().store().store(fp(1), b"alpha");
        source.service().store().store(fp(2), b"beta");
        let Message::Image {
            delta_seq, entries, ..
        } = reply(&source, &encode_frame(&Message::FetchImage))
        else {
            panic!("FetchImage must answer Image");
        };
        assert_eq!(delta_seq, source.service().store().delta_seq());
        assert_eq!(entries.len(), 2);
        let joiner = ShardNode::start(2, tiny_config());
        assert_eq!(
            reply(
                &joiner,
                &encode_frame(&Message::Image {
                    delta_seq,
                    entries,
                    router: 0,
                    epoch: 0,
                })
            ),
            Message::Ack
        );
        assert_eq!(joiner.stats().imported_entries, 2);
        assert_eq!(
            joiner.service().store().export(),
            source.service().store().export(),
            "byte-identical stores after the image ship"
        );
    }

    #[test]
    fn durable_log_survives_a_node_restart_and_still_absorbs() {
        let dir = std::env::temp_dir().join(format!(
            "ccm2-shard-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let node = ShardNode::start(1, tiny_config())
            .with_durable_log(ReplicaLogStore::new(&dir).unwrap())
            .unwrap();
        assert_eq!(
            reply(&node, &ship_frame(0, 0, &inserts(0..4))),
            Message::Ack
        );
        assert!(node.stats().rlog_writes >= 1, "ship persisted the log");
        assert_eq!(node.replica_len(0), 4);
        drop(node); // crash: the parked ops exist only on disk now

        let revived = ShardNode::start(1, tiny_config())
            .with_durable_log(ReplicaLogStore::new(&dir).unwrap())
            .unwrap();
        assert_eq!(revived.replica_len(0), 4, "restart reloads the log");
        assert_eq!(
            reply(&revived, &absorb_frame(0)),
            Message::AbsorbDone {
                applied_ops: 4,
                gapped: false,
            },
            "a restarted shard still covers its dead peer"
        );
        assert_eq!(revived.service().store().export().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
