//! A shard: one [`CompileService`] behind a `CCM2WIRE` frame handler,
//! plus the replica logs it holds for its peers.
//!
//! A shard is deliberately passive — it answers frames and never
//! initiates traffic. The router drives both planes: it forwards
//! compile requests, and after each served compile it [`Message::Sync`]s
//! the owning shard (which hands back the store deltas accumulated
//! since the previous sync as one `CCM2DELT` batch) and fans that batch
//! out to the surviving peers as [`Message::DeltaShip`] frames. Each
//! peer parks the ops in a per-origin [`ReplicaLog`]; the log is pure
//! potential energy until the origin dies, at which point
//! [`Message::Absorb`] replays it into the survivor's own store
//! ([`SharedStore::apply_delta`](ccm2_serve::SharedStore)) so re-routed
//! requests warm-hit instead of recompiling.
//!
//! Replication is warmth, not truth: the store is content-addressed, so
//! replaying an insert can never corrupt an entry (same fingerprint ⇒
//! same bytes), and a lost batch merely costs a recompile. That is why
//! a sequence gap in the incoming stream is counted and *tolerated*
//! (the log keeps absorbing) instead of wedging the replica.

use std::collections::HashMap;

use ccm2_incr::{decode_delta, encode_delta, DeltaOp};
use ccm2_serve::{CompileService, ServeConfig};
use parking_lot::Mutex;

use crate::wire::{decode_frame, encode_frame, Message, WireOutcome};

/// Per-origin replica logs keep at most this many ops; beyond it the
/// oldest are dropped (they are the most likely to have been evicted at
/// the origin anyway). Matches the store's own in-memory delta cap.
pub const REPLICA_LOG_CAP: usize = 8192;

/// Deltas replicated from one peer, in arrival order.
#[derive(Debug, Default)]
pub struct ReplicaLog {
    /// Sequence number after the last op (origin numbering).
    pub last_seq: u64,
    /// The ops, oldest first, capped at [`REPLICA_LOG_CAP`].
    pub ops: Vec<DeltaOp>,
    /// Batches that arrived with a sequence gap (tolerated; counted so
    /// the drills can assert the happy path is actually gap-free).
    pub gaps: u64,
}

/// Counters for one shard's frame traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Compile frames answered with an outcome.
    pub compiles: u64,
    /// Compile frames rejected at admission (queue full / over quota).
    pub rejects: u64,
    /// Frames (or delta batches) that failed checksum/format validation.
    pub bad_frames: u64,
    /// Sync frames answered with a non-empty delta batch.
    pub ships: u64,
    /// Syncs that found the store's delta history trimmed and had to
    /// reset the cursor (the peers silently miss those ops).
    pub sync_resets: u64,
    /// Ops currently parked across all replica logs.
    pub replica_ops: u64,
    /// Ops replayed into the local store by `Absorb` frames.
    pub absorbed_ops: u64,
}

struct ShardState {
    /// Store delta sequence number up to which peers have been shipped.
    ship_cursor: u64,
    replicas: HashMap<u32, ReplicaLog>,
    stats: ShardStats,
}

/// One fleet member: a shard id, its compile service, and the
/// replication state described in the module docs.
pub struct ShardNode {
    id: u32,
    svc: CompileService,
    state: Mutex<ShardState>,
}

impl ShardNode {
    /// Starts a fresh shard with its own service.
    pub fn start(id: u32, config: ServeConfig) -> ShardNode {
        ShardNode::from_service(id, CompileService::start(config))
    }

    /// Wraps an existing service (e.g. one restored from snapshot +
    /// delta replay) as shard `id`. The ship cursor starts at the
    /// store's current delta sequence: history from before the wrap is
    /// the snapshot's business, not replication's.
    pub fn from_service(id: u32, svc: CompileService) -> ShardNode {
        let ship_cursor = svc.store().delta_seq();
        ShardNode {
            id,
            svc,
            state: Mutex::new(ShardState {
                ship_cursor,
                replicas: HashMap::new(),
                stats: ShardStats::default(),
            }),
        }
    }

    /// This shard's fleet id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The underlying service (drills journal / snapshot through this).
    pub fn service(&self) -> &CompileService {
        &self.svc
    }

    /// Frame-traffic counters.
    pub fn stats(&self) -> ShardStats {
        let state = self.state.lock();
        let mut stats = state.stats;
        stats.replica_ops = state.replicas.values().map(|l| l.ops.len() as u64).sum();
        stats
    }

    /// The ops currently parked for peer `origin` (drill assertions).
    pub fn replica_len(&self, origin: u32) -> usize {
        self.state
            .lock()
            .replicas
            .get(&origin)
            .map_or(0, |l| l.ops.len())
    }

    /// Handles one frame and returns the response frame. Never panics
    /// on wire input: anything malformed is answered with a
    /// [`Message::Reject`] so the router can retry or fail over.
    pub fn handle(&self, frame: &[u8]) -> Vec<u8> {
        let Some(msg) = decode_frame(frame) else {
            self.state.lock().stats.bad_frames += 1;
            return encode_frame(&Message::Reject("bad frame".into()));
        };
        let reply = match msg {
            Message::Compile(wire_req) => self.compile(wire_req),
            Message::Sync => self.sync(),
            Message::DeltaShip { from_shard, batch } => self.receive_ship(from_shard, &batch),
            Message::Absorb { dead_shard } => self.absorb(dead_shard),
            Message::Outcome(_) | Message::Reject(_) | Message::Ack => {
                Message::Reject("unexpected message kind".into())
            }
        };
        encode_frame(&reply)
    }

    fn compile(&self, wire_req: crate::wire::WireRequest) -> Message {
        let req = wire_req.to_request();
        let sub = self.svc.submit(req);
        match sub.ticket() {
            Some(ticket) => {
                // Wait outside the shard lock: compiles run for a
                // while and other frames must keep flowing.
                let out = ticket.wait();
                self.state.lock().stats.compiles += 1;
                Message::Outcome(WireOutcome::from_outcome(&out))
            }
            None => {
                self.state.lock().stats.rejects += 1;
                Message::Reject("not admitted: queue full or over quota".into())
            }
        }
    }

    fn sync(&self) -> Message {
        let store = self.svc.store();
        let mut state = self.state.lock();
        let base = state.ship_cursor;
        let batch = match store.deltas_since(base) {
            Some(ops) => {
                state.ship_cursor = base + ops.len() as u64;
                if !ops.is_empty() {
                    state.stats.ships += 1;
                }
                encode_delta(base, &ops)
            }
            None => {
                // The store trimmed past our cursor (journal truncation
                // or log overflow). Peers miss those ops — warmth, not
                // truth — and the cursor rejoins the live edge.
                state.stats.sync_resets += 1;
                state.ship_cursor = store.delta_seq();
                encode_delta(state.ship_cursor, &[])
            }
        };
        Message::DeltaShip {
            from_shard: self.id,
            batch,
        }
    }

    fn receive_ship(&self, from_shard: u32, batch: &[u8]) -> Message {
        let Some((base, ops)) = decode_delta(batch) else {
            self.state.lock().stats.bad_frames += 1;
            return Message::Reject("bad delta batch".into());
        };
        let batch_end = base.saturating_add(ops.len() as u64);
        let mut state = self.state.lock();
        let log = state.replicas.entry(from_shard).or_default();
        if base > log.last_seq && !log.ops.is_empty() {
            log.gaps += 1;
        }
        // Overlap (a re-shipped prefix) is skipped; fresh ops append.
        let skip = (log.last_seq.saturating_sub(base)) as usize;
        if skip < ops.len() {
            log.ops.extend(ops.into_iter().skip(skip));
        }
        log.last_seq = log.last_seq.max(batch_end);
        if log.ops.len() > REPLICA_LOG_CAP {
            let excess = log.ops.len() - REPLICA_LOG_CAP;
            log.ops.drain(..excess);
        }
        Message::Ack
    }

    fn absorb(&self, dead_shard: u32) -> Message {
        let log = self.state.lock().replicas.remove(&dead_shard);
        if let Some(log) = log {
            // Replay outside the shard lock; apply_delta takes the
            // store's own lock.
            self.svc.store().apply_delta(&log.ops);
            self.state.lock().stats.absorbed_ops += log.ops.len() as u64;
        }
        Message::Ack
    }
}
