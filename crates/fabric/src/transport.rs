//! How frames move: the [`Transport`] trait and its two
//! implementations.
//!
//! * [`LoopbackTransport`] — in-process, deterministic, seedable. The
//!   fleet drills and the equivalence proptests run on it: a call is a
//!   direct `handle()` on the target shard, an optional seeded
//!   corruptor flips one byte in a reproducible subset of frames (to
//!   prove the `CCM2WIRE` checksum actually gates), and
//!   [`LoopbackTransport::kill`] makes a shard vanish mid-fleet the
//!   way a crashed process would: every later call fails with an I/O
//!   error.
//!
//!   On top of that sits a per-link **fault plan**
//!   ([`LoopbackTransport::set_link_faults`]): before call `n` on the
//!   link to shard `id`, the plan is queried at site `link:{id}#c{n}`
//!   — the same named-site idiom as `ccm2-faults`' `task:`/`store:`
//!   sites, so one seeded plan drives compiler-level and network-level
//!   chaos. The kinds map to network faults: `Panic` drops the frame
//!   (caller sees an I/O error, shard sees nothing), `LoseSignal` is a
//!   one-way partition (the shard handles the frame but the response
//!   is lost), `Stall { units }` defers delivery until `units` later
//!   calls on that link have passed (delay/reorder; the caller still
//!   errors, modeling a client timeout before the late arrival),
//!   `Duplicate` delivers the frame twice (at-least-once conduits),
//!   and `Corrupt { byte }` flips one byte. An exact site
//!   (`link:2#c17`) is a transient hiccup; a glob (`link:2#c*`) is a
//!   standing partition of that link.
//! * [`TcpTransport`] / [`TcpShardServer`] — real sockets on
//!   `127.0.0.1` with ephemeral ports, one frame per connection. The
//!   integration test runs the same router code over TCP to show the
//!   loopback results are not an artifact of skipping serialization.
//!
//! Both speak the exact same frames; the router cannot tell them
//! apart. That symmetry is the point: everything proven on the
//! deterministic transport holds on the socket one because the only
//! difference is the byte conduit.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ccm2_support::hash::StableHasher;
use parking_lot::Mutex;

use crate::shard::ShardNode;
use crate::wire::{frame_len, FRAME_OVERHEAD};

/// Stall-deferred frames per link: `(due link-call number, frame)`.
type DeferredFrames = HashMap<u32, Vec<(u64, Vec<u8>)>>;

/// Largest payload a reader will allocate for (64 MiB — comfortably
/// above any compile outcome, far below a garbage length prefix).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Anything that can answer one `CCM2WIRE` frame with another.
pub trait FrameHandler: Send + Sync {
    /// Handles one request frame, returning the response frame.
    fn handle(&self, frame: &[u8]) -> Vec<u8>;
}

impl FrameHandler for ShardNode {
    fn handle(&self, frame: &[u8]) -> Vec<u8> {
        ShardNode::handle(self, frame)
    }
}

/// A way to deliver one frame to a shard and get its answer.
///
/// `call` is synchronous request/response; an `Err` means the shard is
/// unreachable (dead, refused, or the conduit broke) and the router
/// treats it as shard death. A *successful* call whose response fails
/// frame validation is **not** a transport error — that is the
/// checksum plane's business and the router retries.
pub trait Transport: Send + Sync {
    /// Delivers `frame` to `shard`, returning the response frame.
    fn call(&self, shard: u32, frame: &[u8]) -> io::Result<Vec<u8>>;

    /// Shards this transport can currently reach, ascending.
    fn shards(&self) -> Vec<u32>;

    /// Makes `shard` unreachable (test/drill hook). Returns whether it
    /// was reachable before. Transports that cannot kill return false.
    fn kill(&self, _shard: u32) -> bool {
        false
    }
}

/// In-process transport: shard id → handler, with optional seeded
/// frame corruption. See the module docs.
#[derive(Default)]
pub struct LoopbackTransport {
    endpoints: Mutex<HashMap<u32, Arc<dyn FrameHandler>>>,
    /// `(seed, rate_ppm)`: frame `n` is corrupted iff the stable hash
    /// of `(seed, n)` lands under `rate_ppm` parts per million —
    /// deterministic for a given seed and call order.
    corrupt: Option<(u64, u32)>,
    calls: AtomicU64,
    corrupted: AtomicU64,
    /// Per-link fault plan (`link:{id}#c{n}` sites) — swappable
    /// mid-run so drills can open and heal partitions.
    link_faults: Mutex<Option<Arc<ccm2_faults::FaultPlan>>>,
    /// Per-link call counters: the `n` in `link:{id}#c{n}`.
    link_calls: Mutex<HashMap<u32, u64>>,
    /// Frames whose delivery a `Stall` deferred: per link, `(due
    /// link-call number, frame)`. Delivered (response discarded) when
    /// the link's counter passes `due`.
    deferred: Mutex<DeferredFrames>,
    link_faults_fired: AtomicU64,
}

impl LoopbackTransport {
    /// A clean loopback: no corruption, no endpoints.
    pub fn new() -> LoopbackTransport {
        LoopbackTransport::default()
    }

    /// A loopback that flips one byte in a seeded `rate_ppm` fraction
    /// of request frames before delivery.
    pub fn with_corruption(seed: u64, rate_ppm: u32) -> LoopbackTransport {
        LoopbackTransport {
            corrupt: Some((seed, rate_ppm)),
            ..LoopbackTransport::default()
        }
    }

    /// Registers (or replaces) the handler for `shard`.
    pub fn register(&self, shard: u32, handler: Arc<dyn FrameHandler>) {
        self.endpoints.lock().insert(shard, handler);
    }

    /// Total calls attempted (including to dead shards).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Frames the corruptor actually damaged.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Installs (or with `None`, heals) the per-link fault plan. Takes
    /// effect on the next call; drills flip this mid-run to open and
    /// close partitions. See the module docs for the site namespace
    /// (`link:{id}#c{n}`) and the kind → network-fault mapping.
    pub fn set_link_faults(&self, plan: Option<Arc<ccm2_faults::FaultPlan>>) {
        *self.link_faults.lock() = plan;
    }

    /// Link faults that actually fired (dropped, one-way'd, deferred,
    /// duplicated, or corrupted a delivery).
    pub fn link_faults_fired(&self) -> u64 {
        self.link_faults_fired.load(Ordering::Relaxed)
    }

    /// Delivers frames a `Stall` parked on this link whose due call
    /// number has passed; their responses are discarded (the callers
    /// that sent them already saw an error — late arrival after a
    /// client timeout).
    fn flush_deferred(&self, shard: u32, now: u64, handler: &Arc<dyn FrameHandler>) {
        let due: Vec<Vec<u8>> = {
            let mut deferred = self.deferred.lock();
            let Some(queue) = deferred.get_mut(&shard) else {
                return;
            };
            let mut ready = Vec::new();
            queue.retain(|(at, frame)| {
                if *at <= now {
                    ready.push(frame.clone());
                    false
                } else {
                    true
                }
            });
            ready
        };
        for frame in due {
            let _ = handler.handle(&frame);
        }
    }
}

impl Transport for LoopbackTransport {
    fn call(&self, shard: u32, frame: &[u8]) -> io::Result<Vec<u8>> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let handler = self.endpoints.lock().get(&shard).cloned().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("shard {shard} is down"),
            )
        })?;
        let link_n = {
            let mut counts = self.link_calls.lock();
            let c = counts.entry(shard).or_insert(0);
            let n = *c;
            *c += 1;
            n
        };
        // Anything a Stall parked earlier on this link arrives now,
        // before the current frame — late delivery reorders the link.
        self.flush_deferred(shard, link_n, &handler);
        let link_fault = self
            .link_faults
            .lock()
            .as_ref()
            .and_then(|plan| plan.at(&format!("link:{shard}#c{link_n}")));
        let mut frame = std::borrow::Cow::Borrowed(frame);
        if let Some(kind) = link_fault {
            self.link_faults_fired.fetch_add(1, Ordering::Relaxed);
            match kind {
                ccm2_faults::FaultKind::Panic => {
                    // Dropped on the floor: the shard never sees it.
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        format!("link to shard {shard} dropped the frame"),
                    ));
                }
                ccm2_faults::FaultKind::LoseSignal => {
                    // One-way partition: delivered, answer lost.
                    let _ = handler.handle(&frame);
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("response from shard {shard} lost"),
                    ));
                }
                ccm2_faults::FaultKind::Stall { units } => {
                    // Deferred delivery: the frame arrives `units`
                    // link-calls from now; the caller times out today.
                    self.deferred
                        .lock()
                        .entry(shard)
                        .or_default()
                        .push((link_n.saturating_add(units.max(1)), frame.into_owned()));
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("delivery to shard {shard} delayed past the call"),
                    ));
                }
                ccm2_faults::FaultKind::Duplicate => {
                    // At-least-once conduit: same frame, twice. The
                    // first response is discarded (the duplicate's
                    // answer is the one "this" call observes).
                    let _ = handler.handle(&frame);
                }
                ccm2_faults::FaultKind::Corrupt { byte } => {
                    if !frame.is_empty() {
                        let mut bad = frame.into_owned();
                        let at = byte % bad.len();
                        bad[at] ^= 0x55;
                        frame = std::borrow::Cow::Owned(bad);
                    }
                }
            }
        }
        if let Some((seed, rate_ppm)) = self.corrupt {
            let mut h = StableHasher::new();
            h.write_str("ccm2-fabric/loopback-corrupt");
            h.write_u64(seed);
            h.write_u64(n);
            let roll = h.finish().fold64();
            if !frame.is_empty() && roll % 1_000_000 < u64::from(rate_ppm) {
                self.corrupted.fetch_add(1, Ordering::Relaxed);
                let mut bad = frame.into_owned();
                let at = (roll / 1_000_000) as usize % bad.len();
                bad[at] ^= 0x55;
                return Ok(handler.handle(&bad));
            }
        }
        Ok(handler.handle(&frame))
    }

    fn shards(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.endpoints.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn kill(&self, shard: u32) -> bool {
        self.endpoints.lock().remove(&shard).is_some()
    }
}

/// Reads one complete frame off `r`: 16 header bytes, then exactly the
/// length the (not-yet-trusted) header announces. Validation of the
/// checksum happens later in `decode_frame`; this only bounds the read.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    let total = frame_len(&header, max_payload).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "bad frame header (magic/version/length)",
        )
    })?;
    let mut frame = vec![0u8; total];
    frame[..16].copy_from_slice(&header);
    r.read_exact(&mut frame[16..])?;
    Ok(frame)
}

/// Socket transport: shard id → `127.0.0.1` address, one frame per
/// connection. Drill hooks mirror the loopback's link faults at the
/// granularity sockets allow: a **full partition** fails the call
/// before connecting (the shard sees nothing), a **one-way partition**
/// delivers the frame but abandons the response.
#[derive(Default)]
pub struct TcpTransport {
    peers: Mutex<HashMap<u32, SocketAddr>>,
    partitioned: Mutex<std::collections::HashSet<u32>>,
    one_way: Mutex<std::collections::HashSet<u32>>,
}

impl TcpTransport {
    /// An empty peer table.
    pub fn new() -> TcpTransport {
        TcpTransport::default()
    }

    /// Registers shard `id` at `addr` (a [`TcpShardServer::addr`]).
    pub fn register(&self, shard: u32, addr: SocketAddr) {
        self.peers.lock().insert(shard, addr);
    }

    /// Opens (`true`) or heals (`false`) a full partition of the link
    /// to `shard`: calls fail without touching the socket.
    pub fn set_partitioned(&self, shard: u32, cut: bool) {
        let mut p = self.partitioned.lock();
        if cut {
            p.insert(shard);
        } else {
            p.remove(&shard);
        }
    }

    /// Opens (`true`) or heals (`false`) a one-way partition: the
    /// frame is written and the shard handles it, but the caller
    /// abandons the connection instead of reading the answer.
    pub fn set_one_way(&self, shard: u32, cut: bool) {
        let mut p = self.one_way.lock();
        if cut {
            p.insert(shard);
        } else {
            p.remove(&shard);
        }
    }
}

impl Transport for TcpTransport {
    fn call(&self, shard: u32, frame: &[u8]) -> io::Result<Vec<u8>> {
        if self.partitioned.lock().contains(&shard) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("link to shard {shard} partitioned"),
            ));
        }
        let addr = self.peers.lock().get(&shard).copied().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("shard {shard} is down"),
            )
        })?;
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(frame)?;
        stream.flush()?;
        if self.one_way.lock().contains(&shard) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("response from shard {shard} lost"),
            ));
        }
        read_frame(&mut stream, MAX_PAYLOAD)
    }

    fn shards(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.peers.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Forgets the peer (later calls fail). The server process itself
    /// is stopped by whoever owns it — see [`TcpShardServer::stop`].
    fn kill(&self, shard: u32) -> bool {
        self.peers.lock().remove(&shard).is_some()
    }
}

/// An accept loop serving one [`FrameHandler`] on an ephemeral
/// `127.0.0.1` port; each connection is one frame in, one frame out,
/// handled on its own thread so slow compiles do not serialize the
/// fleet.
pub struct TcpShardServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpShardServer {
    /// Binds an ephemeral port and starts accepting.
    pub fn serve(handler: Arc<dyn FrameHandler>) -> io::Result<TcpShardServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let handler = Arc::clone(&handler);
                workers.push(std::thread::spawn(move || {
                    serve_connection(stream, &*handler);
                }));
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(TcpShardServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address, for [`TcpTransport::register`].
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop (a self-connection
    /// unblocks the blocking `accept`). In-flight connections finish.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpShardServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(mut stream: TcpStream, handler: &dyn FrameHandler) {
    let Ok(frame) = read_frame(&mut stream, MAX_PAYLOAD) else {
        return;
    };
    let response = handler.handle(&frame);
    let _ = stream.write_all(&response);
    let _ = stream.flush();
}

/// Frame overhead re-exported for size accounting in the drills.
pub const fn frame_overhead() -> usize {
    FRAME_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_frame, encode_frame, Message};

    /// Echoes `Ack` for any valid frame, `Reject` otherwise.
    struct AckHandler;

    impl FrameHandler for AckHandler {
        fn handle(&self, frame: &[u8]) -> Vec<u8> {
            match decode_frame(frame) {
                Some(_) => encode_frame(&Message::Ack),
                None => encode_frame(&Message::Reject {
                    reason: "bad frame".into(),
                    retry_after_ms: 0,
                }),
            }
        }
    }

    #[test]
    fn loopback_routes_kills_and_refuses_dead_shards() {
        let t = LoopbackTransport::new();
        t.register(1, Arc::new(AckHandler));
        t.register(2, Arc::new(AckHandler));
        assert_eq!(t.shards(), vec![1, 2]);

        let frame = encode_frame(&Message::Sync);
        let resp = t.call(1, &frame).unwrap();
        assert_eq!(decode_frame(&resp), Some(Message::Ack));

        assert!(t.kill(1));
        assert!(!t.kill(1), "already dead");
        let err = t.call(1, &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert_eq!(t.shards(), vec![2]);
        assert_eq!(t.calls(), 2);
    }

    #[test]
    fn seeded_corruption_is_deterministic_and_caught_by_the_checksum() {
        // A high rate so a small call count definitely hits corruption.
        let make = || {
            let t = LoopbackTransport::with_corruption(0xC0FF, 400_000);
            t.register(7, Arc::new(AckHandler));
            t
        };
        let frame = encode_frame(&Message::Sync);
        let observe = |t: &LoopbackTransport| {
            (0..64)
                .map(|_| {
                    let resp = t.call(7, &frame).unwrap();
                    matches!(decode_frame(&resp), Some(Message::Ack))
                })
                .collect::<Vec<bool>>()
        };
        let (a, b) = (make(), make());
        let (run_a, run_b) = (observe(&a), observe(&b));
        assert_eq!(run_a, run_b, "same seed, same call order, same damage");
        assert!(a.corrupted() > 0, "rate 40% never fired in 64 calls");
        assert!(
            run_a.iter().any(|ok| !ok),
            "every corrupted frame still decoded — checksum is dead"
        );
        assert!(run_a.iter().any(|ok| *ok), "every frame was corrupted");
    }

    #[test]
    fn tcp_round_trips_frames_and_stops_cleanly() {
        let mut server = TcpShardServer::serve(Arc::new(AckHandler)).unwrap();
        let t = TcpTransport::new();
        t.register(3, server.addr());
        assert_eq!(t.shards(), vec![3]);

        let frame = encode_frame(&Message::Sync);
        for _ in 0..4 {
            let resp = t.call(3, &frame).unwrap();
            assert_eq!(decode_frame(&resp), Some(Message::Ack));
        }

        server.stop();
        server.stop(); // idempotent
        assert!(t.kill(3));
        assert!(t.call(3, &frame).is_err(), "dead peer refuses");
    }

    #[test]
    fn read_frame_rejects_garbage_headers_before_allocating() {
        let mut garbage: &[u8] = &[0xFFu8; 64];
        let err = read_frame(&mut garbage, MAX_PAYLOAD).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut short: &[u8] = &[0u8; 3];
        assert!(read_frame(&mut short, MAX_PAYLOAD).is_err());
    }
}
