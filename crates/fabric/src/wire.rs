//! `CCM2WIRE` — the fabric's frame format.
//!
//! Every message between the router and a shard travels as one frame,
//! following the same discipline as the `CCM2SNAP`/`CCM2DELT`/`CCM2LOCK`
//! on-disk formats: magic, explicit version, length prefix, and an
//! [`Fp128`] trailer checksum over everything before it. A frame that
//! fails *any* of those checks decodes to `None` and the caller treats
//! the call as a transport fault (retry / failover) — never as data.
//!
//! # Frame format (version 3)
//!
//! ```text
//! magic        8 bytes   b"CCM2WIRE"
//! version      u32 LE    3
//! payload_len  u32 LE    length of payload
//! payload      bytes     kind tag (u8) + kind-specific body
//! checksum     hi u64 LE, lo u64 LE   Fp128 of everything above
//! ```
//!
//! The payload kinds mirror the fabric's planes:
//!
//! * compile plane — [`Message::Compile`] / [`Message::Outcome`] /
//!   [`Message::Reject`] (v3: carries a `Retry-After`-style backoff
//!   hint in milliseconds, derived from the shard's queue pressure);
//! * replication plane — [`Message::Sync`] (router asks the owning
//!   shard for its pending deltas), [`Message::DeltaShip`] (an encoded
//!   `CCM2DELT` batch on its way to a peer), [`Message::Absorb`]
//!   (failover: apply the replica log of a dead shard, answered by
//!   [`Message::AbsorbDone`]);
//! * control plane (version 2) — [`Message::Ping`] /
//!   [`Message::Pong`] heartbeats for the router's failure detector,
//!   and [`Message::FetchImage`] / [`Message::Image`] full-store
//!   shipment for join warm-up and gapped-log reconciliation;
//! * lease plane (version 3) — [`Message::LeaseGrant`] /
//!   [`Message::LeaseRenew`] carry the **epoch-numbered eviction
//!   lease**: every membership-changing message (`Absorb`, pushed
//!   `Image`s, `DeltaShip` fan-out) is stamped with the sending
//!   router's id and lease epoch, and a shard that has granted a newer
//!   epoch answers [`Message::EpochReject`] naming the current holder
//!   instead of obeying — a partitioned ex-leader cannot resurrect an
//!   evicted shard or double-absorb a replica log;
//! * stats plane (version 3) — [`Message::FetchStats`] /
//!   [`Message::StatsReport`] surface per-shard retry-burn counters to
//!   the router's fleet view;
//! * plain [`Message::Ack`].
//!
//! Fault plans are deliberately **not** wire-encodable: a
//! [`FaultPlan`](ccm2_faults::FaultPlan) is an in-process test fixture
//! (it accumulates a fired-log), so [`WireRequest::from_request`]
//! drops it and fabric-level chaos is injected at the *transport and
//! shard* level instead (`shard:{id}` fault sites, seeded frame
//! corruption in the loopback transport).

use std::sync::Arc;

use ccm2_serve::{CompileOutcome, CompileRequest, ExecChoice};
use ccm2_support::defs::{DefLibrary, DefProvider as _};
use ccm2_support::hash::{Fp128, StableHasher};

use ccm2_sema::symtab::DkyStrategy;

/// Magic prefix of every fabric frame.
pub const WIRE_MAGIC: &[u8; 8] = b"CCM2WIRE";
/// Bump on any change to the frame or payload encodings; mixed-version
/// fleets must fail closed (decode failure ⇒ retry elsewhere), never
/// misdecode.
pub const WIRE_FORMAT_VERSION: u32 = 3;
/// The "no router" sentinel for lease-holder fields: a shard that has
/// not yet granted any lease reports this as the holder.
pub const NO_ROUTER: u32 = u32::MAX;
/// Frame overhead outside the payload: magic + version + length prefix
/// + checksum trailer.
pub const FRAME_OVERHEAD: usize = 8 + 4 + 4 + 16;

/// A compile request in wire form: everything
/// [`CompileRequest::fingerprint`] covers except the fault plan (see
/// the module docs), plus the client id for shard-side quota
/// accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireRequest {
    /// Opaque client identifier (quota accounting on the shard).
    pub client: u64,
    /// Module name (reporting only).
    pub module: String,
    /// Module source text.
    pub source: String,
    /// The interface library as sorted `(name, text)` pairs.
    pub defs: Vec<(String, String)>,
    /// DKY strategy (§2.2).
    pub strategy: DkyStrategy,
    /// Executor choice.
    pub exec: ExecChoice,
    /// Run the dataflow lints.
    pub analyze: bool,
    /// Per-task watchdog deadline.
    pub task_deadline: Option<u64>,
    /// Supervised-retry budget per stream task.
    pub max_stream_retries: u32,
}

impl WireRequest {
    /// Lowers a service request to wire form. The fault plan (if any)
    /// does not travel; the reconstructed request compiles clean.
    pub fn from_request(req: &CompileRequest) -> WireRequest {
        WireRequest {
            client: req.client,
            module: req.module.clone(),
            source: req.source.clone(),
            defs: req.defs.all_definitions().unwrap_or_default(),
            strategy: req.strategy,
            exec: req.exec,
            analyze: req.analyze,
            task_deadline: req.task_deadline,
            max_stream_retries: req.max_stream_retries,
        }
    }

    /// Reconstructs the service request a shard will actually run.
    pub fn to_request(&self) -> CompileRequest {
        let mut lib = DefLibrary::new();
        for (name, text) in &self.defs {
            lib.insert(name.clone(), text.clone());
        }
        CompileRequest {
            client: self.client,
            module: self.module.clone(),
            source: self.source.clone(),
            defs: Arc::new(lib),
            strategy: self.strategy,
            exec: self.exec,
            analyze: self.analyze,
            faults: None,
            task_deadline: self.task_deadline,
            max_stream_retries: self.max_stream_retries,
        }
    }
}

/// A compile outcome in wire form. The fields the equivalence suite
/// compares (object bytes in the interner-independent encoding,
/// rendered diagnostics) travel verbatim; process-local counters
/// (`incr`, `virtual_cost`) do not — they describe the *shard's* cache
/// and simulator, not the request, and routing must not change a
/// client-visible answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireOutcome {
    /// Request fingerprint this outcome answers.
    pub request_fp: Fp128,
    /// Compilation produced an image with no errors.
    pub ok: bool,
    /// Merged object image ([`ccm2_incr::encode_image`] encoding).
    pub object: Option<Vec<u8>>,
    /// Diagnostics rendered with stable file names.
    pub diagnostics: Vec<String>,
    /// Wall-clock microseconds the owning shard spent.
    pub wall_micros: u64,
    /// Streams compiled.
    pub streams: u64,
    /// A stream degraded after a caught fault.
    pub degraded: bool,
    /// A watchdog diagnosis fired.
    pub stalled: bool,
}

impl WireOutcome {
    /// Lowers a shard-local outcome to wire form.
    pub fn from_outcome(out: &CompileOutcome) -> WireOutcome {
        WireOutcome {
            request_fp: out.request_fp,
            ok: out.ok,
            object: out.object.clone(),
            diagnostics: out.diagnostics.clone(),
            wall_micros: out.wall_micros,
            streams: out.streams as u64,
            degraded: out.degraded,
            stalled: out.stalled,
        }
    }
}

/// One fabric message (the payload of one frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Router → shard: compile this.
    Compile(WireRequest),
    /// Shard → router: the answer to a [`Message::Compile`].
    Outcome(WireOutcome),
    /// Shard → router: the request was not admitted (queue full /
    /// over quota). The router backs off and resubmits — same protocol
    /// as [`ccm2_serve::Response::Retry`], with the reason attached for
    /// the stats log and a `Retry-After`-style hint (milliseconds the
    /// shard suggests waiting before resubmitting, from its queue
    /// pressure; `0` = no hint).
    Reject {
        /// Human-readable rejection reason (stats log only).
        reason: String,
        /// Suggested client backoff in milliseconds (0 = no hint).
        retry_after_ms: u64,
    },
    /// Router → shard: hand over the store deltas accumulated since the
    /// last sync (the shard answers [`Message::DeltaShip`], possibly
    /// with an empty batch).
    Sync,
    /// An encoded `CCM2DELT` batch from `from_shard`, forwarded by the
    /// router to each surviving peer (which answers [`Message::Ack`] —
    /// or [`Message::EpochReject`] when the stamp is stale).
    DeltaShip {
        /// Shard the deltas originate from.
        from_shard: u32,
        /// `ccm2_incr::encode_delta` output, validated on receipt.
        batch: Vec<u8>,
        /// Sending router (lease stamp; [`NO_ROUTER`] on shard→router
        /// sync answers, which carry no authority).
        router: u32,
        /// The sender's lease epoch at send time.
        epoch: u64,
    },
    /// Router → shard at failover: apply the replica log you hold for
    /// `dead_shard` into your own store, then discard it. Stamped with
    /// the router's lease epoch: a stale-epoch absorb is refused with
    /// [`Message::EpochReject`], so an ex-leader cannot double-absorb.
    Absorb {
        /// The shard that died.
        dead_shard: u32,
        /// Sending router (lease stamp).
        router: u32,
        /// The sender's lease epoch at send time.
        epoch: u64,
    },
    /// Generic success reply for replication-plane messages.
    Ack,
    /// Router → shard: heartbeat probe from the failure detector. The
    /// nonce ties the reply to the probe — a stale or duplicated
    /// [`Message::Pong`] (delayed delivery, at-least-once links) must
    /// not clear a newer suspicion.
    Ping {
        /// Echo-me token chosen by the router per probe round.
        nonce: u64,
    },
    /// Shard → router: heartbeat answer, echoing the probe nonce. In
    /// version 3 the pong also reports the shard's lease view, which is
    /// how standby routers observe leadership and its expiry without a
    /// dedicated polling plane.
    Pong {
        /// The responding shard's id (guards cross-wired transports).
        shard: u32,
        /// The nonce of the [`Message::Ping`] being answered.
        nonce: u64,
        /// The highest lease epoch this shard has granted.
        lease_epoch: u64,
        /// The router holding that epoch ([`NO_ROUTER`] = none yet).
        lease_router: u32,
        /// Probe rounds answered since the holder last renewed — the
        /// shard-side expiry clock (deterministic: it advances on pings,
        /// not on wall time).
        lease_age: u32,
    },
    /// Router → shard: export your full store image (join warm-up and
    /// gapped-log reconciliation; answered by [`Message::Image`]).
    FetchImage,
    /// A full store image in LRU order (coldest first, so importing in
    /// order reproduces the source's eviction order). Travels in both
    /// directions: a shard answers [`Message::FetchImage`] with it, and
    /// the router pushes one to a joiner or a gapped survivor (which
    /// imports it and answers [`Message::Ack`]).
    Image {
        /// The source store's delta cursor at export time.
        delta_seq: u64,
        /// `(fingerprint, encoded unit)` pairs, coldest first.
        entries: Vec<(Fp128, Vec<u8>)>,
        /// Sending router (lease stamp; [`NO_ROUTER`] on shard→router
        /// answers, which carry no authority).
        router: u32,
        /// The sender's lease epoch at send time. Only checked on
        /// *pushed* images — an `Image` answering a fetch is data, not
        /// a membership action.
        epoch: u64,
    },
    /// Shard → router: the answer to [`Message::Absorb`] (version 2;
    /// replaces the bare [`Message::Ack`] so the router can see whether
    /// the replica log replayed cleanly or had been *gapped* by cap
    /// overflow and discarded — the trigger for a full-image
    /// reconciliation instead of a silent hole).
    AbsorbDone {
        /// Delta ops actually replayed into the survivor's store.
        applied_ops: u64,
        /// The log had lost ops (cap overflow / sequence gap) and was
        /// discarded without replay.
        gapped: bool,
    },
    /// Router → shard (version 3): claim the eviction lease at `epoch`.
    /// The shard grants each epoch number at most once (strictly
    /// increasing), answering [`Message::Ack`]; a router that gathers
    /// grants from a *majority* of the membership is the unique leader
    /// for that epoch — two routers can never both win one.
    LeaseGrant {
        /// The claiming router's id.
        router: u32,
        /// The epoch being claimed (must exceed every epoch the shard
        /// has granted).
        epoch: u64,
    },
    /// Router → shard (version 3): the current holder refreshing its
    /// lease; resets the shard's expiry clock ([`Message::Pong`]'s
    /// `lease_age`). From anyone else: [`Message::EpochReject`].
    LeaseRenew {
        /// The renewing router's id.
        router: u32,
        /// The epoch being renewed.
        epoch: u64,
    },
    /// Shard → router (version 3): the message's lease stamp was stale.
    /// Carries the shard's current lease view so the rejected router
    /// can catch up (demote, resync membership) instead of retrying
    /// blind.
    EpochReject {
        /// The highest epoch this shard has granted.
        epoch: u64,
        /// The holder of that epoch ([`NO_ROUTER`] = none).
        router: u32,
    },
    /// Router → shard (version 3): report your retry-burn counters
    /// (answered by [`Message::StatsReport`]).
    FetchStats,
    /// Shard → router: the admission/retry counters behind the fleet's
    /// retry-burn view ([`ccm2_serve::ServiceStats`] extract plus live
    /// queue pressure).
    StatsReport {
        /// The reporting shard's id.
        shard: u32,
        /// Compile frames answered with an outcome.
        compiles: u64,
        /// Queue-full sheds at admission.
        shed: u64,
        /// Per-client quota sheds at admission.
        quota_shed: u64,
        /// Backoff retry attempts burned by shard-side admission.
        retry_attempts_used: u64,
        /// Requests admitted on a retry attempt.
        retry_recovered: u64,
        /// Requests still shed after the full retry budget.
        retry_exhausted: u64,
        /// The shard's configured per-request retry budget.
        retry_budget: u32,
        /// Requests waiting in the admission queue right now.
        queue_len: u32,
    },
}

/// Encodes a message as one checksummed frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = encode_payload(msg);
    let mut buf = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    buf.extend_from_slice(WIRE_MAGIC);
    buf.extend_from_slice(&WIRE_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&payload);
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.hi.to_le_bytes());
    buf.extend_from_slice(&sum.lo.to_le_bytes());
    buf
}

/// Decodes one frame. Strict: magic, version, exact length accounting
/// and the trailer checksum must all hold, else `None`.
pub fn decode_frame(buf: &[u8]) -> Option<Message> {
    if buf.len() < FRAME_OVERHEAD || &buf[..WIRE_MAGIC.len()] != WIRE_MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 16];
    let trailer = &buf[buf.len() - 16..];
    let sum = checksum(body);
    if trailer[..8] != sum.hi.to_le_bytes() || trailer[8..] != sum.lo.to_le_bytes() {
        return None;
    }
    let version = u32::from_le_bytes(body.get(8..12)?.try_into().ok()?);
    if version != WIRE_FORMAT_VERSION {
        return None;
    }
    let len = u32::from_le_bytes(body.get(12..16)?.try_into().ok()?) as usize;
    let payload = body.get(16..)?;
    if payload.len() != len {
        return None;
    }
    decode_payload(payload)
}

/// Splits the frame header and returns the *total* frame length it
/// announces, for streaming reads off a socket. The header alone is not
/// yet trusted (the checksum spans the whole frame); the transport
/// reads `total` bytes and hands them to [`decode_frame`]. Rejects
/// bad magic, version skew, and payloads above `max_payload`
/// immediately so a garbage header cannot make the reader allocate or
/// block for gigabytes.
pub fn frame_len(header: &[u8; 16], max_payload: usize) -> Option<usize> {
    if &header[..8] != WIRE_MAGIC {
        return None;
    }
    if u32::from_le_bytes(header[8..12].try_into().ok()?) != WIRE_FORMAT_VERSION {
        return None;
    }
    let len = u32::from_le_bytes(header[12..16].try_into().ok()?) as usize;
    (len <= max_payload).then_some(FRAME_OVERHEAD + len)
}

pub(crate) fn checksum(bytes: &[u8]) -> Fp128 {
    let mut h = StableHasher::new();
    h.write_str("ccm2-wire/v1");
    h.write(bytes);
    h.finish()
}

/// Assembles a frame claiming `version` around `payload`, with a
/// *valid* trailer checksum — the shape a well-behaved peer from a
/// different protocol generation would send. Test-only: version-skew
/// coverage must exercise the version guard, not the integrity check.
#[cfg(test)]
pub(crate) fn versioned_frame(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    buf.extend_from_slice(WIRE_MAGIC);
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.hi.to_le_bytes());
    buf.extend_from_slice(&sum.lo.to_le_bytes());
    buf
}

fn encode_payload(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::new();
    match msg {
        Message::Compile(req) => {
            buf.push(1);
            put_u64(&mut buf, req.client);
            put_str(&mut buf, &req.module);
            put_str(&mut buf, &req.source);
            put_u32(&mut buf, req.defs.len() as u32);
            for (name, text) in &req.defs {
                put_str(&mut buf, name);
                put_str(&mut buf, text);
            }
            buf.push(match req.strategy {
                DkyStrategy::Avoidance => 0,
                DkyStrategy::Pessimistic => 1,
                DkyStrategy::Skeptical => 2,
                DkyStrategy::Optimistic => 3,
            });
            match req.exec {
                ExecChoice::Sim(n) => {
                    buf.push(1);
                    put_u32(&mut buf, n);
                }
                ExecChoice::Threads(n) => {
                    buf.push(2);
                    put_u64(&mut buf, n as u64);
                }
            }
            buf.push(u8::from(req.analyze));
            // Option<u64> as 0 = None, v + 1 = Some(v) — the same
            // convention the request fingerprint uses.
            put_u64(&mut buf, req.task_deadline.map_or(0, |d| d + 1));
            put_u32(&mut buf, req.max_stream_retries);
        }
        Message::Outcome(out) => {
            buf.push(2);
            put_fp(&mut buf, out.request_fp);
            buf.push(u8::from(out.ok));
            match &out.object {
                Some(bytes) => {
                    buf.push(1);
                    put_bytes(&mut buf, bytes);
                }
                None => buf.push(0),
            }
            put_u32(&mut buf, out.diagnostics.len() as u32);
            for d in &out.diagnostics {
                put_str(&mut buf, d);
            }
            put_u64(&mut buf, out.wall_micros);
            put_u64(&mut buf, out.streams);
            buf.push(u8::from(out.degraded));
            buf.push(u8::from(out.stalled));
        }
        Message::Reject {
            reason,
            retry_after_ms,
        } => {
            buf.push(3);
            put_str(&mut buf, reason);
            put_u64(&mut buf, *retry_after_ms);
        }
        Message::Sync => buf.push(4),
        Message::DeltaShip {
            from_shard,
            batch,
            router,
            epoch,
        } => {
            buf.push(5);
            put_u32(&mut buf, *from_shard);
            put_bytes(&mut buf, batch);
            put_u32(&mut buf, *router);
            put_u64(&mut buf, *epoch);
        }
        Message::Absorb {
            dead_shard,
            router,
            epoch,
        } => {
            buf.push(6);
            put_u32(&mut buf, *dead_shard);
            put_u32(&mut buf, *router);
            put_u64(&mut buf, *epoch);
        }
        Message::Ack => buf.push(7),
        Message::Ping { nonce } => {
            buf.push(8);
            put_u64(&mut buf, *nonce);
        }
        Message::Pong {
            shard,
            nonce,
            lease_epoch,
            lease_router,
            lease_age,
        } => {
            buf.push(9);
            put_u32(&mut buf, *shard);
            put_u64(&mut buf, *nonce);
            put_u64(&mut buf, *lease_epoch);
            put_u32(&mut buf, *lease_router);
            put_u32(&mut buf, *lease_age);
        }
        Message::FetchImage => buf.push(10),
        Message::Image {
            delta_seq,
            entries,
            router,
            epoch,
        } => {
            buf.push(11);
            put_u64(&mut buf, *delta_seq);
            put_u32(&mut buf, entries.len() as u32);
            for (fp, bytes) in entries {
                put_fp(&mut buf, *fp);
                put_bytes(&mut buf, bytes);
            }
            put_u32(&mut buf, *router);
            put_u64(&mut buf, *epoch);
        }
        Message::AbsorbDone {
            applied_ops,
            gapped,
        } => {
            buf.push(12);
            put_u64(&mut buf, *applied_ops);
            buf.push(u8::from(*gapped));
        }
        Message::LeaseGrant { router, epoch } => {
            buf.push(13);
            put_u32(&mut buf, *router);
            put_u64(&mut buf, *epoch);
        }
        Message::LeaseRenew { router, epoch } => {
            buf.push(14);
            put_u32(&mut buf, *router);
            put_u64(&mut buf, *epoch);
        }
        Message::EpochReject { epoch, router } => {
            buf.push(15);
            put_u64(&mut buf, *epoch);
            put_u32(&mut buf, *router);
        }
        Message::FetchStats => buf.push(16),
        Message::StatsReport {
            shard,
            compiles,
            shed,
            quota_shed,
            retry_attempts_used,
            retry_recovered,
            retry_exhausted,
            retry_budget,
            queue_len,
        } => {
            buf.push(17);
            put_u32(&mut buf, *shard);
            put_u64(&mut buf, *compiles);
            put_u64(&mut buf, *shed);
            put_u64(&mut buf, *quota_shed);
            put_u64(&mut buf, *retry_attempts_used);
            put_u64(&mut buf, *retry_recovered);
            put_u64(&mut buf, *retry_exhausted);
            put_u32(&mut buf, *retry_budget);
            put_u32(&mut buf, *queue_len);
        }
    }
    buf
}

fn decode_payload(payload: &[u8]) -> Option<Message> {
    let mut r = Reader {
        buf: payload,
        pos: 1,
    };
    let msg = match *payload.first()? {
        1 => {
            let client = r.u64()?;
            let module = r.str()?;
            let source = r.str()?;
            let n = r.u32()? as usize;
            let mut defs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                defs.push((r.str()?, r.str()?));
            }
            let strategy = match r.u8()? {
                0 => DkyStrategy::Avoidance,
                1 => DkyStrategy::Pessimistic,
                2 => DkyStrategy::Skeptical,
                3 => DkyStrategy::Optimistic,
                _ => return None,
            };
            let exec = match r.u8()? {
                1 => ExecChoice::Sim(r.u32()?),
                2 => ExecChoice::Threads(r.u64()? as usize),
                _ => return None,
            };
            let analyze = r.bool()?;
            let task_deadline = match r.u64()? {
                0 => None,
                d => Some(d - 1),
            };
            let max_stream_retries = r.u32()?;
            Message::Compile(WireRequest {
                client,
                module,
                source,
                defs,
                strategy,
                exec,
                analyze,
                task_deadline,
                max_stream_retries,
            })
        }
        2 => {
            let request_fp = r.fp()?;
            let ok = r.bool()?;
            let object = match r.u8()? {
                0 => None,
                1 => Some(r.bytes()?),
                _ => return None,
            };
            let n = r.u32()? as usize;
            let mut diagnostics = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                diagnostics.push(r.str()?);
            }
            let wall_micros = r.u64()?;
            let streams = r.u64()?;
            let degraded = r.bool()?;
            let stalled = r.bool()?;
            Message::Outcome(WireOutcome {
                request_fp,
                ok,
                object,
                diagnostics,
                wall_micros,
                streams,
                degraded,
                stalled,
            })
        }
        3 => Message::Reject {
            reason: r.str()?,
            retry_after_ms: r.u64()?,
        },
        4 => Message::Sync,
        5 => Message::DeltaShip {
            from_shard: r.u32()?,
            batch: r.bytes()?,
            router: r.u32()?,
            epoch: r.u64()?,
        },
        6 => Message::Absorb {
            dead_shard: r.u32()?,
            router: r.u32()?,
            epoch: r.u64()?,
        },
        7 => Message::Ack,
        8 => Message::Ping { nonce: r.u64()? },
        9 => Message::Pong {
            shard: r.u32()?,
            nonce: r.u64()?,
            lease_epoch: r.u64()?,
            lease_router: r.u32()?,
            lease_age: r.u32()?,
        },
        10 => Message::FetchImage,
        11 => {
            let delta_seq = r.u64()?;
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                entries.push((r.fp()?, r.bytes()?));
            }
            Message::Image {
                delta_seq,
                entries,
                router: r.u32()?,
                epoch: r.u64()?,
            }
        }
        12 => Message::AbsorbDone {
            applied_ops: r.u64()?,
            gapped: r.bool()?,
        },
        13 => Message::LeaseGrant {
            router: r.u32()?,
            epoch: r.u64()?,
        },
        14 => Message::LeaseRenew {
            router: r.u32()?,
            epoch: r.u64()?,
        },
        15 => Message::EpochReject {
            epoch: r.u64()?,
            router: r.u32()?,
        },
        16 => Message::FetchStats,
        17 => Message::StatsReport {
            shard: r.u32()?,
            compiles: r.u64()?,
            shed: r.u64()?,
            quota_shed: r.u64()?,
            retry_attempts_used: r.u64()?,
            retry_recovered: r.u64()?,
            retry_exhausted: r.u64()?,
            retry_budget: r.u32()?,
            queue_len: r.u32()?,
        },
        _ => return None,
    };
    // Exact length accounting: trailing garbage means a framing bug or
    // tampering, not a shorter message.
    (r.pos == payload.len()).then_some(msg)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn fp(&mut self) -> Option<Fp128> {
        let hi = self.u64()?;
        let lo = self.u64()?;
        Some(Fp128 { hi, lo })
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        Some(self.take(len)?.to_vec())
    }

    fn str(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_fp(buf: &mut Vec<u8>, fp: Fp128) {
    put_u64(buf, fp.hi);
    put_u64(buf, fp.lo);
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> WireRequest {
        WireRequest {
            client: 7,
            module: "Main".into(),
            source: "MODULE Main; BEGIN END Main.".into(),
            defs: vec![
                ("IO".into(), "DEFINITION MODULE IO; END IO.".into()),
                ("Str".into(), "DEFINITION MODULE Str; END Str.".into()),
            ],
            strategy: DkyStrategy::Optimistic,
            exec: ExecChoice::Sim(4),
            analyze: true,
            task_deadline: Some(0),
            max_stream_retries: 3,
        }
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Compile(sample_request()),
            Message::Outcome(WireOutcome {
                request_fp: Fp128 { hi: 1, lo: 2 },
                ok: true,
                object: Some(b"image".to_vec()),
                diagnostics: vec!["warning: x".into()],
                wall_micros: 1234,
                streams: 5,
                degraded: false,
                stalled: true,
            }),
            Message::Outcome(WireOutcome {
                request_fp: Fp128 { hi: 3, lo: 4 },
                ok: false,
                object: None,
                diagnostics: Vec::new(),
                wall_micros: 0,
                streams: 0,
                degraded: true,
                stalled: false,
            }),
            Message::Reject {
                reason: "queue full".into(),
                retry_after_ms: 12,
            },
            Message::Sync,
            Message::DeltaShip {
                from_shard: 2,
                batch: ccm2_incr::encode_delta(9, &[]),
                router: 0,
                epoch: 4,
            },
            Message::Absorb {
                dead_shard: 1,
                router: 1,
                epoch: 9,
            },
            Message::Ack,
            Message::Ping { nonce: 0xC0FFEE },
            Message::Pong {
                shard: 3,
                nonce: 0xC0FFEE,
                lease_epoch: 5,
                lease_router: 1,
                lease_age: 2,
            },
            Message::Pong {
                shard: 0,
                nonce: 1,
                lease_epoch: 0,
                lease_router: NO_ROUTER,
                lease_age: 0,
            },
            Message::FetchImage,
            Message::Image {
                delta_seq: 42,
                entries: vec![
                    (Fp128 { hi: 5, lo: 6 }, b"cold".to_vec()),
                    (Fp128 { hi: 7, lo: 8 }, b"warm".to_vec()),
                ],
                router: 0,
                epoch: 3,
            },
            Message::Image {
                delta_seq: 0,
                entries: Vec::new(),
                router: NO_ROUTER,
                epoch: 0,
            },
            Message::AbsorbDone {
                applied_ops: 17,
                gapped: false,
            },
            Message::AbsorbDone {
                applied_ops: 0,
                gapped: true,
            },
            Message::LeaseGrant {
                router: 2,
                epoch: 11,
            },
            Message::LeaseRenew {
                router: 2,
                epoch: 11,
            },
            Message::EpochReject {
                epoch: 11,
                router: 2,
            },
            Message::FetchStats,
            Message::StatsReport {
                shard: 4,
                compiles: 100,
                shed: 3,
                quota_shed: 1,
                retry_attempts_used: 9,
                retry_recovered: 2,
                retry_exhausted: 1,
                retry_budget: 3,
                queue_len: 5,
            },
        ]
    }

    #[test]
    fn every_message_kind_round_trips() {
        for msg in sample_messages() {
            let frame = encode_frame(&msg);
            assert_eq!(decode_frame(&frame).as_ref(), Some(&msg), "{msg:?}");
            let header: [u8; 16] = frame[..16].try_into().unwrap();
            assert_eq!(
                frame_len(&header, 1 << 20),
                Some(frame.len()),
                "header length agrees for {msg:?}"
            );
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let frame = encode_frame(&Message::Compile(sample_request()));
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            assert!(decode_frame(&bad).is_none(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn torn_version_skewed_and_oversized_frames_are_rejected() {
        let frame = encode_frame(&Message::Sync);
        assert!(decode_frame(&frame[..frame.len() - 1]).is_none(), "torn");
        assert!(decode_frame(&frame[..4]).is_none(), "truncated header");
        assert!(decode_frame(b"").is_none());

        let mut skew = frame.clone();
        skew[8] = 99; // version byte
        assert!(decode_frame(&skew).is_none(), "version skew");
        let header: [u8; 16] = skew[..16].try_into().unwrap();
        assert_eq!(frame_len(&header, 1 << 20), None, "header rejects skew");

        let header: [u8; 16] = frame[..16].try_into().unwrap();
        assert_eq!(
            frame_len(&header, 0),
            None,
            "payload above the cap is refused before allocation"
        );
    }

    // CI greps for a `wire_version_{N}_mismatch_rejected` test matching
    // the current WIRE_FORMAT_VERSION: bumping the constant without a
    // fresh cross-version rejection test fails the gate (ci.sh).
    #[test]
    fn wire_version_3_mismatch_rejected() {
        assert_eq!(WIRE_FORMAT_VERSION, 3);
        let frame = encode_frame(&Message::Sync);
        for other in [0u32, 1, 2, 4, u32::MAX] {
            let mut skew = frame.clone();
            skew[8..12].copy_from_slice(&other.to_le_bytes());
            assert!(
                decode_frame(&skew).is_none(),
                "a v{other} frame must not decode on a v3 peer"
            );
        }
        // A peer one version *ahead* with a well-formed (valid-checksum)
        // frame — the realistic skew during a rolling upgrade — is
        // rejected by the version check, not the checksum.
        let future = versioned_frame(4, &[8, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(decode_frame(&future).is_none(), "future Ping rejected");
    }

    // The v2↔v3 skew matrix: every message kind either generation
    // knows, encoded under either version number with a *valid*
    // checksum, fails closed on a peer of the other generation. The
    // rolling-upgrade rule "mixed fleets retry elsewhere, never
    // misdecode" holds in both directions and for lease frames
    // specifically.
    #[test]
    fn v2_v3_version_skew_matrix_fails_closed() {
        for msg in sample_messages() {
            let payload = encode_payload(&msg);
            // A v3 payload wrapped in a v2 frame (old peer replaying
            // captured bytes, or a half-upgraded proxy).
            let old = versioned_frame(2, &payload);
            assert!(decode_frame(&old).is_none(), "v2-wrapped {msg:?}");
            // And in a far-future frame.
            let future = versioned_frame(7, &payload);
            assert!(decode_frame(&future).is_none(), "v7-wrapped {msg:?}");
        }
        // A genuine v2 `Pong { shard, nonce }` payload (no lease view)
        // presented as v3: the v3 decoder wants 16 more bytes, so even
        // with the version forged to match, length accounting kills it.
        let mut v2_pong = vec![9u8];
        v2_pong.extend_from_slice(&3u32.to_le_bytes());
        v2_pong.extend_from_slice(&0xC0FFEEu64.to_le_bytes());
        assert!(
            decode_frame(&versioned_frame(WIRE_FORMAT_VERSION, &v2_pong)).is_none(),
            "a short v2 Pong body must not decode as v3"
        );
        // Same for a v2 Absorb { dead_shard } with no lease stamp.
        let mut v2_absorb = vec![6u8];
        v2_absorb.extend_from_slice(&1u32.to_le_bytes());
        assert!(
            decode_frame(&versioned_frame(WIRE_FORMAT_VERSION, &v2_absorb)).is_none(),
            "a stampless v2 Absorb must not decode as v3"
        );
    }

    // Lease-plane damage: truncated or bit-flipped LeaseGrant /
    // LeaseRenew / EpochReject frames never decode — a corrupted lease
    // frame can neither grant, renew, nor revoke authority. Stale
    // epochs are *valid* frames (the shard answers EpochReject at the
    // protocol layer, exercised in the shard tests); here the claim is
    // that damage is indistinguishable from silence.
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig {
            cases: 64,
            ..proptest::ProptestConfig::default()
        })]

        #[test]
        fn damaged_lease_frames_never_decode(
            router in 0u32..=u32::MAX,
            epoch in 0u64..=u64::MAX,
            cut in 0usize..64,
            at in 0usize..64,
            mask in 1u8..=255,
        ) {
            for msg in [
                Message::LeaseGrant { router, epoch },
                Message::LeaseRenew { router, epoch },
                Message::EpochReject { epoch, router },
            ] {
                let frame = encode_frame(&msg);
                proptest::prop_assert_eq!(decode_frame(&frame).as_ref(), Some(&msg));
                let cut = cut.min(frame.len() - 1);
                proptest::prop_assert!(decode_frame(&frame[..cut]).is_none(), "torn at {}", cut);
                let mut flipped = frame.clone();
                let at = at % flipped.len();
                flipped[at] ^= mask;
                proptest::prop_assert!(decode_frame(&flipped).is_none(), "flip at {}", at);
                // The same bytes under a v2 header (valid checksum) are
                // version-skew, also rejected.
                let skew = versioned_frame(2, &encode_payload(&msg));
                proptest::prop_assert!(decode_frame(&skew).is_none(), "v2 skew decoded");
            }
        }
    }

    // Any truncation or byte-damage of a heartbeat frame decodes to
    // `None` (never panics, never misdecodes): the failure detector's
    // suspicion clock only ever advances on genuine silence or genuine
    // answers.
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig {
            cases: 64,
            ..proptest::ProptestConfig::default()
        })]

        #[test]
        fn damaged_heartbeat_frames_never_decode(
            nonce in 0u64..=u64::MAX,
            shard in 0u32..=u32::MAX,
            cut in 0usize..64,
            at in 0usize..64,
            mask in 1u8..=255,
        ) {
            for msg in [
                Message::Ping { nonce },
                Message::Pong {
                    shard,
                    nonce,
                    lease_epoch: nonce ^ 0x5EED,
                    lease_router: shard.wrapping_add(1),
                    lease_age: shard % 7,
                },
            ] {
                let frame = encode_frame(&msg);
                proptest::prop_assert_eq!(decode_frame(&frame).as_ref(), Some(&msg));
                let cut = cut.min(frame.len() - 1);
                proptest::prop_assert!(decode_frame(&frame[..cut]).is_none(), "torn at {}", cut);
                let mut flipped = frame.clone();
                let at = at % flipped.len();
                flipped[at] ^= mask;
                proptest::prop_assert!(decode_frame(&flipped).is_none(), "flip at {}", at);
            }
        }
    }

    #[test]
    fn wire_request_round_trips_through_a_service_request() {
        let wire = sample_request();
        let req = wire.to_request();
        assert_eq!(WireRequest::from_request(&req), wire);
        // The reconstructed request fingerprints identically to a
        // locally built one with the same inputs — the routing key and
        // the shard's single-flight key agree.
        let again = wire.to_request();
        assert_eq!(req.fingerprint(), again.fingerprint());
    }

    #[test]
    fn fault_plans_do_not_travel() {
        let mut req = sample_request().to_request();
        req.faults = Some(std::sync::Arc::new(ccm2_faults::FaultPlan::new()));
        let wire = WireRequest::from_request(&req);
        assert!(wire.to_request().faults.is_none());
    }
}
