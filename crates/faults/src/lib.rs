//! Deterministic fault-injection plane.
//!
//! A [`FaultPlan`] decides, for every *named site* the runtime passes
//! through, whether a fault fires there and which kind. The decision is
//! a **pure function of the site name** (explicit overrides first, then
//! a seeded hash), so it is independent of scheduling order: the same
//! plan injects the same faults whether the compile runs on the
//! virtual-time simulator or on real threads, with any worker count.
//! That is what makes the survival matrix (`reproduce -- faults`) and
//! the degradation property tests reproducible.
//!
//! # Site naming
//!
//! | prefix      | queried by                  | kinds that apply          |
//! |-------------|-----------------------------|---------------------------|
//! | `task:{name}`   | both executors, at dispatch | [`FaultKind::Panic`], [`FaultKind::Stall`] |
//! | `task:{name}#r{k}` | dispatch of retry attempt `k >= 1` under supervised recovery | same as `task:` |
//! | `signal:{event}`| both executors, per signal  | [`FaultKind::LoseSignal`] |
//! | `store:{fp hex}`| artifact stores, at `store` | [`FaultKind::Corrupt`]    |
//! | `shard:{id}#d{n}` | the fabric router, before dispatch `n` to shard `id` | [`FaultKind::Panic`] (shard death) |
//! | `link:{id}#c{n}` | the fabric loopback transport, call `n` on the link to shard `id` | [`FaultKind::Panic`] (drop), [`FaultKind::LoseSignal`] (one-way partition: delivered, reply lost), [`FaultKind::Stall`] (delay/reorder: deferred delivery), [`FaultKind::Duplicate`], [`FaultKind::Corrupt`] |
//!
//! Task and event names are the scheduler's own labels (`codegen(M.P)`,
//! `heading(P)`, …), so a plan can target one stream of one compile.
//! Patterns may contain `*` wildcards (`task:codegen(*FaultShort*)`).
//! The retry suffix makes fault *persistence* expressible: an exact
//! `task:{name}` override models a transient fault (it matches attempt
//! 0 only, so a supervised retry recovers), while `task:{name}*` also
//! matches every `#r{k}` site and models a persistent fault that
//! exhausts the retry budget. `shard:` sites carry the router's global
//! dispatch counter, so `shard:2#d17` kills shard 2 at exactly dispatch
//! 17 while `shard:2#d*` kills it at its first routed dispatch — death
//! is permanent either way (the shard leaves the ring and its keys fail
//! over). `link:` sites carry a per-link call counter, so the same
//! exact-vs-glob idiom distinguishes a transient network fault
//! (`link:2#c17` damages one delivery) from a standing partition
//! (`link:2#c*` damages every delivery until the plan is lifted).
//!
//! Sites that fire are logged; [`FaultPlan::fired`] returns the sorted,
//! deduplicated list so harnesses can assert an injection actually
//! happened (a plan targeting a misspelled site would otherwise pass
//! vacuously). A plan built with [`FaultPlan::with_probe_recording`]
//! additionally logs every site *queried* — fired or not — which is how
//! `reproduce -- sites` enumerates the site namespace of a real compile
//! so chaos plans can be authored without grepping source.

use parking_lot::Mutex;

use ccm2_support::hash::StableHasher;

/// What happens at a site the plan selects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The task body panics at dispatch, before running any compiler
    /// code (the executor catches it and degrades the stream).
    Panic,
    /// Every signal of the event is dropped: the event is never marked
    /// signaled, so waiters wedge until the watchdog force-releases.
    LoseSignal,
    /// The task stalls at dispatch: `units` virtual time units on the
    /// simulator, `units` milliseconds of real sleep on threads.
    Stall {
        /// Stall length in executor-native units (see above).
        units: u64,
    },
    /// The artifact bytes are corrupted before they are persisted:
    /// the byte at `byte % len` is flipped (XOR 0x55). A `byte` of
    /// `usize::MAX` truncates the entry to half length instead.
    Corrupt {
        /// Which byte to flip, or `usize::MAX` to truncate.
        byte: usize,
    },
    /// The delivery is duplicated: the frame reaches the destination
    /// twice (at-least-once delivery). Only network-layer sites (`link:`)
    /// interpret this kind; executors and stores ignore it.
    Duplicate,
}

/// A deterministic fault plan: explicit site overrides plus an optional
/// seeded background rate.
pub struct FaultPlan {
    overrides: Vec<(String, FaultKind)>,
    seed: u64,
    /// Probability (parts per million) that any `task:` site panics
    /// under the seeded mode. 0 disables it.
    rate_ppm: u32,
    fired: Mutex<Vec<String>>,
    /// When true, every queried site is recorded in `probed` (site
    /// enumeration for `reproduce -- sites`).
    record_probes: bool,
    probed: Mutex<Vec<String>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("overrides", &self.overrides)
            .field("seed", &self.seed)
            .field("rate_ppm", &self.rate_ppm)
            .finish()
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan: no site ever fires.
    pub fn new() -> FaultPlan {
        FaultPlan {
            overrides: Vec::new(),
            seed: 0,
            rate_ppm: 0,
            fired: Mutex::new(Vec::new()),
            record_probes: false,
            probed: Mutex::new(Vec::new()),
        }
    }

    /// A plan injecting exactly one fault.
    pub fn single(pattern: impl Into<String>, kind: FaultKind) -> FaultPlan {
        FaultPlan::new().with_fault(pattern, kind)
    }

    /// Adds an explicit override: any site matching `pattern` (literal,
    /// or a glob with `*` wildcards) fires `kind`. First match wins.
    pub fn with_fault(mut self, pattern: impl Into<String>, kind: FaultKind) -> FaultPlan {
        self.overrides.push((pattern.into(), kind));
        self
    }

    /// A seeded random plan: each `task:` site independently panics
    /// with probability `rate_ppm` / 1e6, decided by hashing
    /// (seed, site) — stable across executors and runs.
    pub fn seeded(seed: u64, rate_ppm: u32) -> FaultPlan {
        FaultPlan {
            seed,
            rate_ppm,
            ..FaultPlan::new()
        }
    }

    /// Turns on probe recording: every site the runtime queries — fired
    /// or not — is logged for [`FaultPlan::probed`]. An empty plan with
    /// probe recording is the site-namespace enumerator behind
    /// `reproduce -- sites`.
    pub fn with_probe_recording(mut self) -> FaultPlan {
        self.record_probes = true;
        self
    }

    /// The fault at `site`, if any. Pure in the site name; firing sites
    /// are logged for [`FaultPlan::fired`].
    pub fn at(&self, site: &str) -> Option<FaultKind> {
        if self.record_probes {
            let mut probed = self.probed.lock();
            if !probed.iter().any(|s| s == site) {
                probed.push(site.to_string());
            }
        }
        let hit = self
            .overrides
            .iter()
            .find(|(p, _)| glob_match(p, site))
            .map(|(_, k)| *k)
            .or_else(|| self.seeded_hit(site));
        if let Some(kind) = hit {
            let entry = format!("{site} -> {kind:?}");
            let mut log = self.fired.lock();
            if !log.contains(&entry) {
                log.push(entry);
            }
        }
        hit
    }

    fn seeded_hit(&self, site: &str) -> Option<FaultKind> {
        if self.rate_ppm == 0 || !site.starts_with("task:") {
            return None;
        }
        let mut h = StableHasher::new();
        h.write_str("ccm2-faults/v1");
        h.write_u64(self.seed);
        h.write_str(site);
        let draw = h.finish().lo % 1_000_000;
        (draw < u64::from(self.rate_ppm)).then_some(FaultKind::Panic)
    }

    /// Sorted, deduplicated `site -> kind` log of every site that fired.
    pub fn fired(&self) -> Vec<String> {
        let mut v = self.fired.lock().clone();
        v.sort();
        v
    }

    /// Whether any site fired.
    pub fn any_fired(&self) -> bool {
        !self.fired.lock().is_empty()
    }

    /// Sorted, deduplicated list of every site queried so far. Empty
    /// unless the plan was built with
    /// [`FaultPlan::with_probe_recording`].
    pub fn probed(&self) -> Vec<String> {
        let mut v = self.probed.lock().clone();
        v.sort();
        v
    }
}

/// Glob-lite matching: `*` matches any (possibly empty) substring; all
/// other characters are literal.
fn glob_match(pattern: &str, site: &str) -> bool {
    if !pattern.contains('*') {
        return pattern == site;
    }
    let parts: Vec<&str> = pattern.split('*').collect();
    let mut pos = 0usize;
    let last = parts.len() - 1;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !site.starts_with(part) {
                return false;
            }
            pos = part.len();
        } else if i == last {
            let rest = &site[pos..];
            if !rest.ends_with(part) {
                return false;
            }
        } else {
            match site[pos..].find(part) {
                Some(off) => pos += off + part.len(),
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::new();
        assert_eq!(p.at("task:codegen(M.P)"), None);
        assert!(!p.any_fired());
    }

    #[test]
    fn exact_override_fires_and_logs() {
        let p = FaultPlan::single("task:codegen(M.P)", FaultKind::Panic);
        assert_eq!(p.at("task:codegen(M.P)"), Some(FaultKind::Panic));
        assert_eq!(p.at("task:codegen(M.Q)"), None);
        assert_eq!(p.fired(), vec!["task:codegen(M.P) -> Panic".to_string()]);
    }

    #[test]
    fn glob_patterns_match_substrings() {
        let p = FaultPlan::single("task:codegen(*FaultShort*)", FaultKind::Panic);
        assert_eq!(p.at("task:codegen(Mod.FaultShort)"), Some(FaultKind::Panic));
        assert_eq!(p.at("task:codegen(Mod.Other)"), None);
        assert_eq!(p.at("task:analyze(Mod.FaultShort)"), None);
        assert!(glob_match("signal:heading(*)", "signal:heading(P)"));
        assert!(glob_match("*", "anything"));
        assert!(!glob_match("task:a*b", "task:b-then-a"));
        assert!(glob_match("a*b*c", "a--b--c"));
        assert!(!glob_match("a*b*c", "a--c--b"));
    }

    #[test]
    fn shard_sites_support_exact_and_first_dispatch_kills() {
        // The fabric router queries `shard:{id}#d{n}` per dispatch.
        let exact = FaultPlan::single("shard:2#d17", FaultKind::Panic);
        assert_eq!(exact.at("shard:2#d17"), Some(FaultKind::Panic));
        assert_eq!(exact.at("shard:2#d18"), None);
        assert_eq!(exact.at("shard:21#d7"), None, "id is not a prefix match");
        let first = FaultPlan::single("shard:2#d*", FaultKind::Panic);
        assert_eq!(first.at("shard:2#d0"), Some(FaultKind::Panic));
        assert_eq!(first.at("shard:2#d430"), Some(FaultKind::Panic));
        assert_eq!(first.at("shard:0#d0"), None);
        // Seeded task-rate plans never touch shard sites.
        assert_eq!(FaultPlan::seeded(9, 1_000_000).at("shard:1#d0"), None);
    }

    #[test]
    fn link_sites_express_transient_and_standing_partitions() {
        let transient = FaultPlan::single("link:2#c17", FaultKind::Duplicate);
        assert_eq!(transient.at("link:2#c17"), Some(FaultKind::Duplicate));
        assert_eq!(transient.at("link:2#c18"), None);
        let standing = FaultPlan::single("link:3#c*", FaultKind::LoseSignal);
        assert_eq!(standing.at("link:3#c0"), Some(FaultKind::LoseSignal));
        assert_eq!(standing.at("link:3#c999"), Some(FaultKind::LoseSignal));
        assert_eq!(standing.at("link:30#c0"), None, "id is not a prefix match");
        // Seeded task-rate plans never touch link sites.
        assert_eq!(FaultPlan::seeded(9, 1_000_000).at("link:1#c0"), None);
    }

    #[test]
    fn first_matching_override_wins() {
        let p = FaultPlan::new()
            .with_fault("task:*", FaultKind::Stall { units: 7 })
            .with_fault("task:lex(Main)", FaultKind::Panic);
        assert_eq!(p.at("task:lex(Main)"), Some(FaultKind::Stall { units: 7 }));
    }

    #[test]
    fn seeded_mode_is_deterministic_and_task_only() {
        let a = FaultPlan::seeded(42, 500_000);
        let b = FaultPlan::seeded(42, 500_000);
        let sites = [
            "task:codegen(M.A)",
            "task:codegen(M.B)",
            "task:procparse(C)",
            "task:analyze(M.D)",
            "signal:heading(A)",
        ];
        let da: Vec<_> = sites.iter().map(|s| a.at(s)).collect();
        let db: Vec<_> = sites.iter().map(|s| b.at(s)).collect();
        assert_eq!(da, db);
        assert_eq!(da[4], None, "seeded mode only panics task sites");
        // At 50% some of these four task sites fire and some do not.
        assert!(da[..4].iter().any(|k| k.is_some()));
        assert!(da[..4].iter().any(|k| k.is_none()));
    }

    #[test]
    fn probe_recording_logs_every_queried_site() {
        let p = FaultPlan::new().with_probe_recording();
        assert_eq!(p.at("task:codegen(M.P)"), None);
        p.at("task:codegen(M.P)");
        p.at("signal:heading(P)");
        assert_eq!(
            p.probed(),
            vec![
                "signal:heading(P)".to_string(),
                "task:codegen(M.P)".to_string()
            ]
        );
        assert!(!p.any_fired(), "probing never injects");
        let silent = FaultPlan::new();
        silent.at("task:codegen(M.P)");
        assert!(silent.probed().is_empty(), "recording is opt-in");
    }

    #[test]
    fn retry_suffix_distinguishes_transient_from_persistent() {
        // Exact match = transient: fires on attempt 0 only.
        let transient = FaultPlan::single("task:codegen(M.P)", FaultKind::Panic);
        assert_eq!(transient.at("task:codegen(M.P)"), Some(FaultKind::Panic));
        assert_eq!(transient.at("task:codegen(M.P)#r1"), None);
        // Trailing glob = persistent: matches every retry attempt.
        let persistent = FaultPlan::single("task:codegen(M.P)*", FaultKind::Panic);
        assert_eq!(persistent.at("task:codegen(M.P)"), Some(FaultKind::Panic));
        assert_eq!(
            persistent.at("task:codegen(M.P)#r1"),
            Some(FaultKind::Panic)
        );
        assert_eq!(
            persistent.at("task:codegen(M.P)#r2"),
            Some(FaultKind::Panic)
        );
    }

    #[test]
    fn fired_log_dedups_repeat_queries() {
        let p = FaultPlan::single("signal:e", FaultKind::LoseSignal);
        p.at("signal:e");
        p.at("signal:e");
        p.at("signal:e");
        assert_eq!(p.fired().len(), 1);
    }
}
