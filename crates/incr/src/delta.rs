//! Store-delta entry format: the incremental half of the `CCM2SNAP`
//! journal.
//!
//! A full snapshot image replays an *entire* artifact store; a **delta
//! batch** replays only what changed since a sequence number —
//! insertions (with their bytes) and evictions/quarantines (key only).
//! The same encoded batch serves three consumers:
//!
//! * the on-disk delta journal (`ccm2-serve`), where snapshot + delta
//!   replay is the cheap restart path;
//! * the `ccm2-fabric` replication stream, where shards ship batches to
//!   peers inside `CCM2WIRE` frames;
//! * tests, which forge torn/bit-flipped batches to prove validation
//!   degrades to a miss instead of misdecoding.
//!
//! # Batch format (version 1)
//!
//! ```text
//! magic      8 bytes   b"CCM2DELT"
//! version    u32 LE    1
//! base_seq   u64 LE    sequence number *before* the first op
//! count      u32 LE    number of ops
//! op*        tag u8 (1=insert, 2=evict), fp hi u64 LE, fp lo u64 LE,
//!            [insert only: len u32 LE, bytes]
//! checksum   hi u64 LE, lo u64 LE   Fp128 of everything above
//! ```
//!
//! Ops are consecutive: the op at index `i` has sequence number
//! `base_seq + i + 1`, so a reader can verify chain contiguity across
//! batches without per-op sequence fields.

use ccm2_support::hash::{Fp128, StableHasher};

/// Magic prefix of an encoded delta batch.
pub const DELTA_MAGIC: &[u8; 8] = b"CCM2DELT";
/// Bump on any change to the encoding; readers treat other versions as
/// invalid (quarantine / miss), never as data.
pub const DELTA_FORMAT_VERSION: u32 = 1;

/// One store mutation, in replay order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// An entry was admitted (insertion or replacement).
    Insert {
        /// Content-address of the artifact.
        fp: Fp128,
        /// The artifact bytes.
        bytes: Vec<u8>,
    },
    /// An entry was removed (LRU eviction or quarantine).
    Evict {
        /// Content-address of the removed artifact.
        fp: Fp128,
    },
}

impl DeltaOp {
    /// The content-address this op touches.
    pub fn fp(&self) -> Fp128 {
        match self {
            DeltaOp::Insert { fp, .. } | DeltaOp::Evict { fp } => *fp,
        }
    }

    /// Encoded size of this op in a batch, in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            DeltaOp::Insert { bytes, .. } => 1 + 16 + 4 + bytes.len(),
            DeltaOp::Evict { .. } => 1 + 16,
        }
    }
}

/// Encodes `ops` as one checksummed batch whose first op has sequence
/// number `base_seq + 1`.
pub fn encode_delta(base_seq: u64, ops: &[DeltaOp]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        DELTA_MAGIC.len() + 4 + 8 + 4 + ops.iter().map(DeltaOp::encoded_len).sum::<usize>() + 16,
    );
    buf.extend_from_slice(DELTA_MAGIC);
    buf.extend_from_slice(&DELTA_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&base_seq.to_le_bytes());
    buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            DeltaOp::Insert { fp, bytes } => {
                buf.push(1);
                buf.extend_from_slice(&fp.hi.to_le_bytes());
                buf.extend_from_slice(&fp.lo.to_le_bytes());
                buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                buf.extend_from_slice(bytes);
            }
            DeltaOp::Evict { fp } => {
                buf.push(2);
                buf.extend_from_slice(&fp.hi.to_le_bytes());
                buf.extend_from_slice(&fp.lo.to_le_bytes());
            }
        }
    }
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.hi.to_le_bytes());
    buf.extend_from_slice(&sum.lo.to_le_bytes());
    buf
}

/// Decodes a batch, returning `(base_seq, ops)`. Strict validation —
/// magic, version, exact length accounting and the trailer checksum must
/// all hold; anything else (torn tail, bit flip, future version) is
/// `None` and the caller degrades to a miss / quarantines the segment.
pub fn decode_delta(buf: &[u8]) -> Option<(u64, Vec<DeltaOp>)> {
    if buf.len() < DELTA_MAGIC.len() + 4 + 8 + 4 + 16 || &buf[..DELTA_MAGIC.len()] != DELTA_MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 16];
    let trailer = &buf[buf.len() - 16..];
    let sum = checksum(body);
    if trailer[..8] != sum.hi.to_le_bytes() || trailer[8..] != sum.lo.to_le_bytes() {
        return None;
    }
    let mut pos = DELTA_MAGIC.len();
    let version = u32::from_le_bytes(body[pos..pos + 4].try_into().ok()?);
    pos += 4;
    if version != DELTA_FORMAT_VERSION {
        return None;
    }
    let base_seq = u64::from_le_bytes(body[pos..pos + 8].try_into().ok()?);
    pos += 8;
    let count = u32::from_le_bytes(body[pos..pos + 4].try_into().ok()?) as usize;
    pos += 4;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        if body.len() < pos + 17 {
            return None;
        }
        let tag = body[pos];
        let hi = u64::from_le_bytes(body[pos + 1..pos + 9].try_into().ok()?);
        let lo = u64::from_le_bytes(body[pos + 9..pos + 17].try_into().ok()?);
        pos += 17;
        let fp = Fp128 { hi, lo };
        match tag {
            1 => {
                if body.len() < pos + 4 {
                    return None;
                }
                let len = u32::from_le_bytes(body[pos..pos + 4].try_into().ok()?) as usize;
                pos += 4;
                if body.len() < pos + len {
                    return None;
                }
                ops.push(DeltaOp::Insert {
                    fp,
                    bytes: body[pos..pos + len].to_vec(),
                });
                pos += len;
            }
            2 => ops.push(DeltaOp::Evict { fp }),
            _ => return None,
        }
    }
    (pos == body.len()).then_some((base_seq, ops))
}

fn checksum(bytes: &[u8]) -> Fp128 {
    let mut h = StableHasher::new();
    h.write_str("ccm2-delta/v1");
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fp128 {
        Fp128 { hi: n, lo: !n }
    }

    fn sample() -> Vec<DeltaOp> {
        vec![
            DeltaOp::Insert {
                fp: fp(1),
                bytes: b"alpha".to_vec(),
            },
            DeltaOp::Evict { fp: fp(2) },
            DeltaOp::Insert {
                fp: fp(3),
                bytes: Vec::new(),
            },
        ]
    }

    #[test]
    fn round_trip_preserves_ops_and_base_seq() {
        let ops = sample();
        let buf = encode_delta(41, &ops);
        assert_eq!(decode_delta(&buf), Some((41, ops)));
    }

    #[test]
    fn empty_batch_round_trips() {
        let buf = encode_delta(0, &[]);
        assert_eq!(decode_delta(&buf), Some((0, Vec::new())));
    }

    #[test]
    fn corruption_and_version_skew_fail_validation() {
        let good = encode_delta(7, &sample());
        assert!(decode_delta(&good).is_some());
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            assert!(decode_delta(&bad).is_none(), "flip at byte {i} undetected");
        }
        assert!(decode_delta(&good[..good.len() - 1]).is_none(), "torn tail");
        assert!(decode_delta(&good[..10]).is_none(), "truncation");
        assert!(decode_delta(b"").is_none());
        let mut vskew = good.clone();
        vskew[DELTA_MAGIC.len()] = 99;
        assert!(decode_delta(&vskew).is_none(), "future version rejected");
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        let ops = sample();
        let buf = encode_delta(0, &ops);
        let overhead = DELTA_MAGIC.len() + 4 + 8 + 4 + 16;
        assert_eq!(
            buf.len(),
            overhead + ops.iter().map(DeltaOp::encoded_len).sum::<usize>()
        );
    }
}
