//! Versioned, checksummed, interner-independent cache-entry encoding.
//!
//! [`ccm2_support::Symbol`]s are run-local indices, so an on-disk entry
//! must never contain one: every symbol is written as its resolved string
//! and re-interned into the *current* run's interner at decode time.
//! Layout (all integers little-endian, strings length-prefixed UTF-8):
//!
//! ```text
//! magic "CCM2INCR" · version u32 · payload · checksum Fp128
//! ```
//!
//! The trailing checksum covers everything before it, so a truncated or
//! bit-flipped file fails [`decode_entry`] before any field is trusted;
//! the driver degrades such entries to cache misses. Bump
//! [`FORMAT_VERSION`] whenever the payload layout changes — old entries
//! then fail with [`DecodeError::Version`] instead of misdecoding, and
//! `ci.sh` insists on a `version_<N>_…` invalidation test matching the
//! constant.

use ccm2_codegen::ir::{CodeUnit, Instr, Shape};
use ccm2_codegen::merge::ModuleImage;
use ccm2_sema::builtins::Builtin;
use ccm2_support::hash::Fp128;
use ccm2_support::{Interner, Severity, Symbol};

/// On-disk format version. See the module docs before touching this.
/// v2: added the opaque interprocedural lock-summary blob (`summary`).
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"CCM2INCR";

/// A diagnostic recorded for replay, with spans relative to the stream's
/// carve start (offsets shift between edits; content does not).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedDiag {
    /// Severity class.
    pub severity: Severity,
    /// `span.lo - carve.lo` at record time.
    pub rel_lo: u32,
    /// `span.hi - carve.lo` at record time.
    pub rel_hi: u32,
    /// The message, verbatim.
    pub message: String,
}

/// Everything a cache hit must reproduce for one stream: the code unit,
/// the diagnostics its tasks would have reported, and the lint data (the
/// unit's used-name set feeds the whole-module unused-import check, and
/// `findings` keeps lint counts exact in reports).
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntryData {
    /// The compiled unit.
    pub unit: CodeUnit,
    /// Diagnostics to replay, carve-relative.
    pub diags: Vec<CachedDiag>,
    /// Resolved names the unit's analysis marked as used (sorted).
    pub used: Vec<String>,
    /// Lint findings the unit's analysis reported.
    pub findings: u32,
    /// The unit's interprocedural lock summary, in the self-validating
    /// `ccm2-analysis` wire format (`summary::encode_summary`, spans
    /// carve-relative). Opaque here: this crate never interprets it, the
    /// driver decodes it at splice time. Empty when analysis was off.
    pub summary: Vec<u8>,
}

/// Why an entry failed to decode. All variants are handled identically by
/// the driver (degrade to a miss + note); they are distinguished for
/// tests and the corruption diagnostic's message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than magic + version + checksum.
    TooShort,
    /// Magic bytes absent — not a cache entry at all.
    BadMagic,
    /// Written by a different format version.
    Version {
        /// The version found in the entry.
        found: u32,
    },
    /// Checksum mismatch: truncated or bit-flipped payload.
    Checksum,
    /// Structurally invalid payload (should be unreachable once the
    /// checksum passes, but decoding stays total anyway).
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "entry too short"),
            DecodeError::BadMagic => write!(f, "bad magic"),
            DecodeError::Version { found } => {
                write!(f, "format version {found} (expected {FORMAT_VERSION})")
            }
            DecodeError::Checksum => write!(f, "checksum mismatch"),
            DecodeError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn sym(&mut self, s: Symbol, interner: &Interner) {
        self.str(&interner.resolve(s));
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(DecodeError::Malformed("length"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Malformed("utf-8 string"))
    }
    fn sym(&mut self, interner: &Interner) -> Result<Symbol, DecodeError> {
        Ok(interner.intern(&self.str()?))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn write_shape(w: &mut Writer, shape: &Shape) {
    match shape {
        Shape::Int => w.u8(0),
        Shape::Real => w.u8(1),
        Shape::Bool => w.u8(2),
        Shape::Char => w.u8(3),
        Shape::Set => w.u8(4),
        Shape::Ptr => w.u8(5),
        Shape::ProcVal => w.u8(6),
        Shape::Str => w.u8(7),
        Shape::Addr => w.u8(8),
        Shape::Array(elem, len) => {
            w.u8(9);
            write_shape(w, elem);
            w.u32(*len);
        }
        Shape::Record(fields) => {
            w.u8(10);
            w.u32(fields.len() as u32);
            for f in fields {
                write_shape(w, f);
            }
        }
    }
}

fn read_shape(r: &mut Reader<'_>, depth: u32) -> Result<Shape, DecodeError> {
    if depth > 64 {
        return Err(DecodeError::Malformed("shape nesting"));
    }
    Ok(match r.u8()? {
        0 => Shape::Int,
        1 => Shape::Real,
        2 => Shape::Bool,
        3 => Shape::Char,
        4 => Shape::Set,
        5 => Shape::Ptr,
        6 => Shape::ProcVal,
        7 => Shape::Str,
        8 => Shape::Addr,
        9 => {
            let elem = read_shape(r, depth + 1)?;
            Shape::Array(Box::new(elem), r.u32()?)
        }
        10 => {
            let n = r.u32()?;
            let mut fields = Vec::new();
            for _ in 0..n {
                fields.push(read_shape(r, depth + 1)?);
            }
            Shape::Record(fields)
        }
        _ => return Err(DecodeError::Malformed("shape tag")),
    })
}

fn builtin_name(b: Builtin) -> &'static str {
    Builtin::ALL
        .iter()
        .find(|(_, known)| *known == b)
        .map(|(name, _)| *name)
        .unwrap_or("?")
}

fn builtin_by_name(name: &str) -> Option<Builtin> {
    Builtin::ALL
        .iter()
        .find(|(known, _)| *known == name)
        .map(|(_, b)| *b)
}

fn write_instr(w: &mut Writer, instr: &Instr, interner: &Interner) {
    match instr {
        Instr::PushInt(v) => {
            w.u8(0);
            w.i64(*v);
        }
        Instr::PushReal(bits) => {
            w.u8(1);
            w.u64(*bits);
        }
        Instr::PushBool(v) => {
            w.u8(2);
            w.u8(u8::from(*v));
        }
        Instr::PushChar(c) => {
            w.u8(3);
            w.u8(*c);
        }
        Instr::PushStr(s) => {
            w.u8(4);
            w.sym(*s, interner);
        }
        Instr::PushNil => w.u8(5),
        Instr::PushSet(bits) => {
            w.u8(6);
            w.u64(*bits);
        }
        Instr::PushProc(s) => {
            w.u8(7);
            w.sym(*s, interner);
        }
        Instr::PushAddr { level_up, slot } => {
            w.u8(8);
            w.u32(*level_up);
            w.u32(*slot);
        }
        Instr::PushGlobalAddr { module, slot } => {
            w.u8(9);
            w.sym(*module, interner);
            w.u32(*slot);
        }
        Instr::AddrField(ix) => {
            w.u8(10);
            w.u32(*ix);
        }
        Instr::AddrIndex { lo, len } => {
            w.u8(11);
            w.i64(*lo);
            w.i64(*len);
        }
        Instr::AddrDeref => w.u8(12),
        Instr::Load => w.u8(13),
        Instr::Store => w.u8(14),
        Instr::Dup => w.u8(15),
        Instr::Pop => w.u8(16),
        Instr::Add => w.u8(17),
        Instr::Sub => w.u8(18),
        Instr::Mul => w.u8(19),
        Instr::DivInt => w.u8(20),
        Instr::ModInt => w.u8(21),
        Instr::DivReal => w.u8(22),
        Instr::Neg => w.u8(23),
        Instr::Not => w.u8(24),
        Instr::CmpEq => w.u8(25),
        Instr::CmpNe => w.u8(26),
        Instr::CmpLt => w.u8(27),
        Instr::CmpLe => w.u8(28),
        Instr::CmpGt => w.u8(29),
        Instr::CmpGe => w.u8(30),
        Instr::InSet => w.u8(31),
        Instr::SetIncl => w.u8(32),
        Instr::SetInclRange => w.u8(33),
        Instr::Jump(t) => {
            w.u8(34);
            w.u32(*t);
        }
        Instr::JumpIfFalse(t) => {
            w.u8(35);
            w.u32(*t);
        }
        Instr::JumpIfTrue(t) => {
            w.u8(36);
            w.u32(*t);
        }
        Instr::Call {
            target,
            argc,
            link_up,
        } => {
            w.u8(37);
            w.sym(*target, interner);
            w.u32(*argc);
            w.u32(*link_up);
        }
        Instr::CallIndirect { argc } => {
            w.u8(38);
            w.u32(*argc);
        }
        Instr::CallBuiltin { builtin, argc } => {
            w.u8(39);
            w.str(builtin_name(*builtin));
            w.u32(*argc);
        }
        Instr::Return => w.u8(40),
        Instr::ReturnValue => w.u8(41),
        Instr::Halt => w.u8(42),
        Instr::NewCell { shape } => {
            w.u8(43);
            w.u32(*shape);
        }
        Instr::DisposeCell => w.u8(44),
        Instr::Nop => w.u8(45),
    }
}

fn read_instr(r: &mut Reader<'_>, interner: &Interner) -> Result<Instr, DecodeError> {
    Ok(match r.u8()? {
        0 => Instr::PushInt(r.i64()?),
        1 => Instr::PushReal(r.u64()?),
        2 => Instr::PushBool(r.u8()? != 0),
        3 => Instr::PushChar(r.u8()?),
        4 => Instr::PushStr(r.sym(interner)?),
        5 => Instr::PushNil,
        6 => Instr::PushSet(r.u64()?),
        7 => Instr::PushProc(r.sym(interner)?),
        8 => Instr::PushAddr {
            level_up: r.u32()?,
            slot: r.u32()?,
        },
        9 => Instr::PushGlobalAddr {
            module: r.sym(interner)?,
            slot: r.u32()?,
        },
        10 => Instr::AddrField(r.u32()?),
        11 => Instr::AddrIndex {
            lo: r.i64()?,
            len: r.i64()?,
        },
        12 => Instr::AddrDeref,
        13 => Instr::Load,
        14 => Instr::Store,
        15 => Instr::Dup,
        16 => Instr::Pop,
        17 => Instr::Add,
        18 => Instr::Sub,
        19 => Instr::Mul,
        20 => Instr::DivInt,
        21 => Instr::ModInt,
        22 => Instr::DivReal,
        23 => Instr::Neg,
        24 => Instr::Not,
        25 => Instr::CmpEq,
        26 => Instr::CmpNe,
        27 => Instr::CmpLt,
        28 => Instr::CmpLe,
        29 => Instr::CmpGt,
        30 => Instr::CmpGe,
        31 => Instr::InSet,
        32 => Instr::SetIncl,
        33 => Instr::SetInclRange,
        34 => Instr::Jump(r.u32()?),
        35 => Instr::JumpIfFalse(r.u32()?),
        36 => Instr::JumpIfTrue(r.u32()?),
        37 => Instr::Call {
            target: r.sym(interner)?,
            argc: r.u32()?,
            link_up: r.u32()?,
        },
        38 => Instr::CallIndirect { argc: r.u32()? },
        39 => {
            let name = r.str()?;
            let builtin = builtin_by_name(&name).ok_or(DecodeError::Malformed("builtin name"))?;
            Instr::CallBuiltin {
                builtin,
                argc: r.u32()?,
            }
        }
        40 => Instr::Return,
        41 => Instr::ReturnValue,
        42 => Instr::Halt,
        43 => Instr::NewCell { shape: r.u32()? },
        44 => Instr::DisposeCell,
        45 => Instr::Nop,
        _ => return Err(DecodeError::Malformed("instruction tag")),
    })
}

fn write_unit(w: &mut Writer, unit: &CodeUnit, interner: &Interner) {
    w.sym(unit.name, interner);
    w.u32(unit.level);
    w.u32(unit.param_count);
    w.u32(unit.frame.len() as u32);
    for s in &unit.frame {
        write_shape(w, s);
    }
    w.u32(unit.shapes.len() as u32);
    for s in &unit.shapes {
        write_shape(w, s);
    }
    w.u32(unit.code.len() as u32);
    for i in &unit.code {
        write_instr(w, i, interner);
    }
}

fn read_unit(r: &mut Reader<'_>, interner: &Interner) -> Result<CodeUnit, DecodeError> {
    let name = r.sym(interner)?;
    let level = r.u32()?;
    let param_count = r.u32()?;
    let read_shapes = |r: &mut Reader<'_>| -> Result<Vec<Shape>, DecodeError> {
        let n = r.u32()?;
        let mut v = Vec::new();
        for _ in 0..n {
            v.push(read_shape(r, 0)?);
        }
        Ok(v)
    };
    let frame = read_shapes(r)?;
    let shapes = read_shapes(r)?;
    let n = r.u32()?;
    let mut code = Vec::new();
    for _ in 0..n {
        code.push(read_instr(r, interner)?);
    }
    Ok(CodeUnit {
        name,
        level,
        param_count,
        frame,
        shapes,
        code,
    })
}

/// Serializes a cache entry (see the module docs for the layout).
pub fn encode_entry(entry: &CacheEntryData, interner: &Interner) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u32(FORMAT_VERSION);
    write_unit(&mut w, &entry.unit, interner);
    w.u32(entry.diags.len() as u32);
    for d in &entry.diags {
        w.u8(match d.severity {
            Severity::Note => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        });
        w.u32(d.rel_lo);
        w.u32(d.rel_hi);
        w.str(&d.message);
    }
    w.u32(entry.used.len() as u32);
    for name in &entry.used {
        w.str(name);
    }
    w.u32(entry.findings);
    w.u32(entry.summary.len() as u32);
    w.buf.extend_from_slice(&entry.summary);
    let checksum = Fp128::of(&w.buf);
    w.u64(checksum.hi);
    w.u64(checksum.lo);
    w.buf
}

/// Deserializes a cache entry, validating magic, version and checksum
/// before trusting any field. Symbols are interned into `interner`.
pub fn decode_entry(bytes: &[u8], interner: &Interner) -> Result<CacheEntryData, DecodeError> {
    if bytes.len() < MAGIC.len() + 4 + 16 {
        return Err(DecodeError::TooShort);
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 16);
    let stored = Fp128 {
        hi: u64::from_le_bytes(checksum_bytes[..8].try_into().unwrap()),
        lo: u64::from_le_bytes(checksum_bytes[8..].try_into().unwrap()),
    };
    if &body[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if Fp128::of(body) != stored {
        return Err(DecodeError::Checksum);
    }
    let mut r = Reader {
        buf: body,
        pos: MAGIC.len(),
    };
    let found = r.u32()?;
    if found != FORMAT_VERSION {
        return Err(DecodeError::Version { found });
    }
    let unit = read_unit(&mut r, interner)?;
    let n = r.u32()?;
    let mut diags = Vec::new();
    for _ in 0..n {
        let severity = match r.u8()? {
            0 => Severity::Note,
            1 => Severity::Warning,
            2 => Severity::Error,
            _ => return Err(DecodeError::Malformed("severity")),
        };
        diags.push(CachedDiag {
            severity,
            rel_lo: r.u32()?,
            rel_hi: r.u32()?,
            message: r.str()?,
        });
    }
    let n = r.u32()?;
    let mut used = Vec::new();
    for _ in 0..n {
        used.push(r.str()?);
    }
    let findings = r.u32()?;
    let n = r.u32()? as usize;
    let summary = r.take(n)?.to_vec();
    if !r.done() {
        return Err(DecodeError::Malformed("trailing bytes"));
    }
    Ok(CacheEntryData {
        unit,
        diags,
        used,
        findings,
        summary,
    })
}

/// Encodes a whole [`ModuleImage`] with the same interner-independent
/// conventions as cache entries. Two images encode to the same bytes iff
/// they are semantically identical, regardless of which interner (or
/// symbol-registration order) produced them — the basis of the
/// warm-vs-cold byte-identity tests.
pub fn encode_image(image: &ModuleImage, interner: &Interner) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.sym(image.name, interner);
    w.sym(image.entry, interner);
    w.u32(image.units.len() as u32);
    for unit in &image.units {
        write_unit(&mut w, unit, interner);
    }
    w.u32(image.globals.len() as u32);
    for g in &image.globals {
        w.sym(g.module, interner);
        w.u32(g.slots.len() as u32);
        for s in &g.slots {
            write_shape(&mut w, s);
        }
    }
    w.buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(interner: &Interner) -> CacheEntryData {
        let name = interner.intern("M.P");
        let callee = interner.intern("M.Q");
        let unit = CodeUnit {
            name,
            level: 1,
            param_count: 2,
            frame: vec![
                Shape::Int,
                Shape::Addr,
                Shape::Array(Box::new(Shape::Record(vec![Shape::Int, Shape::Real])), 4),
            ],
            shapes: vec![Shape::Record(vec![Shape::Ptr])],
            code: vec![
                Instr::PushInt(-7),
                Instr::PushStr(interner.intern("hello")),
                Instr::PushGlobalAddr {
                    module: interner.intern("Lib0"),
                    slot: 3,
                },
                Instr::Call {
                    target: callee,
                    argc: 2,
                    link_up: u32::MAX,
                },
                Instr::CallBuiltin {
                    builtin: Builtin::WriteLn,
                    argc: 0,
                },
                Instr::NewCell { shape: 0 },
                Instr::ReturnValue,
            ],
        };
        CacheEntryData {
            unit,
            diags: vec![CachedDiag {
                severity: Severity::Warning,
                rel_lo: 10,
                rel_hi: 14,
                message: "local variable `l9` is never used".into(),
            }],
            used: vec!["Lib0".into(), "Q".into()],
            findings: 1,
            // Opaque to this crate; any bytes round-trip.
            summary: vec![0xCC, 0x4D, 0x32, 0x4C],
        }
    }

    #[test]
    fn round_trip_through_a_fresh_interner() {
        let a = Interner::new();
        let entry = sample_entry(&a);
        let bytes = encode_entry(&entry, &a);

        // Decode into a *different* interner whose indices cannot match.
        let b = Interner::new();
        b.intern("decoy0");
        b.intern("decoy1");
        let back = decode_entry(&bytes, &b).expect("round trip");
        assert_eq!(back.diags, entry.diags);
        assert_eq!(back.used, entry.used);
        assert_eq!(back.findings, entry.findings);
        assert_eq!(back.summary, entry.summary);
        assert_eq!(b.resolve(back.unit.name), "M.P");
        assert_eq!(back.unit.frame, entry.unit.frame);
        assert_eq!(back.unit.code.len(), entry.unit.code.len());
        match &back.unit.code[3] {
            Instr::Call {
                target,
                argc,
                link_up,
            } => {
                assert_eq!(b.resolve(*target), "M.Q");
                assert_eq!((*argc, *link_up), (2, u32::MAX));
            }
            other => panic!("expected Call, got {other:?}"),
        }
    }

    #[test]
    fn every_corruption_is_detected() {
        let interner = Interner::new();
        let bytes = encode_entry(&sample_entry(&interner), &interner);
        assert!(decode_entry(&bytes, &interner).is_ok());

        // Flip every single byte in turn: nothing may decode successfully,
        // and (more importantly) nothing may panic.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_entry(&bad, &interner).is_err(),
                "byte {i} flip went undetected"
            );
        }
        // Truncations at every length.
        for n in 0..bytes.len() {
            assert!(decode_entry(&bytes[..n], &interner).is_err());
        }
        assert_eq!(decode_entry(b"", &interner), Err(DecodeError::TooShort));
    }

    #[test]
    fn version_2_mismatch_invalidates_entry() {
        // Forge an otherwise-valid entry claiming a future format version:
        // the checksum is recomputed so only the version check can reject
        // it. This test's name is pinned to FORMAT_VERSION by ci.sh —
        // bumping the constant without writing the new version's
        // invalidation/migration test fails CI.
        assert_eq!(FORMAT_VERSION, 2, "rename this test when bumping");
        let interner = Interner::new();
        let bytes = encode_entry(&sample_entry(&interner), &interner);
        let mut forged = bytes[..bytes.len() - 16].to_vec();
        forged[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let checksum = Fp128::of(&forged);
        forged.extend_from_slice(&checksum.hi.to_le_bytes());
        forged.extend_from_slice(&checksum.lo.to_le_bytes());
        assert_eq!(
            decode_entry(&forged, &interner),
            Err(DecodeError::Version {
                found: FORMAT_VERSION + 1
            })
        );
    }

    #[test]
    fn image_encoding_is_interner_independent() {
        let a = Interner::new();
        let entry = sample_entry(&a);
        let image_a = ModuleImage {
            name: a.intern("M"),
            units: vec![entry.unit.clone()],
            globals: vec![],
            entry: a.intern("M"),
        };
        let enc_a = encode_image(&image_a, &a);

        let b = Interner::new();
        b.intern("shift");
        b.intern("the");
        b.intern("indices");
        let rebuilt = decode_entry(&encode_entry(&entry, &a), &b).expect("decode");
        let image_b = ModuleImage {
            name: b.intern("M"),
            units: vec![rebuilt.unit],
            globals: vec![],
            entry: b.intern("M"),
        };
        assert_eq!(enc_a, encode_image(&image_b, &b));
    }
}
