//! Stream fingerprints: pure content hashing of a stream's inputs.
//!
//! A procedure stream's compilation result is a function of
//!
//! 1. its own source slice (the token range the Splitter carves for it,
//!    heading and nested children included);
//! 2. the declarations visible from every *enclosing* scope — what the
//!    DKY machinery can look up while the stream compiles;
//! 3. the interfaces of the imported definition modules; and
//! 4. the codegen-relevant configuration.
//!
//! The fingerprint is built from chained digests so that (2) costs one
//! hash of the enclosing text rather than a semantic analysis:
//!
//! ```text
//! ctxv(main) = H(env ‖ ctxdig(main))
//! ctxv(S)    = H(ctxv(parent(S)) ‖ ctxdig(S))
//! fp(S)      = H(ctxv(parent(S)) ‖ H(slice(S)))
//! fp(module) = H(ctxv(main) ‖ "module-body")
//! ```
//!
//! where `ctxdig(S)` hashes `S`'s slice with every **direct child's body
//! excluded but its heading kept**. Keeping headings in the enclosing
//! context means editing a sibling's *signature* (which changes call-site
//! code) invalidates the siblings, while editing only a sibling's *body*
//! does not. `env` folds in every definition module's source text — a
//! deliberately conservative superset of any unit's actual imports — plus
//! the format version and the configuration bits that change generated
//! code or diagnostics.
//!
//! Because digests hash byte *content*, never absolute offsets,
//! lengthening an earlier procedure's body shifts every later stream's
//! spans without changing their fingerprints; cached diagnostics are
//! stored span-relative to the carve start and rebased on replay.

use ccm2_support::hash::{Fp128, StableHasher};

/// Byte ranges of one carved procedure stream within the main source:
/// `lo..heading_hi` is the heading (through its closing `;`),
/// `lo..hi` the full slice including nested procedures and the final
/// `END Name;`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Carve {
    /// Start of the `PROCEDURE` keyword.
    pub lo: u32,
    /// End of the heading's closing semicolon.
    pub heading_hi: u32,
    /// End of the stream's final token.
    pub hi: u32,
}

impl Carve {
    /// Whether `offset` falls inside this stream's *body* (after the
    /// heading, within the slice) — used to attribute diagnostics to the
    /// innermost enclosing stream.
    pub fn body_contains(&self, offset: u32) -> bool {
        offset >= self.heading_hi && offset < self.hi
    }
}

/// One stream node handed to [`fingerprint_streams`].
#[derive(Clone, Copy, Debug)]
pub struct StreamNode {
    /// The stream's carve ranges.
    pub carve: Carve,
    /// Index (into the same slice) of the lexically enclosing stream;
    /// `None` for procedures directly inside the module body.
    pub parent: Option<usize>,
}

/// The output of [`fingerprint_streams`].
#[derive(Clone, Debug)]
pub struct Fingerprints {
    /// Fingerprint of the module-body code unit.
    pub module: Fp128,
    /// Per-stream fingerprints, parallel to the input slice.
    pub streams: Vec<Fp128>,
}

/// Placeholder source hashed for an imported definition module the
/// provider cannot supply. Folding the *absence* into the digest means a
/// module compiled while an interface was missing never shares
/// fingerprints with one compiled after the interface (re)appeared.
pub const MISSING_DEF_SOURCE: &str = "\u{1}<missing definition module>\u{1}";

/// Extracts the module names a source text imports: `IMPORT A, B;` and
/// `FROM C IMPORT x;` at any position. The scan is token-oriented but
/// deliberately ignores comment/string context, so a name mentioned in a
/// comment can only *add* a module to the set — over-inclusion merely
/// widens invalidation, while missing a real import could let a stale
/// interface go unnoticed.
pub fn import_names(source: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut words = Vec::new(); // (word, byte offset just past it)
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                i += 1;
            }
            words.push((&source[start..i], i));
        } else {
            i += 1;
        }
    }
    let mut w = 0;
    while w < words.len() {
        match words[w].0 {
            "FROM" => {
                if let Some(&(name, _)) = words.get(w + 1) {
                    names.push(name.to_string());
                }
                w += 2;
                // Skip the `IMPORT x, y;` symbol list — those are
                // identifiers inside the named module, not modules.
                if let Some(&("IMPORT", after)) = words.get(w) {
                    let list_end = source[after..]
                        .find(';')
                        .map(|at| after + at)
                        .unwrap_or(source.len());
                    w += 1;
                    while w < words.len() && words[w].1 <= list_end {
                        w += 1;
                    }
                }
            }
            "IMPORT" => {
                // A plain import: every identifier up to the `;` is a
                // module name.
                let list_end = source[words[w].1..]
                    .find(';')
                    .map(|at| words[w].1 + at)
                    .unwrap_or(source.len());
                w += 1;
                while w < words.len() && words[w].1 <= list_end {
                    names.push(words[w].0.to_string());
                    w += 1;
                }
            }
            _ => w += 1,
        }
    }
    names.sort();
    names.dedup();
    names
}

/// The transitive import closure of `main_source` over `library`,
/// returned as sorted `(name, source)` pairs ready for
/// [`environment_fp`]. Interfaces the library lacks appear with
/// [`MISSING_DEF_SOURCE`] so their absence is part of the digest. This is
/// what makes the environment digest *per-import precise*: a definition
/// module no compiled unit can reach does not contribute, so editing it
/// leaves every cached unit of this module valid.
pub fn import_closure(main_source: &str, library: &[(String, String)]) -> Vec<(String, String)> {
    let by_name: std::collections::HashMap<&str, &str> = library
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let mut seen = std::collections::BTreeMap::<String, String>::new();
    let mut frontier = import_names(main_source);
    while let Some(name) = frontier.pop() {
        if seen.contains_key(&name) {
            continue;
        }
        match by_name.get(name.as_str()) {
            Some(&src) => {
                frontier.extend(import_names(src));
                seen.insert(name, src.to_string());
            }
            None => {
                seen.insert(name, MISSING_DEF_SOURCE.to_string());
            }
        }
    }
    seen.into_iter().collect()
}

/// Digests the environment every fingerprint is chained from: the store
/// format version, the configuration bits that alter generated code or
/// diagnostics, and the (sorted) definition-module interfaces the
/// compiled module can transitively reach (see [`import_closure`]).
pub fn environment_fp(
    format_version: u32,
    analyze: bool,
    heading_mode_tag: u8,
    defs: &[(String, String)],
) -> Fp128 {
    let mut h = StableHasher::new();
    h.write_u32(format_version);
    h.write(&[u8::from(analyze), heading_mode_tag]);
    h.write_u64(defs.len() as u64);
    for (name, source) in defs {
        h.write_str(name);
        h.write_str(source);
    }
    h.finish()
}

/// Hashes `bytes[lo..hi]` with each direct child's body range excluded
/// (headings kept — see the module docs). Malformed ranges degrade by
/// clamping, which can only *include* more bytes, i.e. over-invalidate.
fn context_digest(bytes: &[u8], lo: u32, hi: u32, children: &[Carve]) -> Fp128 {
    let len = bytes.len() as u32;
    let hi = hi.min(len);
    let mut h = StableHasher::new();
    let mut pos = lo.min(hi);
    for child in children {
        let keep_to = child.heading_hi.clamp(pos, hi);
        h.write_str(std::str::from_utf8(&bytes[pos as usize..keep_to as usize]).unwrap_or(""));
        pos = child.hi.clamp(keep_to, hi);
    }
    h.write_str(std::str::from_utf8(&bytes[pos as usize..hi as usize]).unwrap_or(""));
    h.finish()
}

/// Computes the module-body fingerprint and one fingerprint per stream
/// node, given the main source and the environment digest.
pub fn fingerprint_streams(source: &str, nodes: &[StreamNode], env: Fp128) -> Fingerprints {
    let bytes = source.as_bytes();
    let len = bytes.len() as u32;

    // Direct children of each node (and of the module root), in
    // source order so digests are position-independent but stable.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        match n.parent {
            Some(p) if p < nodes.len() => children[p].push(i),
            _ => roots.push(i),
        }
    }
    let by_lo = |list: &mut Vec<usize>| list.sort_by_key(|&i| nodes[i].carve.lo);
    for list in &mut children {
        by_lo(list);
    }
    by_lo(&mut roots);

    let child_carves =
        |list: &[usize]| -> Vec<Carve> { list.iter().map(|&i| nodes[i].carve).collect() };

    // ctxv(main): environment chained with the module-level context.
    let mut h = StableHasher::new();
    h.write_fp(env);
    h.write_fp(context_digest(bytes, 0, len, &child_carves(&roots)));
    let ctxv_main = h.finish();

    let mut module = StableHasher::new();
    module.write_fp(ctxv_main);
    module.write_str("module-body");
    let module = module.finish();

    // Walk top-down: each node's fp and ctxv need only the parent's ctxv.
    let mut fps = vec![module; nodes.len()];
    let mut stack: Vec<(usize, Fp128)> = roots.iter().map(|&i| (i, ctxv_main)).collect();
    while let Some((i, parent_ctxv)) = stack.pop() {
        let carve = nodes[i].carve;
        let hi = carve.hi.min(len);
        let lo = carve.lo.min(hi);
        let selfdig = Fp128::of(&bytes[lo as usize..hi as usize]);

        let mut h = StableHasher::new();
        h.write_fp(parent_ctxv);
        h.write_fp(selfdig);
        fps[i] = h.finish();

        let mut h = StableHasher::new();
        h.write_fp(parent_ctxv);
        h.write_fp(context_digest(bytes, lo, hi, &child_carves(&children[i])));
        let ctxv = h.finish();
        for &c in &children[i] {
            stack.push((c, ctxv));
        }
    }

    Fingerprints {
        module,
        streams: fps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENV: Fp128 = Fp128 { hi: 1, lo: 2 };

    /// Locates procedure `name`'s carve in `src`: `PROCEDURE name` up to
    /// `END name;`, with the heading ending at the first semicolon.
    fn node(src: &str, name: &str, parent: Option<usize>) -> StreamNode {
        let lo = src
            .find(&format!("PROCEDURE {name}"))
            .expect("heading present");
        let heading_hi = lo + src[lo..].find(';').expect("heading semi") + 1;
        let end = format!("END {name};");
        let hi = src.find(&end).expect("end present") + end.len();
        StreamNode {
            carve: Carve {
                lo: lo as u32,
                heading_hi: heading_hi as u32,
                hi: hi as u32,
            },
            parent,
        }
    }

    const SRC_A: &str = "MODULE M;\n\
         PROCEDURE P(); BEGIN x := 1; END P;\n\
         PROCEDURE Q(); BEGIN y := 2; END Q;\n\
         BEGIN END M.";

    fn nodes_of(src: &str) -> Vec<StreamNode> {
        vec![node(src, "P", None), node(src, "Q", None)]
    }

    #[test]
    fn sibling_body_edit_leaves_sibling_and_module_unchanged() {
        let edited = SRC_A.replace("y := 2", "y := 99");
        let a = fingerprint_streams(SRC_A, &nodes_of(SRC_A), ENV);
        let b = fingerprint_streams(&edited, &nodes_of(&edited), ENV);
        assert_eq!(a.streams[0], b.streams[0], "P untouched by Q's body edit");
        assert_ne!(a.streams[1], b.streams[1], "Q itself changed");
        assert_eq!(a.module, b.module, "module body untouched");
    }

    #[test]
    fn sibling_heading_edit_invalidates_everything_at_that_level() {
        let edited = SRC_A.replace("PROCEDURE Q();", "PROCEDURE Q(n : INTEGER);");
        let a = fingerprint_streams(SRC_A, &nodes_of(SRC_A), ENV);
        let b = fingerprint_streams(&edited, &nodes_of(&edited), ENV);
        assert_ne!(a.streams[0], b.streams[0], "P sees Q's new signature");
        assert_ne!(a.streams[1], b.streams[1]);
        assert_ne!(a.module, b.module, "module body can call Q");
    }

    #[test]
    fn offset_shift_does_not_invalidate() {
        // Lengthening P's body shifts Q's byte offsets; Q's fingerprint
        // must not notice (digests hash content, never positions).
        let shifted = SRC_A.replace("x := 1", "x := 100000 + 200000");
        let a = fingerprint_streams(SRC_A, &nodes_of(SRC_A), ENV);
        let b = fingerprint_streams(&shifted, &nodes_of(&shifted), ENV);
        assert!(
            nodes_of(&shifted)[1].carve.lo > nodes_of(SRC_A)[1].carve.lo,
            "Q really did move"
        );
        assert_ne!(a.streams[0], b.streams[0], "P changed");
        assert_eq!(a.streams[1], b.streams[1], "Q's shift is invisible");
        assert_eq!(a.module, b.module, "body edits stay out of module ctx");
    }

    #[test]
    fn nested_child_edit_invalidates_ancestors_not_uncles() {
        const INNER: &str = "PROCEDURE Inner(); BEGIN a := 1; END Inner;";
        let p_whole = format!("PROCEDURE P();\n{INNER}\nBEGIN x := 1; END P;");
        let src =
            format!("MODULE M;\n{p_whole}\nPROCEDURE Q(); BEGIN y := 2; END Q;\nBEGIN END M.");
        let nodes = |s: &str| {
            vec![
                node(s, "P", None),
                node(s, "Inner", Some(0)),
                node(s, "Q", None),
            ]
        };
        let edited = src.replace("a := 1", "a := 42");
        let a = fingerprint_streams(&src, &nodes(&src), ENV);
        let b = fingerprint_streams(&edited, &nodes(&edited), ENV);
        assert_ne!(a.streams[1], b.streams[1], "inner changed");
        assert_ne!(
            a.streams[0], b.streams[0],
            "parent slice contains inner's body"
        );
        assert_eq!(a.streams[2], b.streams[2], "uncle Q unaffected");
        assert_eq!(a.module, b.module, "module context keeps only headings");
    }

    #[test]
    fn environment_changes_invalidate_all() {
        let nodes = nodes_of(SRC_A);
        let a = fingerprint_streams(SRC_A, &nodes, ENV);
        let b = fingerprint_streams(SRC_A, &nodes, Fp128 { hi: 1, lo: 3 });
        assert_ne!(a.module, b.module);
        assert_ne!(a.streams[0], b.streams[0]);
    }

    #[test]
    fn import_scan_finds_both_forms_and_skips_symbol_lists() {
        let src = "IMPLEMENTATION MODULE M;\n\
             IMPORT A, B;\n\
             FROM C IMPORT x, y;\n\
             IMPORT D;\n\
             PROCEDURE P(); BEGIN x := A.f; END P;\nBEGIN END M.";
        assert_eq!(import_names(src), vec!["A", "B", "C", "D"]);
        assert_eq!(import_names("MODULE N; BEGIN END N."), Vec::<String>::new());
    }

    #[test]
    fn import_closure_is_transitive_and_marks_missing() {
        let lib = vec![
            (
                "A".to_string(),
                "DEFINITION MODULE A; IMPORT B; END A.".to_string(),
            ),
            ("B".to_string(), "DEFINITION MODULE B; END B.".to_string()),
            (
                "Unrelated".to_string(),
                "DEFINITION MODULE Unrelated; END Unrelated.".to_string(),
            ),
        ];
        let closure = import_closure("MODULE M; IMPORT A, Ghost; BEGIN END M.", &lib);
        let names: Vec<&str> = closure.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "Ghost"], "transitive, no Unrelated");
        let ghost = closure.iter().find(|(n, _)| n == "Ghost").expect("ghost");
        assert_eq!(ghost.1, MISSING_DEF_SOURCE);
        // Editing the unreachable interface does not change the digest;
        // editing a reachable one does.
        let mut edited = lib.clone();
        edited[2].1 = "DEFINITION MODULE Unrelated; CONST N = 1; END Unrelated.".to_string();
        let closure2 = import_closure("MODULE M; IMPORT A, Ghost; BEGIN END M.", &edited);
        assert_eq!(
            environment_fp(1, false, 0, &closure),
            environment_fp(1, false, 0, &closure2)
        );
        let mut edited_b = lib.clone();
        edited_b[1].1 = "DEFINITION MODULE B; CONST N = 1; END B.".to_string();
        let closure3 = import_closure("MODULE M; IMPORT A, Ghost; BEGIN END M.", &edited_b);
        assert_ne!(
            environment_fp(1, false, 0, &closure),
            environment_fp(1, false, 0, &closure3)
        );
    }

    #[test]
    fn environment_fp_covers_defs_and_config() {
        let defs = vec![(
            "IO".to_string(),
            "DEFINITION MODULE IO; END IO.".to_string(),
        )];
        let base = environment_fp(1, false, 0, &defs);
        assert_ne!(base, environment_fp(2, false, 0, &defs), "version");
        assert_ne!(base, environment_fp(1, true, 0, &defs), "analyze flag");
        assert_ne!(base, environment_fp(1, false, 1, &defs), "heading mode");
        let edited = vec![(
            "IO".to_string(),
            "DEFINITION MODULE IO; CONST N = 1; END IO.".to_string(),
        )];
        assert_ne!(base, environment_fp(1, false, 0, &edited), "interface edit");
    }
}
