//! Content-addressed incremental compilation cache (`ccm2-incr`).
//!
//! The paper's central move — splitting a module into one stream per
//! procedure and one per imported definition module (Figure 5) — makes
//! every stream a self-contained compilation unit. That is exactly the
//! granularity at which results can be memoized *across* runs: if a
//! stream's inputs are byte-identical to a previous compile, its
//! Parser/DeclAnalyzer and StmtAnalyzer/CodeGen tasks can be replaced by
//! one cheap `CacheSplice` task that feeds the previously produced
//! [`ccm2_codegen::ir::CodeUnit`] straight into the merge and replays the
//! stream's recorded diagnostics and lint findings.
//!
//! This crate provides the three reusable pieces; the driver integration
//! lives in `ccm2::driver`:
//!
//! * [`fingerprint`] — pure functions turning the splitter's carve ranges
//!   into stable 128-bit stream fingerprints. A stream's fingerprint
//!   covers its own source slice *and* a chained context digest of every
//!   enclosing scope's declarations (minus nested procedure bodies, so
//!   edits inside a sibling's body do not invalidate it) plus an
//!   environment digest over every definition module's source and the
//!   codegen-relevant configuration. See the module docs for the exact
//!   invalidation rules.
//! * [`entry`] — a versioned, checksummed, interner-independent binary
//!   encoding of a cache entry (code unit + diagnostics + lint data).
//!   Corrupt or version-mismatched bytes decode to an error, never to a
//!   wrong unit; callers degrade to a cache miss.
//! * [`store`] — the [`store::ArtifactStore`] trait with an in-memory
//!   implementation for tests/simulation and a file-per-entry on-disk
//!   implementation for real warm starts.

pub mod delta;
pub mod entry;
pub mod fingerprint;
pub mod store;

use ccm2_support::{Diagnostic, Interner, SourceMap};

pub use delta::{decode_delta, encode_delta, DeltaOp, DELTA_FORMAT_VERSION, DELTA_MAGIC};
pub use entry::{
    decode_entry, encode_entry, encode_image, CacheEntryData, CachedDiag, DecodeError,
    FORMAT_VERSION,
};
pub use fingerprint::{
    environment_fp, fingerprint_streams, import_closure, import_names, Carve, Fingerprints,
    StreamNode, MISSING_DEF_SOURCE,
};
pub use store::{Admission, ArtifactStore, ByteBudgetLru, DiskStore, MemStore};

/// Counters describing what the incremental cache did during one
/// concurrent compile (attached to `ConcurrentOutput`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// Cacheable units considered: every procedure stream plus the
    /// module-body unit.
    pub units: usize,
    /// Units whose fingerprint matched a decodable store entry.
    pub hits: usize,
    /// Units actually spliced from the cache. A hit is only spliced when
    /// every nested procedure inside it also hit (a recompiled inner
    /// procedure needs its enclosing scopes analyzed live).
    pub spliced: usize,
    /// Units compiled live (`units - spliced`).
    pub recompiled: usize,
    /// Store entries that failed validation (corrupt bytes, bad checksum,
    /// format-version mismatch) and were degraded to misses.
    pub bad_entries: usize,
}

impl IncrStats {
    /// Spliced units as a fraction of cacheable units (0.0 when empty).
    pub fn hit_rate(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.spliced as f64 / self.units as f64
        }
    }

    /// Accumulates another compile's counters (suite-level reporting).
    pub fn absorb(&mut self, other: IncrStats) {
        self.units += other.units;
        self.hits += other.hits;
        self.spliced += other.spliced;
        self.recompiled += other.recompiled;
        self.bad_entries += other.bad_entries;
    }
}

/// Renders diagnostics with file *names* instead of [`ccm2_support::source::FileId`]s.
///
/// Definition modules are discovered concurrently, so their `FileId`s can
/// differ between runs even when the reported problems are identical.
/// Equivalence tests (and the bench report) therefore compare this
/// rendering, which is stable across file-registration order.
pub fn render_diagnostics(diags: &[Diagnostic], sources: &SourceMap) -> Vec<String> {
    diags
        .iter()
        .map(|d| {
            let name = sources
                .get(d.file)
                .map(|f| f.name().to_string())
                .unwrap_or_else(|| format!("file#{}", d.file.0));
            format!(
                "{name}:{}..{}: {}: {}",
                d.span.lo, d.span.hi, d.severity, d.message
            )
        })
        .collect()
}

/// Convenience: [`render_diagnostics`] plus the interner-independent
/// image encoding, bundled for warm-vs-cold comparisons.
pub fn comparable_output(
    image: Option<&ccm2_codegen::merge::ModuleImage>,
    diags: &[Diagnostic],
    sources: &SourceMap,
    interner: &Interner,
) -> (Option<Vec<u8>>, Vec<String>) {
    (
        image.map(|im| encode_image(im, interner)),
        render_diagnostics(diags, sources),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_support::source::{FileId, Span};

    #[test]
    fn stats_hit_rate_and_absorb() {
        let mut a = IncrStats {
            units: 10,
            hits: 9,
            spliced: 8,
            recompiled: 2,
            bad_entries: 1,
        };
        assert!((a.hit_rate() - 0.8).abs() < 1e-9);
        a.absorb(IncrStats {
            units: 10,
            hits: 10,
            spliced: 10,
            recompiled: 0,
            bad_entries: 0,
        });
        assert_eq!(a.units, 20);
        assert_eq!(a.spliced, 18);
        assert_eq!(IncrStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn rendering_uses_file_names() {
        let sources = SourceMap::new();
        let f = sources.add("Main.mod", "MODULE Main; END Main.");
        let d = Diagnostic::error(f.id(), Span { lo: 7, hi: 11 }, "boom");
        let rendered = render_diagnostics(&[d], &sources);
        assert_eq!(rendered, vec!["Main.mod:7..11: error: boom".to_string()]);
        // Unknown files fall back to the numeric id rather than panicking.
        let d2 = Diagnostic::error(FileId(99), Span { lo: 0, hi: 0 }, "lost");
        assert!(render_diagnostics(&[d2], &sources)[0].starts_with("file#99:"));
    }
}
