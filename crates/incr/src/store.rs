//! Artifact stores: fingerprint → encoded-entry byte maps.
//!
//! The store deals only in opaque byte blobs — validation (magic,
//! version, checksum) happens in [`crate::entry::decode_entry`], so a
//! store never has to trust its own contents. Stores are best-effort: a
//! failed write loses a future hit, never correctness.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ccm2_support::hash::Fp128;
use parking_lot::Mutex;

/// A persistent (or test-scoped) map from stream fingerprints to encoded
/// cache entries.
pub trait ArtifactStore: Send + Sync + std::fmt::Debug {
    /// Loads the entry stored under `fp`, if any.
    fn load(&self, fp: Fp128) -> Option<Vec<u8>>;
    /// Stores (or replaces) the entry under `fp`. Best-effort.
    fn store(&self, fp: Fp128, bytes: &[u8]);
}

/// An in-memory store for tests and simulation runs.
#[derive(Debug, Default)]
pub struct MemStore {
    map: Mutex<HashMap<Fp128, Vec<u8>>>,
    loads: AtomicU64,
    stores: AtomicU64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Number of entries currently stored.
    pub fn entry_count(&self) -> usize {
        self.map.lock().len()
    }

    /// `(loads, stores)` performed so far (test observability).
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.loads.load(Ordering::Relaxed),
            self.stores.load(Ordering::Relaxed),
        )
    }

    /// Corrupts the entry under `fp` by XOR-flipping one payload byte —
    /// used by corruption-tolerance tests.
    pub fn corrupt(&self, fp: Fp128, byte_index: usize) -> bool {
        let mut map = self.map.lock();
        match map.get_mut(&fp) {
            Some(bytes) if byte_index < bytes.len() => {
                bytes[byte_index] ^= 0x55;
                true
            }
            _ => false,
        }
    }

    /// All stored fingerprints (test observability).
    pub fn fingerprints(&self) -> Vec<Fp128> {
        let mut v: Vec<Fp128> = self.map.lock().keys().copied().collect();
        v.sort();
        v
    }
}

impl ArtifactStore for MemStore {
    fn load(&self, fp: Fp128) -> Option<Vec<u8>> {
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.map.lock().get(&fp).cloned()
    }

    fn store(&self, fp: Fp128, bytes: &[u8]) {
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.map.lock().insert(fp, bytes.to_vec());
    }
}

/// A file-per-entry on-disk store: `<dir>/<fp hex>.bin`.
///
/// Writes go through a temporary file in the same directory followed by a
/// rename, so a crash mid-write leaves either the old entry or none — a
/// torn write can only surface as a missing or checksum-failing entry,
/// both of which degrade to a miss.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    tmp_seq: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fp: Fp128) -> PathBuf {
        self.dir.join(format!("{}.bin", fp.to_hex()))
    }

    /// Number of `.bin` entries on disk (test/report observability).
    pub fn entry_count(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|it| {
                it.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "bin"))
                    .count()
            })
            .unwrap_or(0)
    }
}

impl ArtifactStore for DiskStore {
    fn load(&self, fp: Fp128) -> Option<Vec<u8>> {
        std::fs::read(self.entry_path(fp)).ok()
    }

    fn store(&self, fp: Fp128, bytes: &[u8]) {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{}.{}.{seq}.tmp", fp.to_hex(), std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data().ok();
            std::fs::rename(&tmp, self.entry_path(fp))
        };
        if write().is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fp128 {
        Fp128 { hi: n, lo: !n }
    }

    #[test]
    fn mem_store_round_trip_and_corruption_hook() {
        let s = MemStore::new();
        assert_eq!(s.load(fp(1)), None);
        s.store(fp(1), b"abc");
        assert_eq!(s.load(fp(1)).as_deref(), Some(&b"abc"[..]));
        assert_eq!(s.entry_count(), 1);
        assert!(s.corrupt(fp(1), 0));
        assert_ne!(s.load(fp(1)).as_deref(), Some(&b"abc"[..]));
        assert!(!s.corrupt(fp(2), 0), "missing entry not corruptible");
        let (loads, stores) = s.op_counts();
        assert_eq!((loads, stores), (3, 1));
    }

    #[test]
    fn disk_store_round_trip_and_hex_naming() {
        let dir = std::env::temp_dir().join(format!("ccm2-incr-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = DiskStore::new(&dir).expect("create store dir");
        assert_eq!(s.load(fp(7)), None);
        s.store(fp(7), b"payload");
        assert_eq!(s.load(fp(7)).as_deref(), Some(&b"payload"[..]));
        assert_eq!(s.entry_count(), 1);
        // Entries are addressable by fingerprint hex, so a second store
        // handle (a later compiler run) sees them.
        let again = DiskStore::new(&dir).expect("reopen");
        assert_eq!(again.load(fp(7)).as_deref(), Some(&b"payload"[..]));
        s.store(fp(7), b"replaced");
        assert_eq!(again.load(fp(7)).as_deref(), Some(&b"replaced"[..]));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
