//! Artifact stores: fingerprint → encoded-entry byte maps.
//!
//! The store deals only in opaque byte blobs — validation (magic,
//! version, checksum) happens in [`crate::entry::decode_entry`], so a
//! store never has to trust its own contents. Stores are best-effort: a
//! failed write loses a future hit, never correctness.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ccm2_support::hash::Fp128;
use parking_lot::Mutex;

/// A persistent (or test-scoped) map from stream fingerprints to encoded
/// cache entries.
pub trait ArtifactStore: Send + Sync + std::fmt::Debug {
    /// Loads the entry stored under `fp`, if any.
    fn load(&self, fp: Fp128) -> Option<Vec<u8>>;
    /// Stores (or replaces) the entry under `fp`. Best-effort.
    fn store(&self, fp: Fp128, bytes: &[u8]);
    /// Sets aside the entry under `fp` after it failed validation
    /// (checksum/version mismatch), so a corrupted blob is never served
    /// again and remains available for inspection. Best-effort; the
    /// default discards nothing.
    fn quarantine(&self, fp: Fp128) {
        let _ = fp;
    }
}

/// A byte-budgeted least-recently-used index over fingerprinted entries.
///
/// The index tracks *sizes and recency only* — payloads live with the
/// caller (a `HashMap` in `ccm2-serve`'s `SharedStore`, files on disk in
/// [`DiskStore`]). Admission is strict: the tracked total never exceeds
/// the budget, not even transiently, because [`ByteBudgetLru::admit`]
/// reports what must be evicted *before* the new entry is accounted.
/// Recency ticks are a monotonic counter, so eviction order is
/// deterministic for a deterministic access sequence.
#[derive(Debug)]
pub struct ByteBudgetLru {
    budget: u64,
    total: u64,
    tick: u64,
    evictions: u64,
    entries: HashMap<Fp128, (u64, u64)>, // fp -> (bytes, last-use tick)
}

impl ByteBudgetLru {
    /// Creates an empty index with the given byte budget.
    pub fn new(budget: u64) -> ByteBudgetLru {
        ByteBudgetLru {
            budget,
            total: 0,
            tick: 0,
            evictions: 0,
            entries: HashMap::new(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently accounted to live entries (always ≤ budget).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether `fp` is tracked.
    pub fn contains(&self, fp: Fp128) -> bool {
        self.entries.contains_key(&fp)
    }

    /// Marks `fp` most-recently-used (a load hit). No-op when untracked.
    pub fn touch(&mut self, fp: Fp128) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&fp) {
            e.1 = tick;
        }
    }

    /// Admits an entry of `bytes` under `fp`, replacing any previous
    /// entry for the same fingerprint. The caller must evict the
    /// returned fingerprints' payloads; when `accepted` is false the
    /// entry alone exceeds the whole budget and must not be stored (a
    /// stale previous payload under the same fingerprint is still listed
    /// for eviction).
    pub fn admit(&mut self, fp: Fp128, bytes: u64) -> Admission {
        if bytes > self.budget {
            // An oversize replacement still drops the stale previous entry.
            let evict = match self.entries.remove(&fp) {
                Some((old, _)) => {
                    self.total -= old;
                    vec![fp]
                }
                None => Vec::new(),
            };
            return Admission {
                accepted: false,
                evict,
            };
        }
        self.tick += 1;
        if let Some((old, _)) = self.entries.remove(&fp) {
            self.total -= old;
        }
        let mut evict = Vec::new();
        while self.total + bytes > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, &(_, tick))| tick)
                .map(|(&fp, _)| fp)
                .expect("total > 0 implies a victim exists");
            let (sz, _) = self.entries.remove(&victim).expect("victim tracked");
            self.total -= sz;
            self.evictions += 1;
            evict.push(victim);
        }
        self.entries.insert(fp, (bytes, self.tick));
        self.total += bytes;
        Admission {
            accepted: true,
            evict,
        }
    }

    /// Untracks `fp` (the caller already removed the payload).
    pub fn remove(&mut self, fp: Fp128) {
        if let Some((bytes, _)) = self.entries.remove(&fp) {
            self.total -= bytes;
        }
    }

    /// Live entries in recency order, least recently used first. A
    /// consumer that replays `admit`/`store` calls in this order
    /// rebuilds an index with the same eviction order — this is how a
    /// service snapshot preserves LRU behavior across a restart.
    pub fn entries_by_recency(&self) -> Vec<Fp128> {
        let mut v: Vec<(u64, Fp128)> = self
            .entries
            .iter()
            .map(|(fp, &(_, tick))| (tick, *fp))
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, fp)| fp).collect()
    }
}

/// The outcome of [`ByteBudgetLru::admit`].
#[derive(Debug)]
pub struct Admission {
    /// Whether the entry may be stored at all (false = oversize).
    pub accepted: bool,
    /// Fingerprints whose payloads the caller must evict.
    pub evict: Vec<Fp128>,
}

/// An in-memory store for tests and simulation runs.
#[derive(Debug, Default)]
pub struct MemStore {
    map: Mutex<HashMap<Fp128, Vec<u8>>>,
    loads: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Number of entries currently stored.
    pub fn entry_count(&self) -> usize {
        self.map.lock().len()
    }

    /// `(loads, stores)` performed so far (test observability).
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.loads.load(Ordering::Relaxed),
            self.stores.load(Ordering::Relaxed),
        )
    }

    /// Corrupts the entry under `fp` by XOR-flipping one payload byte —
    /// used by corruption-tolerance tests.
    pub fn corrupt(&self, fp: Fp128, byte_index: usize) -> bool {
        let mut map = self.map.lock();
        match map.get_mut(&fp) {
            Some(bytes) if byte_index < bytes.len() => {
                bytes[byte_index] ^= 0x55;
                true
            }
            _ => false,
        }
    }

    /// All stored fingerprints (test observability).
    pub fn fingerprints(&self) -> Vec<Fp128> {
        let mut v: Vec<Fp128> = self.map.lock().keys().copied().collect();
        v.sort();
        v
    }

    /// Entries quarantined so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }
}

impl ArtifactStore for MemStore {
    fn load(&self, fp: Fp128) -> Option<Vec<u8>> {
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.map.lock().get(&fp).cloned()
    }

    fn store(&self, fp: Fp128, bytes: &[u8]) {
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.map.lock().insert(fp, bytes.to_vec());
    }

    fn quarantine(&self, fp: Fp128) {
        if self.map.lock().remove(&fp).is_some() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A file-per-entry on-disk store: `<dir>/<fp hex>.bin`.
///
/// Writes go through a temporary file in the same directory followed by a
/// rename, so a crash mid-write leaves either the old entry or none — a
/// torn write can only surface as a missing or checksum-failing entry,
/// both of which degrade to a miss.
///
/// The store is size-bounded: entries beyond the byte budget are evicted
/// least-recently-used (recency is tracked in memory per handle and
/// seeded from file modification times on open, oldest first), so a
/// long-lived service cannot fill the disk. [`DiskStore::new`] applies
/// [`DiskStore::DEFAULT_BUDGET`]; use [`DiskStore::with_budget`] to pick
/// the bound, or [`DiskStore::unbounded`] for the pre-eviction behaviour
/// (test fixtures, externally garbage-collected directories).
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    tmp_seq: AtomicU64,
    /// `None` = unbounded (explicitly requested).
    lru: Option<Mutex<ByteBudgetLru>>,
    /// Entries moved to `quarantine/` after failing validation.
    quarantined: AtomicU64,
    /// Fault plan queried at `store:{fp hex}` sites: entries are
    /// corrupted *before* they are persisted (fault injection).
    faults: Option<std::sync::Arc<ccm2_faults::FaultPlan>>,
}

impl DiskStore {
    /// Default byte budget applied by [`DiskStore::new`]: 256 MiB, far
    /// above any single build's working set but a hard ceiling for a
    /// long-lived service's cache directory.
    pub const DEFAULT_BUDGET: u64 = 256 * 1024 * 1024;

    /// Opens (creating if needed) a store rooted at `dir`, bounded by
    /// [`DiskStore::DEFAULT_BUDGET`].
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        DiskStore::with_budget(dir, DiskStore::DEFAULT_BUDGET)
    }

    /// Opens a store bounded by `budget` bytes. Existing entries are
    /// indexed oldest-first (by modification time, then name, so the
    /// seeding order is deterministic) and evicted immediately if they
    /// already exceed the budget.
    pub fn with_budget(dir: impl Into<PathBuf>, budget: u64) -> std::io::Result<DiskStore> {
        let store = DiskStore::open(dir, Some(budget))?;
        store.seed_lru();
        Ok(store)
    }

    /// Opens a store with no size bound. Growth is then the caller's
    /// problem; prefer [`DiskStore::with_budget`] for anything long-lived.
    pub fn unbounded(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        DiskStore::open(dir, None)
    }

    fn open(dir: impl Into<PathBuf>, budget: Option<u64>) -> std::io::Result<DiskStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            tmp_seq: AtomicU64::new(0),
            lru: budget.map(|b| Mutex::new(ByteBudgetLru::new(b))),
            quarantined: AtomicU64::new(0),
            faults: None,
        })
    }

    /// Attaches a fault plan: every subsequent `store` queries
    /// `store:{fp hex}` and applies any [`ccm2_faults::FaultKind::Corrupt`]
    /// decision to the bytes before persisting them.
    pub fn set_faults(&mut self, plan: std::sync::Arc<ccm2_faults::FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Entries moved to quarantine by this handle.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// How many quarantined entries are kept before the oldest are
    /// dropped (bounded forensic buffer, not a second cache).
    pub const QUARANTINE_CAP: usize = 16;

    fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Number of files currently held in `quarantine/`.
    pub fn quarantine_count(&self) -> usize {
        std::fs::read_dir(self.quarantine_dir())
            .map(|it| it.filter_map(|e| e.ok()).count())
            .unwrap_or(0)
    }

    /// Drops the oldest quarantined files until at most
    /// [`DiskStore::QUARANTINE_CAP`] remain.
    fn trim_quarantine(&self) {
        let Ok(rd) = std::fs::read_dir(self.quarantine_dir()) else {
            return;
        };
        let mut found: Vec<(std::time::SystemTime, PathBuf)> = rd
            .filter_map(|e| e.ok())
            .map(|e| {
                let mtime = e
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                (mtime, e.path())
            })
            .collect();
        if found.len() <= DiskStore::QUARANTINE_CAP {
            return;
        }
        found.sort();
        for (_, path) in &found[..found.len() - DiskStore::QUARANTINE_CAP] {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Indexes pre-existing entries into the LRU, oldest first, evicting
    /// whatever no longer fits.
    fn seed_lru(&self) {
        let Some(lru) = &self.lru else { return };
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut found: Vec<(std::time::SystemTime, String, Fp128, u64)> = rd
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                let fp = Fp128::from_hex(name.strip_suffix(".bin")?)?;
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                Some((mtime, name, fp, meta.len()))
            })
            .collect();
        found.sort();
        let mut lru = lru.lock();
        for (_, _, fp, len) in found {
            let admission = lru.admit(fp, len);
            let mut evict = admission.evict;
            if !admission.accepted {
                evict.push(fp);
            }
            for victim in evict {
                let _ = std::fs::remove_file(self.entry_path(victim));
            }
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u64> {
        self.lru.as_ref().map(|l| l.lock().budget())
    }

    /// Bytes currently accounted to tracked entries (`None` = unbounded
    /// store, which does not track sizes).
    pub fn bytes_in_use(&self) -> Option<u64> {
        self.lru.as_ref().map(|l| l.lock().total())
    }

    /// Evictions performed by this handle.
    pub fn evictions(&self) -> u64 {
        self.lru.as_ref().map_or(0, |l| l.lock().evictions())
    }

    fn entry_path(&self, fp: Fp128) -> PathBuf {
        self.dir.join(format!("{}.bin", fp.to_hex()))
    }

    /// Number of `.bin` entries on disk (test/report observability).
    pub fn entry_count(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|it| {
                it.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "bin"))
                    .count()
            })
            .unwrap_or(0)
    }
}

impl ArtifactStore for DiskStore {
    fn load(&self, fp: Fp128) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.entry_path(fp)).ok()?;
        if let Some(lru) = &self.lru {
            let mut lru = lru.lock();
            if lru.contains(fp) {
                lru.touch(fp);
            } else {
                // Another handle (or process) wrote it; adopt it so the
                // budget keeps covering everything in the directory.
                let admission = lru.admit(fp, bytes.len() as u64);
                let mut evict = admission.evict;
                if !admission.accepted {
                    evict.push(fp);
                }
                for victim in evict {
                    if victim != fp {
                        let _ = std::fs::remove_file(self.entry_path(victim));
                    }
                }
                if !admission.accepted {
                    let _ = std::fs::remove_file(self.entry_path(fp));
                }
            }
        }
        Some(bytes)
    }

    fn store(&self, fp: Fp128, bytes: &[u8]) {
        // Fault injection: corrupt the payload before persisting it.
        let mut corrupted: Vec<u8>;
        let mut bytes = bytes;
        if let Some(plan) = &self.faults {
            if let Some(ccm2_faults::FaultKind::Corrupt { byte }) =
                plan.at(&format!("store:{}", fp.to_hex()))
            {
                corrupted = bytes.to_vec();
                if byte == usize::MAX {
                    corrupted.truncate(corrupted.len() / 2);
                } else if !corrupted.is_empty() {
                    let ix = byte % corrupted.len();
                    corrupted[ix] ^= 0x55;
                }
                bytes = &corrupted;
            }
        }
        // Decide admission before touching the filesystem so the
        // directory never transiently exceeds the budget.
        if let Some(lru) = &self.lru {
            let admission = lru.lock().admit(fp, bytes.len() as u64);
            for victim in admission.evict.iter().filter(|&&v| v != fp) {
                let _ = std::fs::remove_file(self.entry_path(*victim));
            }
            if !admission.accepted {
                let _ = std::fs::remove_file(self.entry_path(fp));
                return;
            }
        }
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{}.{}.{seq}.tmp", fp.to_hex(), std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data().ok();
            std::fs::rename(&tmp, self.entry_path(fp))
        };
        if write().is_err() {
            let _ = std::fs::remove_file(&tmp);
            if let Some(lru) = &self.lru {
                lru.lock().remove(fp);
            }
        }
    }

    fn quarantine(&self, fp: Fp128) {
        let src = self.entry_path(fp);
        if !src.exists() {
            return;
        }
        let qdir = self.quarantine_dir();
        if std::fs::create_dir_all(&qdir).is_err() {
            return;
        }
        let dst = qdir.join(format!("{}.bin", fp.to_hex()));
        if std::fs::rename(&src, &dst).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            if let Some(lru) = &self.lru {
                lru.lock().remove(fp);
            }
            self.trim_quarantine();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fp128 {
        Fp128 { hi: n, lo: !n }
    }

    #[test]
    fn mem_store_round_trip_and_corruption_hook() {
        let s = MemStore::new();
        assert_eq!(s.load(fp(1)), None);
        s.store(fp(1), b"abc");
        assert_eq!(s.load(fp(1)).as_deref(), Some(&b"abc"[..]));
        assert_eq!(s.entry_count(), 1);
        assert!(s.corrupt(fp(1), 0));
        assert_ne!(s.load(fp(1)).as_deref(), Some(&b"abc"[..]));
        assert!(!s.corrupt(fp(2), 0), "missing entry not corruptible");
        let (loads, stores) = s.op_counts();
        assert_eq!((loads, stores), (3, 1));
    }

    #[test]
    fn lru_admission_never_exceeds_budget() {
        let mut lru = ByteBudgetLru::new(100);
        assert!(lru.admit(fp(1), 40).accepted);
        assert!(lru.admit(fp(2), 40).accepted);
        assert_eq!(lru.total(), 80);
        // Touch 1 so 2 becomes the LRU victim.
        lru.touch(fp(1));
        let a = lru.admit(fp(3), 40);
        assert!(a.accepted);
        assert_eq!(a.evict, vec![fp(2)]);
        assert!(lru.total() <= lru.budget());
        assert_eq!(lru.evictions(), 1);
        assert!(lru.contains(fp(1)) && lru.contains(fp(3)));
        // Replacing an entry re-accounts its size instead of leaking it.
        assert!(lru.admit(fp(1), 60).accepted);
        assert!(lru.total() <= 100);
    }

    #[test]
    fn lru_recency_order_survives_replay() {
        let mut lru = ByteBudgetLru::new(100);
        lru.admit(fp(1), 10);
        lru.admit(fp(2), 10);
        lru.admit(fp(3), 10);
        lru.touch(fp(1)); // order is now 2, 3, 1 (oldest first)
        assert_eq!(lru.entries_by_recency(), vec![fp(2), fp(3), fp(1)]);
        // Re-admitting in that order rebuilds the same recency order.
        let mut rebuilt = ByteBudgetLru::new(100);
        for f in lru.entries_by_recency() {
            rebuilt.admit(f, 10);
        }
        assert_eq!(rebuilt.entries_by_recency(), lru.entries_by_recency());
    }

    #[test]
    fn lru_rejects_oversize_and_drops_stale_twin() {
        let mut lru = ByteBudgetLru::new(50);
        assert!(lru.admit(fp(1), 20).accepted);
        let a = lru.admit(fp(1), 500);
        assert!(!a.accepted);
        assert_eq!(a.evict, vec![fp(1)], "stale payload must go");
        assert_eq!(lru.total(), 0);
        assert!(!lru.admit(fp(2), 51).accepted);
        assert!(lru.is_empty());
    }

    #[test]
    fn disk_store_evicts_lru_within_budget() {
        let dir = std::env::temp_dir().join(format!(
            "ccm2-incr-budget-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let payload = vec![0xAB; 100];
        let s = DiskStore::with_budget(&dir, 250).expect("create");
        s.store(fp(1), &payload);
        s.store(fp(2), &payload);
        assert_eq!(s.entry_count(), 2);
        s.load(fp(1)); // 1 becomes MRU; 2 is the next victim
        s.store(fp(3), &payload);
        assert_eq!(s.entry_count(), 2, "one entry evicted");
        assert!(s.load(fp(2)).is_none(), "victim was the LRU entry");
        assert!(s.load(fp(1)).is_some() && s.load(fp(3)).is_some());
        assert!(s.bytes_in_use().expect("bounded") <= 250);
        assert_eq!(s.evictions(), 1);
        // Oversize entries are rejected, not stored.
        s.store(fp(4), &vec![0u8; 300]);
        assert!(s.load(fp(4)).is_none());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn disk_store_reopen_seeds_index_and_enforces_budget() {
        let dir = std::env::temp_dir().join(format!(
            "ccm2-incr-reseed-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let s = DiskStore::unbounded(&dir).expect("create");
            for i in 0..6u64 {
                s.store(fp(i), &[i as u8; 100]);
            }
            assert_eq!(s.entry_count(), 6);
        }
        // Reopening with a budget trims the directory to fit.
        let s = DiskStore::with_budget(&dir, 250).expect("reopen");
        assert!(s.entry_count() <= 2, "seeded index evicted the overflow");
        assert!(s.bytes_in_use().expect("bounded") <= 250);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn disk_store_quarantines_bit_flipped_entry() {
        let dir = std::env::temp_dir().join(format!(
            "ccm2-incr-quarantine-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let s = DiskStore::new(&dir).expect("create");
        s.store(fp(1), b"good bytes with a checksum");
        // Bit-flip the on-disk entry (simulated disk corruption).
        let path = s.entry_path(fp(1));
        let mut bytes = std::fs::read(&path).expect("entry on disk");
        bytes[3] ^= 0x55;
        std::fs::write(&path, &bytes).expect("rewrite");
        // A loader that notices the mismatch quarantines the entry:
        // it moves aside, is no longer served, and is counted.
        s.quarantine(fp(1));
        assert_eq!(s.quarantined(), 1);
        assert_eq!(s.quarantine_count(), 1);
        assert!(s.load(fp(1)).is_none(), "quarantined entry never served");
        assert!(
            dir.join("quarantine")
                .join(format!("{}.bin", fp(1).to_hex()))
                .exists(),
            "blob preserved for inspection"
        );
        // Quarantining a missing entry is a no-op.
        s.quarantine(fp(2));
        assert_eq!(s.quarantined(), 1);
        // The quarantine buffer is bounded.
        for i in 10..(12 + DiskStore::QUARANTINE_CAP as u64) {
            s.store(fp(i), b"x");
            s.quarantine(fp(i));
        }
        assert!(s.quarantine_count() <= DiskStore::QUARANTINE_CAP);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn disk_store_fault_plan_corrupts_before_persist() {
        let dir = std::env::temp_dir().join(format!(
            "ccm2-incr-faultstore-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = DiskStore::new(&dir).expect("create");
        s.set_faults(std::sync::Arc::new(ccm2_faults::FaultPlan::single(
            format!("store:{}", fp(1).to_hex()),
            ccm2_faults::FaultKind::Corrupt { byte: 2 },
        )));
        s.store(fp(1), b"payload");
        let mut want = b"payload".to_vec();
        want[2] ^= 0x55;
        assert_eq!(s.load(fp(1)).as_deref(), Some(&want[..]));
        // Untargeted entries are untouched; truncation mode halves.
        s.store(fp(2), b"payload");
        assert_eq!(s.load(fp(2)).as_deref(), Some(&b"payload"[..]));
        s.set_faults(std::sync::Arc::new(ccm2_faults::FaultPlan::single(
            format!("store:{}", fp(3).to_hex()),
            ccm2_faults::FaultKind::Corrupt { byte: usize::MAX },
        )));
        s.store(fp(3), b"12345678");
        assert_eq!(s.load(fp(3)).as_deref(), Some(&b"1234"[..]));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn mem_store_quarantine_removes_and_counts() {
        let s = MemStore::new();
        s.store(fp(1), b"abc");
        s.quarantine(fp(1));
        assert_eq!(s.quarantined(), 1);
        assert!(s.load(fp(1)).is_none());
        s.quarantine(fp(1));
        assert_eq!(s.quarantined(), 1, "missing entry not double-counted");
    }

    #[test]
    fn disk_store_round_trip_and_hex_naming() {
        let dir = std::env::temp_dir().join(format!("ccm2-incr-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = DiskStore::new(&dir).expect("create store dir");
        assert_eq!(s.load(fp(7)), None);
        s.store(fp(7), b"payload");
        assert_eq!(s.load(fp(7)).as_deref(), Some(&b"payload"[..]));
        assert_eq!(s.entry_count(), 1);
        // Entries are addressable by fingerprint hex, so a second store
        // handle (a later compiler run) sees them.
        let again = DiskStore::new(&dir).expect("reopen");
        assert_eq!(again.load(fp(7)).as_deref(), Some(&b"payload"[..]));
        s.store(fp(7), b"replaced");
        assert_eq!(again.load(fp(7)).as_deref(), Some(&b"replaced"[..]));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
