//! The Supervisors task scheduler (paper §2.3) with two interchangeable
//! executors.
//!
//! * [`threaded`] — real OS-thread workers, one per assumed processor:
//!   the paper's deployment model.
//! * [`sim`] — a deterministic virtual-time executor that runs the same
//!   task bodies on P *simulated* processors, used to reproduce the
//!   1–8-processor speedup experiments on a single-CPU host (see
//!   DESIGN.md's substitution table).
//!
//! Both implement [`ExecEnv`], so the compiler driver is written once.
//! Events come in the three classes of §2.3.3 ([`EventClass`]); tasks
//! carry the §2.3.4 priority classes and the declared signal/wait sets
//! that drive blocked-worker rescheduling and its anti-deadlock
//! eligibility rule.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use ccm2_sched::{run_threaded, ExecEnv, task::{TaskDesc, TaskKind}};
//!
//! let hits = Arc::new(AtomicU32::new(0));
//! let h = Arc::clone(&hits);
//! run_threaded(2, |sup| {
//!     sup.spawn(TaskDesc::new(
//!         "demo",
//!         TaskKind::Lexor,
//!         Box::new(move || { h.fetch_add(1, Ordering::Relaxed); }),
//!     ));
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 1);
//! ```

pub mod sim;
pub mod task;
pub mod threaded;
pub mod trace;
pub mod wfg;

use ccm2_support::ids::EventId;
use ccm2_support::work::{Work, WorkMeter};

pub use sim::{run_sim, run_sim_with, SimConfig, SimEnv};
pub use task::{TaskDesc, TaskKind, WaitSet};
pub use threaded::{run_threaded, run_threaded_with, ThreadedSupervisor};
pub use trace::{render_watchtool, Segment, Trace};
pub use wfg::WaitForGraph;

/// Fault-injection and degradation configuration for a run
/// ([`run_threaded_with`] / [`run_sim_with`]).
///
/// With `recover` set, both executors change failure handling from
/// *abort* to *diagnose and continue*:
///
/// * a panicking task body is caught; its name and payload are recorded
///   in [`RunReport::task_panics`], its declared signals are still
///   backstop-signaled (so dependents and the merge never hang), and
///   the run completes;
/// * a wedge (every worker blocked or idle with tasks outstanding) is
///   not a panic but a watchdog action: the wait-for-graph diagnosis is
///   recorded in [`RunReport::stalls`] and the blocking events are
///   force-signaled so the run drains;
/// * a task overrunning `deadline` is recorded in
///   [`RunReport::stalls`] (virtual busy time on the simulator, wall
///   time on threads).
///
/// Without `recover` (the default), behavior is the historical one:
/// deadlocks and panics unwind with a diagnosis in the payload.
#[derive(Clone, Default)]
pub struct Robustness {
    /// Fault plan queried at `task:`/`signal:` sites; `None` injects
    /// nothing.
    pub plan: Option<std::sync::Arc<ccm2_faults::FaultPlan>>,
    /// Per-task deadline in executor-native units: virtual time units
    /// on the simulator, microseconds of wall time on threads.
    pub deadline: Option<u64>,
    /// Catch task panics and recover wedges instead of unwinding.
    pub recover: bool,
    /// How many times a fatally faulted per-stream task
    /// ([`TaskKind::stream_retryable`]) may be re-enqueued before it is
    /// allowed to degrade. A fault is *fatal* when it is a panic, or a
    /// stall long enough to blow the configured `deadline`; because both
    /// executors inject at task dispatch — before the body runs, before
    /// any event is signaled — a retried attempt needs no rollback.
    /// Attempt `k >= 1` queries the suffixed site `task:{name}#r{k}`, so
    /// an exact-match plan models a transient fault (fires on attempt 0
    /// only) and a `task:{name}*` glob models a persistent one. Requires
    /// `recover`; the default of 0 keeps the historical degrade-only
    /// behavior.
    pub max_retries: u32,
}

impl Robustness {
    /// No injection, no watchdog, historical panic behavior.
    pub fn none() -> Robustness {
        Robustness::default()
    }

    /// Degraded-mode configuration: inject per `plan`, watch per-task
    /// `deadline`, and recover instead of panicking.
    pub fn degrading(
        plan: Option<std::sync::Arc<ccm2_faults::FaultPlan>>,
        deadline: Option<u64>,
    ) -> Robustness {
        Robustness {
            plan,
            deadline,
            recover: true,
            max_retries: 0,
        }
    }

    /// Same as [`Robustness::degrading`], but supervised: fatally
    /// faulted per-stream tasks are retried up to `max_retries` times
    /// before degrading.
    pub fn supervised(
        plan: Option<std::sync::Arc<ccm2_faults::FaultPlan>>,
        deadline: Option<u64>,
        max_retries: u32,
    ) -> Robustness {
        Robustness {
            max_retries,
            ..Robustness::degrading(plan, deadline)
        }
    }
}

/// The fault-plan site a task dispatch queries: bare `task:{name}` for
/// the first attempt, `task:{name}#r{attempt}` for retries — so plans
/// can distinguish transient faults (exact match, attempt 0 only) from
/// persistent ones (`task:{name}*` glob).
pub(crate) fn dispatch_site(name: &str, attempt: u32) -> String {
    if attempt == 0 {
        format!("task:{name}")
    } else {
        format!("task:{name}#r{attempt}")
    }
}

/// Renders a caught panic payload for reports.
pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The three event categories of paper §2.3.3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventClass {
    /// Must occur before dependent tasks are even assigned to a worker
    /// (implemented as task prereqs).
    Avoided,
    /// Tasks may start and block on it; a blocked worker is rescheduled
    /// onto other eligible tasks.
    Handled,
    /// A handled event whose waiter is *not* rescheduled (token-block
    /// queues; producers never block, so plain waiting is safe).
    Barrier,
}

/// The execution environment seen by compiler tasks: events, task
/// spawning, blocking, and work charging. Implemented by both executors.
pub trait ExecEnv: Send + Sync {
    /// Creates an event of the given class.
    fn new_event(&self, class: EventClass) -> EventId;
    /// Creates a labeled event (labels appear in scheduler diagnostics;
    /// the default discards them).
    fn new_event_named(&self, class: EventClass, name: &str) -> EventId {
        let _ = name;
        self.new_event(class)
    }
    /// Signals an event (idempotent).
    fn signal(&self, event: EventId);
    /// Whether an event has been signaled.
    fn is_signaled(&self, event: EventId) -> bool;
    /// Blocks the calling task until the event occurs, applying the
    /// §2.3.4 blocked-worker rescheduling rules.
    fn wait(&self, event: EventId) {
        self.wait_hinted(event, None);
    }
    /// Like [`ExecEnv::wait`], with a hint: the task that signals
    /// `signaler_hint` will also resolve `event`. Used by the Optimistic
    /// DKY strategy, whose per-symbol events are created dynamically and
    /// therefore appear in no task's declared signal set — without the
    /// hint, the scheduler's "preferentially run the task which will
    /// resolve the DKY blockage" rule (§2.2) cannot find the resolver,
    /// and deep import chains can wedge every worker.
    fn wait_hinted(&self, event: EventId, signaler_hint: Option<EventId>);
    /// Adds a task to the supervisor's queues.
    fn spawn(&self, task: TaskDesc);
    /// Charges work units (advances virtual time under [`sim`]).
    fn charge(&self, work: Work, units: u64);
    /// The current time in the executor's units (micros for threads,
    /// virtual units for the simulator; the simulator returns 0 to task
    /// code, which must not observe the clock).
    fn virtual_now(&self) -> u64;
}

/// Adapts an [`ExecEnv`] to the [`WorkMeter`] interface the semantic
/// analysis and code generation crates charge through.
pub struct EnvMeter<E: ExecEnv + ?Sized>(pub std::sync::Arc<E>);

impl<E: ExecEnv + ?Sized> WorkMeter for EnvMeter<E> {
    fn charge(&self, work: Work, units: u64) {
        self.0.charge(work, units);
    }
}

impl<E: ExecEnv + ?Sized> std::fmt::Debug for EnvMeter<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EnvMeter(..)")
    }
}

/// The outcome of a scheduled run.
#[derive(Debug)]
pub struct RunReport {
    /// Virtual makespan (simulator only).
    pub virtual_time: Option<u64>,
    /// Wall-clock duration in microseconds (threaded executor).
    pub wall_micros: u64,
    /// Execution trace (WatchTool input).
    pub trace: Trace,
    /// Number of tasks completed.
    pub tasks_run: usize,
    /// Total units charged per [`Work`] kind.
    pub charges: [u64; Work::COUNT],
    /// Task bodies that panicked and were caught under
    /// [`Robustness::recover`], as `(task name, panic message)`.
    pub task_panics: Vec<(String, String)>,
    /// Watchdog diagnoses: wedges force-released and tasks that
    /// overran the configured deadline.
    pub stalls: Vec<String>,
    /// Supervised recoveries: tasks whose faulted dispatches were
    /// retried under [`Robustness::max_retries`] and then completed
    /// cleanly, as `(task name, attempts that faulted)`. A recovered
    /// task contributes nothing to `task_panics`/`stalls` — its output
    /// is byte-identical to a fault-free run.
    pub recoveries: Vec<(String, u32)>,
}

impl RunReport {
    /// The run's duration in its native unit.
    pub fn duration(&self) -> u64 {
        self.virtual_time.unwrap_or(self.wall_micros)
    }

    /// Total charged units across all work kinds.
    pub fn total_work(&self) -> u64 {
        self.charges.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn env_meter_forwards() {
        let report = run_threaded(1, |sup| {
            let meter = EnvMeter(Arc::clone(sup));
            meter.charge(Work::Lex, 123);
        });
        assert_eq!(report.charges[Work::Lex as usize], 123);
    }

    #[test]
    fn run_report_duration_prefers_virtual() {
        let r = RunReport {
            virtual_time: Some(42),
            wall_micros: 7,
            trace: Trace::default(),
            tasks_run: 0,
            charges: [0; Work::COUNT],
            task_panics: Vec::new(),
            stalls: Vec::new(),
            recoveries: Vec::new(),
        };
        assert_eq!(r.duration(), 42);
    }
}
