//! The virtual-time multiprocessor executor.
//!
//! The paper's evaluation sweeps 1–8 Firefly CVax processors; this
//! reproduction's host has one CPU, so speedup cannot be observed on the
//! wall clock. This executor runs the *actual* compiler task bodies —
//! real lexing, real symbol tables, real code generation — but schedules
//! them on `P` *virtual processors* under exactly the Supervisors rules
//! of the threaded executor, advancing a virtual clock from the work each
//! task charges ([`ccm2_support::work::WorkMeter`] units).
//!
//! Mechanically, every task runs on its own parked OS thread; a
//! single-threaded controller resumes exactly one task at a time and
//! always steps the runnable processor with the smallest local clock, so
//! shared-state mutations happen in virtual-time order and the whole
//! simulation is deterministic. The cost model includes the Firefly's
//! memory-bus saturation (§4.1): each charged unit is inflated by a
//! contention factor that grows with the number of concurrently busy
//! processors.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

use parking_lot::Mutex;

use ccm2_faults::{FaultKind, FaultPlan};
use ccm2_support::ids::EventId;
use ccm2_support::work::Work;

use crate::task::{priority_key, TaskDesc, TaskKind, WaitSet};
use crate::trace::{Segment, Trace};
use crate::{payload_message, EventClass, ExecEnv, Robustness, RunReport};

/// Configuration for a simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of virtual processors (the paper sweeps 1..=8).
    pub procs: u32,
    /// Per-unit cost multiplier for each [`Work`] kind (indexed by the
    /// enum's discriminant order). 1.0 means one charged unit = one
    /// virtual time unit.
    pub cost: [f64; Work::COUNT],
    /// Memory-bus contention: each unit is multiplied by
    /// `1 + contention_alpha × (busy − 1)` where `busy` is the number of
    /// processors executing at charge time (Firefly bus saturation).
    pub contention_alpha: f64,
    /// Fixed virtual cost of dispatching a task to a worker (scheduling
    /// overhead; also what makes the 1-processor concurrent compiler
    /// slower than the sequential one, §4.2).
    pub dispatch_cost: u64,
    /// Whether a worker whose task blocks on a handled event is
    /// rescheduled onto other eligible tasks (the Supervisors extension
    /// of WorkCrews, §2.3.2). `false` models plain WorkCrews: blocked
    /// workers simply wait — an ablation quantifying what the paper's
    /// extension buys.
    pub reschedule_blocked: bool,
}

impl SimConfig {
    /// A config with unit costs and no contention.
    pub fn new(procs: u32) -> SimConfig {
        SimConfig {
            procs,
            cost: [1.0; Work::COUNT],
            contention_alpha: 0.0,
            dispatch_cost: 0,
            reschedule_blocked: true,
        }
    }

    /// The calibrated "Firefly-like" model used by the benchmark harness.
    ///
    /// Calibration (see EXPERIMENTS.md): the front-end kinds (lex, split,
    /// import) are cheap relative to semantic analysis and code
    /// generation, as in real compilers; the contention term models the
    /// Firefly's memory-bus saturation and fixed processor priorities
    /// (§4.1), which the paper cites as the cause of sub-linear speedup.
    /// Cost index order follows [`Work::ALL`]: Lex, Split, Import, Parse,
    /// DeclAnalyze, Lookup, StmtAnalyze, CodeGen, Merge, TaskOverhead,
    /// Analyze, Splice.
    pub fn firefly(procs: u32) -> SimConfig {
        SimConfig {
            procs,
            cost: [
                0.05, 0.015, 0.01, 0.5, 2.0, 1.5, 1.5, 1.0, 0.5, 1.0, 1.2, 0.5,
            ],
            contention_alpha: 0.03,
            dispatch_cost: 6,
            reschedule_blocked: true,
        }
    }
}

/// How many accumulated work units a task buffers before yielding to the
/// controller. Virtual time advances in lumps of at most this size, which
/// keeps controller handshakes (two thread switches each) amortized.
const CHARGE_QUANTUM: u64 = 256;

enum Action {
    /// Accumulated charge per work kind.
    Charge([u64; Work::COUNT]),
    /// Wait on an event, with an optional co-signaler hint (see
    /// [`crate::ExecEnv::wait_hinted`]).
    Wait(EventId, Option<EventId>),
    /// Task body finished; carries the caught panic message when the
    /// body panicked under recover mode.
    Finish(Option<String>),
}

struct YieldMsg {
    signals: Vec<EventId>,
    spawns: Vec<TaskDesc>,
    action: Action,
}

struct TaskChannels {
    resume_tx: SyncSender<()>,
    yield_rx: Receiver<YieldMsg>,
}

enum TaskState {
    NotStarted(crate::task::TaskBody),
    Running(TaskChannels),
    Done,
}

struct SimTask {
    name: String,
    kind: TaskKind,
    signals: Vec<EventId>,
    signals_def_scope: bool,
    signals_barriers: bool,
    may_wait: WaitSet,
    weight: u64,
    /// Per-task retry cap overriding the global `max_retries`.
    retry_budget: Option<u32>,
    state: TaskState,
}

struct EvState {
    class: EventClass,
    signaled: bool,
    /// Display name for deadlock diagnostics (empty → `event#N`).
    name: String,
}

/// State shared between the controller and task threads (only one of
/// which executes at any instant).
struct SharedState {
    events: Vec<EvState>,
    prestart_spawns: Vec<TaskDesc>,
    prestart_signals: Vec<EventId>,
}

/// The simulated execution environment handed to compiler tasks.
pub struct SimEnv {
    shared: Mutex<SharedState>,
    /// Fault plan queried at `signal:` sites (lost-signal injection).
    faults: Option<Arc<FaultPlan>>,
}

impl SimEnv {
    /// Whether the fault plan drops every signal of this event.
    fn is_lost(&self, event: EventId) -> bool {
        match &self.faults {
            Some(plan) => {
                let name = self.shared.lock().events[event.index()].name.clone();
                plan.at(&format!("signal:{name}")) == Some(FaultKind::LoseSignal)
            }
            None => false,
        }
    }
}

thread_local! {
    static SIM_TASK: RefCell<Option<SimTaskCtx>> = const { RefCell::new(None) };
}

struct SimTaskCtx {
    yield_tx: SyncSender<YieldMsg>,
    resume_rx: Receiver<()>,
    pending_signals: Vec<EventId>,
    pending_spawns: Vec<TaskDesc>,
    pending_charge: [u64; Work::COUNT],
    pending_total: u64,
}

impl SimTaskCtx {
    fn yield_with(&mut self, action: Action) {
        let msg = YieldMsg {
            signals: std::mem::take(&mut self.pending_signals),
            spawns: std::mem::take(&mut self.pending_spawns),
            action,
        };
        self.yield_tx.send(msg).expect("controller alive");
    }

    /// Yields the buffered charge (if any) and waits to be resumed.
    fn flush_charge(&mut self) {
        if self.pending_total == 0 {
            return;
        }
        let lump = std::mem::take(&mut self.pending_charge);
        self.pending_total = 0;
        self.yield_with(Action::Charge(lump));
        self.resume_rx.recv().expect("controller alive");
    }
}

impl ExecEnv for SimEnv {
    fn new_event(&self, class: EventClass) -> EventId {
        self.new_event_named(class, "")
    }

    fn new_event_named(&self, class: EventClass, name: &str) -> EventId {
        let mut sh = self.shared.lock();
        let id = EventId(sh.events.len() as u32);
        sh.events.push(EvState {
            class,
            signaled: false,
            name: name.to_string(),
        });
        id
    }

    fn signal(&self, event: EventId) {
        if self.is_lost(event) {
            // Injected lost signal: never marked signaled, never
            // published to the controller. The watchdog force-releases
            // any waiter it wedges.
            return;
        }
        self.shared.lock().events[event.index()].signaled = true;
        let in_task = SIM_TASK.with(|t| {
            let mut b = t.borrow_mut();
            if let Some(ctx) = b.as_mut() {
                ctx.pending_signals.push(event);
                true
            } else {
                false
            }
        });
        if !in_task {
            self.shared.lock().prestart_signals.push(event);
        }
    }

    fn is_signaled(&self, event: EventId) -> bool {
        self.shared.lock().events[event.index()].signaled
    }

    fn wait_hinted(&self, event: EventId, signaler_hint: Option<EventId>) {
        // Flush buffered work (so the wait happens at the right virtual
        // time), yield a Wait action, then block until resumed (which the
        // controller does once the event has occurred in virtual time).
        SIM_TASK.with(|t| {
            let mut b = t.borrow_mut();
            let ctx = b.as_mut().expect("wait() outside a simulated task");
            ctx.flush_charge();
            ctx.yield_with(Action::Wait(event, signaler_hint));
        });
        SIM_TASK.with(|t| {
            let b = t.borrow();
            let ctx = b.as_ref().expect("sim task ctx");
            ctx.resume_rx.recv().expect("controller alive");
        });
    }

    fn spawn(&self, task: TaskDesc) {
        let leftover = SIM_TASK.with(|t| {
            let mut b = t.borrow_mut();
            match b.as_mut() {
                Some(ctx) => {
                    ctx.pending_spawns.push(task);
                    None
                }
                None => Some(task),
            }
        });
        if let Some(task) = leftover {
            // Setup-thread spawn (before the controller starts).
            self.shared.lock().prestart_spawns.push(task);
        }
    }

    fn charge(&self, work: Work, units: u64) {
        if units == 0 {
            return;
        }
        SIM_TASK.with(|t| {
            let mut b = t.borrow_mut();
            let Some(ctx) = b.as_mut() else {
                return; // setup-thread charges don't consume virtual time
            };
            ctx.pending_charge[work as usize] += units;
            ctx.pending_total += units;
            if ctx.pending_total >= CHARGE_QUANTUM {
                ctx.flush_charge();
            }
        });
    }

    fn virtual_now(&self) -> u64 {
        0 // tasks do not observe the clock directly
    }
}

struct Proc {
    clock: u64,
    current: Option<usize>,
    /// Suspended tasks (bottom→top) with the event each awaits and the
    /// co-signaler hint, if any.
    stack: Vec<(usize, EventId, Option<EventId>)>,
}

type PrioKey = (usize, std::cmp::Reverse<u64>, u64);

struct PendingEntry {
    prereqs: Vec<EventId>,
    key: PrioKey,
    task_ix: usize,
}

/// Runs a task graph on `config.procs` virtual processors. `setup`
/// creates events and spawns the initial tasks, exactly as with
/// [`crate::threaded::run_threaded`]; the run is fully deterministic for
/// a deterministic task graph.
///
/// # Panics
///
/// Panics if the task graph deadlocks (nothing runnable while tasks
/// remain), mirroring the threaded executor's detector.
pub fn run_sim(config: SimConfig, setup: impl FnOnce(&Arc<SimEnv>)) -> RunReport {
    run_sim_with(config, Robustness::default(), setup)
}

/// [`run_sim`] with a [`Robustness`] configuration: fault injection,
/// per-task virtual-time deadlines, and — when `recover` is set —
/// catch-and-degrade instead of unwinding on task panics and wedges.
/// Caught panics and watchdog diagnoses come back in
/// [`RunReport::task_panics`] / [`RunReport::stalls`].
pub fn run_sim_with(
    config: SimConfig,
    robustness: Robustness,
    setup: impl FnOnce(&Arc<SimEnv>),
) -> RunReport {
    assert!(config.procs >= 1, "need at least one processor");
    let env = Arc::new(SimEnv {
        shared: Mutex::new(SharedState {
            events: Vec::new(),
            prestart_spawns: Vec::new(),
            prestart_signals: Vec::new(),
        }),
        faults: robustness.plan.clone(),
    });
    setup(&env);
    Controller::new(Arc::clone(&env), config, robustness).run()
}

/// Spawns a task from outside the simulation (setup phase).
pub fn spawn_prestart(env: &Arc<SimEnv>, task: TaskDesc) {
    env.shared.lock().prestart_spawns.push(task);
}

struct Controller {
    env: Arc<SimEnv>,
    config: SimConfig,
    tasks: Vec<SimTask>,
    ready: BTreeMap<PrioKey, (usize, u64)>, // key -> (task index, ready_time)
    pending: Vec<PendingEntry>,
    /// wake time of each signaled event (indexed by event id; None =
    /// unsignaled so far as the controller has processed).
    wake_time: Vec<Option<u64>>,
    /// tasks blocked on an event: event -> (proc, task) entries.
    procs: Vec<Proc>,
    seq: u64,
    outstanding: usize,
    trace: Trace,
    charges: [u64; Work::COUNT],
    tasks_run: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
    robustness: Robustness,
    /// Virtual busy time accumulated per task (deadline watchdog).
    busy: Vec<u64>,
    /// Faulted dispatches retried per task under supervised recovery.
    attempts: Vec<u32>,
    /// Whether the task's final (executed) dispatch was fault-free.
    clean_final: Vec<bool>,
    panics: Vec<(String, String)>,
    stalls: Vec<String>,
    stall_keys: std::collections::HashSet<String>,
    recoveries: Vec<(String, u32)>,
}

impl Controller {
    fn new(env: Arc<SimEnv>, config: SimConfig, robustness: Robustness) -> Controller {
        let procs = (0..config.procs)
            .map(|_| Proc {
                clock: 0,
                current: None,
                stack: Vec::new(),
            })
            .collect();
        Controller {
            env,
            config,
            tasks: Vec::new(),
            ready: BTreeMap::new(),
            pending: Vec::new(),
            wake_time: Vec::new(),
            procs,
            seq: 0,
            outstanding: 0,
            trace: Trace::default(),
            charges: [0; Work::COUNT],
            tasks_run: 0,
            handles: Vec::new(),
            robustness,
            busy: Vec::new(),
            attempts: Vec::new(),
            clean_final: Vec::new(),
            panics: Vec::new(),
            stalls: Vec::new(),
            stall_keys: std::collections::HashSet::new(),
            recoveries: Vec::new(),
        }
    }

    /// Records a watchdog diagnosis once per dedup key.
    fn record_stall(&mut self, key: String, msg: String) {
        if self.stall_keys.insert(key) {
            self.stalls.push(msg);
        }
    }

    /// Diagnoses the task if its accumulated virtual busy time exceeds
    /// the configured deadline.
    fn check_deadline(&mut self, task_ix: usize) {
        let Some(deadline) = self.robustness.deadline else {
            return;
        };
        let busy = self.busy[task_ix];
        if busy > deadline {
            let name = self.tasks[task_ix].name.clone();
            self.record_stall(
                format!("deadline:{name}"),
                format!(
                    "task `{name}` exceeded the {deadline}-unit virtual \
                     deadline ({busy} units charged)"
                ),
            );
        }
    }

    /// Whether the fault plan drops every signal of this event.
    fn lost_event(&self, event: EventId) -> bool {
        let Some(plan) = &self.robustness.plan else {
            return false;
        };
        let name = self.env.shared.lock().events[event.index()].name.clone();
        plan.at(&format!("signal:{name}")) == Some(FaultKind::LoseSignal)
    }

    /// Recover-mode wedge release: records the wait-for diagnosis and
    /// force-signals every unsignaled event the wedge is waiting on so
    /// the run drains instead of aborting. Returns false when there is
    /// nothing to release (the caller then panics as before).
    fn release_wedge(&mut self) -> bool {
        self.ensure_wake_len();
        let mut events: Vec<EventId> = Vec::new();
        for proc in &self.procs {
            for &(_, e, _) in &proc.stack {
                events.push(e);
            }
        }
        for p in &self.pending {
            events.extend_from_slice(&p.prereqs);
        }
        events.sort_by_key(|e| e.index());
        events.dedup();
        events.retain(|e| self.wake_time[e.index()].is_none());
        if events.is_empty() {
            return false;
        }
        let report = self.deadlock_report();
        self.record_stall(report.clone(), format!("watchdog released wedge: {report}"));
        // Each release wakes at least one previously-unsignaled event
        // and events are finite, so recovery rounds terminate.
        let at = self.procs.iter().map(|p| p.clock).max().unwrap_or(0);
        for e in events {
            self.env.shared.lock().events[e.index()].signaled = true;
            self.process_signal(e, at);
        }
        true
    }

    fn ensure_wake_len(&mut self) {
        let n = self.env.shared.lock().events.len();
        if self.wake_time.len() < n {
            self.wake_time.resize(n, None);
        }
    }

    fn admit(&mut self, desc: TaskDesc, now: u64) {
        self.ensure_wake_len();
        self.seq += 1;
        let key = priority_key(desc.kind, desc.weight, self.seq);
        let ix = self.tasks.len();
        self.tasks.push(SimTask {
            name: desc.name,
            kind: desc.kind,
            signals: desc.signals,
            signals_def_scope: desc.signals_def_scope,
            signals_barriers: desc.signals_barriers,
            may_wait: desc.may_wait,
            weight: desc.weight,
            retry_budget: desc.retry_budget,
            state: TaskState::NotStarted(desc.body),
        });
        self.busy.push(0);
        self.attempts.push(0);
        self.clean_final.push(true);
        self.outstanding += 1;
        let unsatisfied: Vec<EventId> = desc
            .prereqs
            .iter()
            .copied()
            .filter(|e| self.wake_time[e.index()].is_none())
            .collect();
        if unsatisfied.is_empty() {
            let ready_at = desc
                .prereqs
                .iter()
                .filter_map(|e| self.wake_time[e.index()])
                .fold(now, u64::max);
            self.ready.insert(key, (ix, ready_at));
        } else {
            self.pending.push(PendingEntry {
                prereqs: unsatisfied,
                key,
                task_ix: ix,
            });
        }
    }

    fn process_signal(&mut self, event: EventId, at: u64) {
        self.ensure_wake_len();
        if self.wake_time[event.index()].is_some() {
            return;
        }
        self.wake_time[event.index()] = Some(at);
        // Release avoided-prereq tasks.
        let mut still = Vec::new();
        let mut freed = Vec::new();
        for mut p in std::mem::take(&mut self.pending) {
            p.prereqs.retain(|e| self.wake_time[e.index()].is_none());
            if p.prereqs.is_empty() {
                freed.push(p);
            } else {
                still.push(p);
            }
        }
        self.pending = still;
        for p in freed {
            self.ready.insert(p.key, (p.task_ix, at));
        }
    }

    /// Starts or resumes the given task on proc `p`, returning the
    /// yield. `inject` is the fault (already looked up by the run loop,
    /// which may instead have retried the dispatch) to apply when the
    /// task is launched; resumes ignore it.
    fn step_task(&mut self, p: usize, task_ix: usize, inject: Option<FaultKind>) -> YieldMsg {
        // Transition NotStarted → Running by launching its thread.
        if matches!(self.tasks[task_ix].state, TaskState::NotStarted(_)) {
            let body = match std::mem::replace(&mut self.tasks[task_ix].state, TaskState::Done) {
                TaskState::NotStarted(b) => b,
                _ => unreachable!(),
            };
            let name = self.tasks[task_ix].name.clone();
            let inject_panic = matches!(inject, Some(FaultKind::Panic));
            let recover = self.robustness.recover;
            let (resume_tx, resume_rx) = std::sync::mpsc::sync_channel::<()>(0);
            let (yield_tx, yield_rx) = std::sync::mpsc::sync_channel::<YieldMsg>(0);
            let task_name = name.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sim-{name}"))
                .stack_size(8 * 1024 * 1024)
                .spawn(move || {
                    // Wait for the first resume before touching anything.
                    if resume_rx.recv().is_err() {
                        return;
                    }
                    SIM_TASK.with(|t| {
                        *t.borrow_mut() = Some(SimTaskCtx {
                            yield_tx: yield_tx.clone(),
                            resume_rx,
                            pending_signals: Vec::new(),
                            pending_spawns: Vec::new(),
                            pending_charge: [0; Work::COUNT],
                            pending_total: 0,
                        })
                    });
                    let caught: Option<String> = if recover {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                            if inject_panic {
                                panic!("injected fault: task `{task_name}` panicked");
                            }
                            body();
                        }))
                        .err()
                        .map(|p| payload_message(p.as_ref()))
                    } else {
                        body();
                        None
                    };
                    // Final yields: flush buffered work, then Finish.
                    SIM_TASK.with(|t| {
                        let mut b = t.borrow_mut();
                        let ctx = b.as_mut().expect("sim ctx");
                        ctx.flush_charge();
                        let msg = YieldMsg {
                            signals: std::mem::take(&mut ctx.pending_signals),
                            spawns: std::mem::take(&mut ctx.pending_spawns),
                            action: Action::Finish(caught),
                        };
                        ctx.yield_tx.send(msg).ok();
                        *b = None;
                    });
                })
                .expect("spawn sim task thread");
            self.handles.push(handle);
            self.tasks[task_ix].state = TaskState::Running(TaskChannels {
                resume_tx,
                yield_rx,
            });
            // Dispatch overhead, plus any injected stall (virtual time).
            self.procs[p].clock += self.config.dispatch_cost;
            if let Some(FaultKind::Stall { units }) = inject {
                self.procs[p].clock += units;
                self.busy[task_ix] += units;
                self.check_deadline(task_ix);
            }
        }
        let TaskState::Running(ch) = &self.tasks[task_ix].state else {
            panic!("stepping non-running task");
        };
        ch.resume_tx.send(()).expect("task thread alive");
        ch.yield_rx.recv().expect("task thread alive")
    }

    fn contention_factor(&self) -> f64 {
        let busy = self
            .procs
            .iter()
            .filter(|p| p.current.is_some())
            .count()
            .max(1);
        1.0 + self.config.contention_alpha * (busy as f64 - 1.0)
    }

    /// Picks an eligible ready task for proc `p` blocked (or idle) with
    /// the given awaited event, honoring the stack rule.
    fn pick_nested(
        &mut self,
        p: usize,
        awaited: Option<(EventId, Option<EventId>)>,
    ) -> Option<(usize, u64)> {
        let mut stack_sigs: Vec<EventId> = Vec::new();
        let mut stack_def = false;
        let mut stack_bar = false;
        for &(t, ..) in &self.procs[p].stack {
            stack_sigs.extend_from_slice(&self.tasks[t].signals);
            stack_def |= self.tasks[t].signals_def_scope;
            stack_bar |= self.tasks[t].signals_barriers;
        }
        if self.procs[p].stack.len() >= 32 {
            return None;
        }
        let mut chosen: Option<PrioKey> = None;
        if let Some((e, hint)) = awaited {
            for (key, (tix, _)) in self.ready.iter() {
                if self.tasks[*tix].signals.contains(&e)
                    || hint.is_some_and(|h| self.tasks[*tix].signals.contains(&h))
                {
                    chosen = Some(*key);
                    break;
                }
            }
        }
        if chosen.is_none() {
            for (key, (tix, _)) in self.ready.iter() {
                if !self.tasks[*tix]
                    .may_wait
                    .intersects(&stack_sigs, stack_def, stack_bar)
                {
                    chosen = Some(*key);
                    break;
                }
            }
        }
        chosen.map(|key| self.ready.remove(&key).expect("chosen"))
    }

    fn run(mut self) -> RunReport {
        // Ingest setup-phase spawns and signals at time 0.
        let (spawns, signals) = {
            let mut sh = self.env.shared.lock();
            (
                std::mem::take(&mut sh.prestart_spawns),
                std::mem::take(&mut sh.prestart_signals),
            )
        };
        self.ensure_wake_len();
        for e in signals {
            self.process_signal(e, 0);
        }
        for t in spawns {
            self.admit(t, 0);
        }

        loop {
            // 1. Fill idle processors (ascending index → deterministic).
            for p in 0..self.procs.len() {
                if self.procs[p].current.is_some() {
                    continue;
                }
                // Resume a suspended task whose event has occurred.
                if let Some(&(t, e, hint)) = self.procs[p].stack.last() {
                    if let Some(wake) = self.wake_time.get(e.index()).copied().flatten() {
                        self.procs[p].stack.pop();
                        self.procs[p].clock = self.procs[p].clock.max(wake);
                        self.procs[p].current = Some(t);
                        continue;
                    }
                    // §2.3.3: barrier waits never reschedule the worker;
                    // under the WorkCrews ablation, no wait does.
                    let is_barrier =
                        self.env.shared.lock().events[e.index()].class == EventClass::Barrier;
                    if !is_barrier && self.config.reschedule_blocked {
                        // Try to nest work under the blocked stack.
                        if let Some((t2, ready_at)) = self.pick_nested(p, Some((e, hint))) {
                            self.procs[p].clock = self.procs[p].clock.max(ready_at);
                            self.procs[p].current = Some(t2);
                        }
                    }
                    continue;
                }
                // Empty stack: take the best ready task.
                if let Some((&key, _)) = self.ready.iter().next() {
                    let (t, ready_at) = self.ready.remove(&key).expect("key");
                    self.procs[p].clock = self.procs[p].clock.max(ready_at);
                    self.procs[p].current = Some(t);
                }
            }

            // 2. Choose the runnable processor with the smallest clock.
            let next = self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.current.is_some())
                .min_by_key(|(ix, p)| (p.clock, *ix))
                .map(|(ix, _)| ix);
            let Some(p) = next else {
                if self.outstanding == 0 {
                    break;
                }
                if self.robustness.recover && self.release_wedge() {
                    continue;
                }
                panic!("virtual-time deadlock: {}", self.deadlock_report());
            };

            // 3. Step it — but first, if the dispatch is about to hit a
            // fatal injected fault and the task is a supervised stream
            // task with retries left, abandon this dispatch (it has run
            // nothing and signaled nothing yet) and re-enqueue a fresh
            // attempt under the `#r{attempt}` fault site.
            let task_ix = self.procs[p].current.expect("runnable");
            let mut inject: Option<FaultKind> = None;
            if matches!(self.tasks[task_ix].state, TaskState::NotStarted(_)) {
                let site = crate::dispatch_site(&self.tasks[task_ix].name, self.attempts[task_ix]);
                inject = self
                    .robustness
                    .plan
                    .as_ref()
                    .and_then(|plan| plan.at(&site));
                let fatal = match inject {
                    Some(FaultKind::Panic) => true,
                    Some(FaultKind::Stall { units }) => {
                        self.robustness.deadline.is_some_and(|d| units > d)
                    }
                    _ => false,
                };
                if fatal
                    && self.robustness.recover
                    && self.tasks[task_ix].kind.stream_retryable()
                    && self.attempts[task_ix]
                        < self.tasks[task_ix]
                            .retry_budget
                            .unwrap_or(self.robustness.max_retries)
                {
                    // Charge the wasted dispatch (a fatal stall is cut
                    // off at the deadline by the watchdog) and requeue.
                    let penalty = match inject {
                        Some(FaultKind::Stall { units }) => {
                            self.robustness.deadline.map_or(units, |d| d.min(units))
                        }
                        _ => 0,
                    };
                    self.procs[p].clock += self.config.dispatch_cost + penalty;
                    self.attempts[task_ix] += 1;
                    self.seq += 1;
                    // Budget-aware requeue: the closer the task is to
                    // exhausting its retry budget, the higher it jumps,
                    // so near-budget retries aren't starved behind
                    // fresh same-class work.
                    let key = crate::task::retry_priority_key(
                        self.tasks[task_ix].kind,
                        self.tasks[task_ix].weight,
                        self.seq,
                        self.attempts[task_ix],
                        self.tasks[task_ix]
                            .retry_budget
                            .unwrap_or(self.robustness.max_retries),
                    );
                    let at = self.procs[p].clock;
                    self.ready.insert(key, (task_ix, at));
                    self.procs[p].current = None;
                    continue;
                }
                self.clean_final[task_ix] = !fatal;
            }
            let slice_start = self.procs[p].clock;
            let msg = self.step_task(p, task_ix, inject);

            // 4. Apply the action.
            match msg.action {
                Action::Charge(lump) => {
                    let factor = self.contention_factor();
                    let mut scaled = 0f64;
                    for (kind_ix, units) in lump.iter().enumerate() {
                        if *units > 0 {
                            self.charges[kind_ix] += units;
                            scaled += *units as f64 * self.config.cost[kind_ix];
                        }
                    }
                    let advance = (scaled * factor).ceil() as u64;
                    self.procs[p].clock += advance.max(1);
                    self.busy[task_ix] += advance.max(1);
                    self.check_deadline(task_ix);
                    self.record_segment(p, task_ix, slice_start);
                }
                Action::Wait(e, hint) => {
                    self.ensure_wake_len();
                    self.record_segment(p, task_ix, slice_start);
                    if let Some(wake) = self.wake_time.get(e.index()).copied().flatten() {
                        // Already occurred: just advance past the wake.
                        self.procs[p].clock = self.procs[p].clock.max(wake);
                        // Task stays current; it is blocked in wait() until
                        // resumed, which happens on its next step.
                    } else {
                        // Genuine block: suspend onto the stack.
                        self.procs[p].stack.push((task_ix, e, hint));
                        self.procs[p].current = None;
                    }
                }
                Action::Finish(caught) => {
                    self.record_segment(p, task_ix, slice_start);
                    self.tasks[task_ix].state = TaskState::Done;
                    self.tasks_run += 1;
                    self.outstanding -= 1;
                    if let Some(msg) = caught {
                        let name = self.tasks[task_ix].name.clone();
                        self.panics.push((name, msg));
                    } else if self.attempts[task_ix] > 0 && self.clean_final[task_ix] {
                        let name = self.tasks[task_ix].name.clone();
                        self.recoveries.push((name, self.attempts[task_ix]));
                    }
                    // Backstop-signal the task's declared signals (also
                    // for caught-panicked tasks — that is what keeps
                    // their dependents and the merge runnable); injected
                    // lost signals are dropped here too.
                    let at = self.procs[p].clock;
                    let sigs = self.tasks[task_ix].signals.clone();
                    for e in sigs {
                        if self.lost_event(e) {
                            continue;
                        }
                        let already = self.env.shared.lock().events[e.index()].signaled;
                        if !already {
                            self.env.shared.lock().events[e.index()].signaled = true;
                        }
                        self.process_signal(e, at);
                    }
                    self.procs[p].current = None;
                }
            }

            // 5. Publish this slice's signals and spawns at the slice-end
            //    clock.
            let at = self.procs[p].clock;
            for e in msg.signals {
                self.process_signal(e, at);
            }
            for t in msg.spawns {
                self.admit(t, at);
            }
        }

        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        let makespan = self.procs.iter().map(|p| p.clock).max().unwrap_or(0);
        RunReport {
            virtual_time: Some(makespan),
            wall_micros: 0,
            trace: self.trace,
            tasks_run: self.tasks_run,
            charges: self.charges,
            task_panics: self.panics,
            stalls: self.stalls,
            recoveries: self.recoveries,
        }
    }

    /// Renders the wait-for graph of the wedged state: suspended tasks
    /// (with their awaited event and co-signaler hint), gated pending
    /// tasks, and every unfinished task's declared signals. Names the
    /// cycle when one exists; otherwise lists the blocked tasks (a
    /// scheduling wedge — e.g. runnable resolvers that no processor is
    /// eligible to take).
    fn deadlock_report(&self) -> String {
        let mut g = crate::wfg::WaitForGraph::new();
        {
            let sh = self.env.shared.lock();
            for (ix, ev) in sh.events.iter().enumerate() {
                g.name_event(EventId(ix as u32), &ev.name);
            }
        }
        for proc in &self.procs {
            for &(t, e, hint) in &proc.stack {
                let mut awaits = vec![e];
                if let Some(h) = hint {
                    awaits.push(h);
                }
                g.add_waiter(self.tasks[t].name.clone(), awaits);
            }
        }
        for pend in &self.pending {
            g.add_waiter(self.tasks[pend.task_ix].name.clone(), pend.prereqs.clone());
        }
        for task in &self.tasks {
            if !matches!(task.state, TaskState::Done) {
                for &e in &task.signals {
                    g.add_signaler(e, task.name.clone());
                }
            }
        }
        match g.find_cycle() {
            Some(cycle) => format!(
                "{} tasks outstanding, none runnable; wait-for cycle: {cycle}",
                self.outstanding
            ),
            None => format!(
                "{} tasks outstanding, none runnable; no wait-for cycle (scheduling wedge); blocked: {}",
                self.outstanding,
                g.describe_waiters()
            ),
        }
    }

    fn record_segment(&mut self, p: usize, task_ix: usize, start: u64) {
        let end = self.procs[p].clock;
        if end <= start {
            return;
        }
        let t = &self.tasks[task_ix];
        // Merge with a contiguous previous segment of the same task.
        if let Some(last) = self.trace.segments.last_mut() {
            if last.proc == p as u32 && last.end == start && last.name == t.name {
                last.end = end;
                return;
            }
        }
        self.trace.segments.push(Segment {
            proc: p as u32,
            kind: t.kind,
            name: t.name.clone(),
            start,
            end,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn charge_task(
        env: &Arc<SimEnv>,
        name: &str,
        kind: TaskKind,
        units: u64,
        counter: Arc<AtomicUsize>,
    ) -> TaskDesc {
        let env = Arc::clone(env);
        TaskDesc::new(
            name,
            kind,
            Box::new(move || {
                env.charge(Work::CodeGen, units);
                counter.fetch_add(1, Ordering::Relaxed);
            }),
        )
    }

    #[test]
    fn single_proc_serializes_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        let report = run_sim(SimConfig::new(1), |env| {
            for i in 0..4 {
                spawn_prestart(
                    env,
                    charge_task(
                        env,
                        &format!("t{i}"),
                        TaskKind::ShortCodeGen,
                        100,
                        Arc::clone(&counter),
                    ),
                );
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(report.virtual_time, Some(400));
    }

    #[test]
    fn two_procs_halve_the_makespan() {
        let counter = Arc::new(AtomicUsize::new(0));
        let report = run_sim(SimConfig::new(2), |env| {
            for i in 0..4 {
                spawn_prestart(
                    env,
                    charge_task(
                        env,
                        &format!("t{i}"),
                        TaskKind::ShortCodeGen,
                        100,
                        Arc::clone(&counter),
                    ),
                );
            }
        });
        assert_eq!(report.virtual_time, Some(200));
    }

    #[test]
    fn contention_inflates_parallel_work() {
        let mk = |alpha: f64| {
            let mut cfg = SimConfig::new(2);
            cfg.contention_alpha = alpha;
            run_sim(cfg, |env| {
                for i in 0..2 {
                    let env2 = Arc::clone(env);
                    spawn_prestart(
                        env,
                        TaskDesc::new(
                            format!("t{i}"),
                            TaskKind::ShortCodeGen,
                            Box::new(move || env2.charge(Work::CodeGen, 100)),
                        ),
                    );
                }
            })
            .virtual_time
            .expect("sim time")
        };
        let free = mk(0.0);
        let contended = mk(0.5);
        assert_eq!(free, 100);
        assert!(contended > free, "{contended} vs {free}");
    }

    #[test]
    fn wait_blocks_until_virtual_signal() {
        // waiter (10 units, then wait) + signaler (500 units, then signal):
        // waiter finishes right after the signal at t=500.
        let report = run_sim(SimConfig::new(2), |env| {
            let e = {
                let env: &Arc<SimEnv> = env;
                env.new_event(EventClass::Handled)
            };
            let env1 = Arc::clone(env);
            let mut w = TaskDesc::new(
                "waiter",
                TaskKind::Lexor,
                Box::new(move || {
                    env1.charge(Work::Parse, 10);
                    env1.wait(e);
                    env1.charge(Work::Parse, 10);
                }),
            );
            w.may_wait = WaitSet {
                events: vec![e],
                all_def_scopes: false,
                any_barrier: false,
            };
            spawn_prestart(env, w);
            let env2 = Arc::clone(env);
            let mut s = TaskDesc::new(
                "signaler",
                TaskKind::ShortCodeGen,
                Box::new(move || {
                    env2.charge(Work::CodeGen, 500);
                    env2.signal(e);
                }),
            );
            s.signals = vec![e];
            spawn_prestart(env, s);
        });
        assert_eq!(report.virtual_time, Some(510));
    }

    #[test]
    fn single_proc_nests_signaler_under_waiter() {
        // With one processor the waiter blocks and the worker must nest
        // the signaler (Supervisors behavior), not deadlock.
        let report = run_sim(SimConfig::new(1), |env| {
            let e = env.new_event(EventClass::Handled);
            let env1 = Arc::clone(env);
            let mut w = TaskDesc::new(
                "waiter",
                TaskKind::Lexor,
                Box::new(move || {
                    env1.charge(Work::Parse, 10);
                    env1.wait(e);
                    env1.charge(Work::Parse, 10);
                }),
            );
            w.may_wait = WaitSet {
                events: vec![e],
                all_def_scopes: false,
                any_barrier: false,
            };
            spawn_prestart(env, w);
            let env2 = Arc::clone(env);
            let mut s = TaskDesc::new(
                "signaler",
                TaskKind::ShortCodeGen,
                Box::new(move || {
                    env2.charge(Work::CodeGen, 100);
                    env2.signal(e);
                }),
            );
            s.signals = vec![e];
            spawn_prestart(env, s);
        });
        assert_eq!(report.virtual_time, Some(120));
        assert_eq!(report.tasks_run, 2);
    }

    #[test]
    fn avoided_prereq_delays_start() {
        let report = run_sim(SimConfig::new(2), |env| {
            let gate = env.new_event(EventClass::Avoided);
            let env1 = Arc::clone(env);
            let mut gated = TaskDesc::new(
                "gated",
                TaskKind::Lexor,
                Box::new(move || env1.charge(Work::Lex, 10)),
            );
            gated.prereqs = vec![gate];
            spawn_prestart(env, gated);
            let env2 = Arc::clone(env);
            let mut opener = TaskDesc::new(
                "opener",
                TaskKind::ShortCodeGen,
                Box::new(move || {
                    env2.charge(Work::CodeGen, 300);
                    env2.signal(gate);
                }),
            );
            opener.signals = vec![gate];
            spawn_prestart(env, opener);
        });
        // gated starts at 300 on the other processor, ends 310.
        assert_eq!(report.virtual_time, Some(310));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            run_sim(SimConfig::firefly(4), |env| {
                let e = env.new_event(EventClass::Handled);
                for i in 0..20u64 {
                    let env2 = Arc::clone(env);
                    let mut t = TaskDesc::new(
                        format!("t{i}"),
                        if i % 3 == 0 {
                            TaskKind::ProcParse
                        } else {
                            TaskKind::ShortCodeGen
                        },
                        Box::new(move || {
                            env2.charge(Work::CodeGen, 50 + i * 7);
                            if i == 11 {
                                env2.signal(e);
                            } else if i % 5 == 0 {
                                env2.wait(e);
                                env2.charge(Work::CodeGen, 5);
                            }
                        }),
                    );
                    t.weight = i;
                    if i == 11 {
                        t.signals = vec![e];
                    } else if i % 5 == 0 {
                        t.may_wait = WaitSet {
                            events: vec![e],
                            all_def_scopes: false,
                            any_barrier: false,
                        };
                    }
                    spawn_prestart(env, t);
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.virtual_time, b.virtual_time);
        assert_eq!(a.trace.segments, b.trace.segments);
    }

    #[test]
    fn tasks_spawning_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        let report = run_sim(SimConfig::new(3), |env| {
            let env2 = Arc::clone(env);
            let c = Arc::clone(&counter);
            spawn_prestart(
                env,
                TaskDesc::new(
                    "root",
                    TaskKind::Lexor,
                    Box::new(move || {
                        env2.charge(Work::Lex, 10);
                        for i in 0..5 {
                            let c2 = Arc::clone(&c);
                            let env3 = Arc::clone(&env2);
                            env2.spawn(TaskDesc::new(
                                format!("child{i}"),
                                TaskKind::ShortCodeGen,
                                Box::new(move || {
                                    env3.charge(Work::CodeGen, 100);
                                    c2.fetch_add(1, Ordering::Relaxed);
                                }),
                            ));
                        }
                    }),
                ),
            );
        });
        assert_eq!(counter.load(Ordering::Relaxed), 5);
        // 10 units of root, then 5×100 across 3 procs: 2+2+1 → 210.
        assert_eq!(report.virtual_time, Some(210));
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::task::{TaskDesc, TaskKind, WaitSet};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// With rescheduling on (Supervisors), a single processor nests the
    /// signaler under the blocked waiter; with it off (plain WorkCrews),
    /// the same graph deadlocks — the §2.3.2 distinction in miniature.
    #[test]
    #[should_panic(expected = "virtual-time deadlock")]
    fn workcrews_mode_deadlocks_where_supervisors_nests() {
        let mut cfg = SimConfig::new(1);
        cfg.reschedule_blocked = false;
        run_sim(cfg, |env| {
            let e = env.new_event(EventClass::Handled);
            let env1 = Arc::clone(env);
            let mut w = TaskDesc::new(
                "waiter",
                TaskKind::Lexor,
                Box::new(move || {
                    env1.charge(Work::Parse, 10);
                    env1.wait(e);
                }),
            );
            w.may_wait = WaitSet {
                events: vec![e],
                all_def_scopes: false,
                any_barrier: false,
            };
            spawn_prestart(env, w);
            let env2 = Arc::clone(env);
            let mut s = TaskDesc::new(
                "signaler",
                TaskKind::ShortCodeGen,
                Box::new(move || env2.signal(e)),
            );
            s.signals = vec![e];
            spawn_prestart(env, s);
        });
    }

    /// Same graph with two processors: WorkCrews works (the second
    /// processor runs the signaler), just without nesting.
    #[test]
    fn workcrews_mode_works_with_enough_processors() {
        let done = Arc::new(AtomicUsize::new(0));
        let mut cfg = SimConfig::new(2);
        cfg.reschedule_blocked = false;
        let d = Arc::clone(&done);
        let report = run_sim(cfg, move |env| {
            let e = env.new_event(EventClass::Handled);
            let env1 = Arc::clone(env);
            let d1 = Arc::clone(&d);
            let mut w = TaskDesc::new(
                "waiter",
                TaskKind::Lexor,
                Box::new(move || {
                    env1.charge(Work::Parse, 10);
                    env1.wait(e);
                    d1.fetch_add(1, Ordering::Relaxed);
                }),
            );
            w.may_wait = WaitSet {
                events: vec![e],
                all_def_scopes: false,
                any_barrier: false,
            };
            spawn_prestart(env, w);
            let env2 = Arc::clone(env);
            let d2 = Arc::clone(&d);
            let mut s = TaskDesc::new(
                "signaler",
                TaskKind::ShortCodeGen,
                Box::new(move || {
                    env2.charge(Work::CodeGen, 100);
                    env2.signal(e);
                    d2.fetch_add(1, Ordering::Relaxed);
                }),
            );
            s.signals = vec![e];
            spawn_prestart(env, s);
        });
        assert_eq!(done.load(Ordering::Relaxed), 2);
        assert_eq!(report.tasks_run, 2);
    }

    /// Barrier waits never nest even under Supervisors: the worker parks
    /// and the other processor makes progress.
    #[test]
    fn barrier_waits_do_not_nest() {
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        run_sim(SimConfig::new(2), move |env| {
            let barrier = env.new_event(EventClass::Barrier);
            let env1 = Arc::clone(env);
            let o1 = Arc::clone(&o);
            let mut consumer = TaskDesc::new(
                "consumer",
                TaskKind::Splitter,
                Box::new(move || {
                    env1.charge(Work::Split, 5);
                    env1.wait(barrier);
                    o1.lock().push("consumer-after-barrier");
                }),
            );
            consumer.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: false,
                any_barrier: true,
            };
            spawn_prestart(env, consumer);
            let env2 = Arc::clone(env);
            let o2 = Arc::clone(&o);
            let mut producer = TaskDesc::new(
                "producer",
                TaskKind::ShortCodeGen, // lower priority than consumer
                Box::new(move || {
                    env2.charge(Work::CodeGen, 500);
                    o2.lock().push("producer-signals");
                    env2.signal(barrier);
                }),
            );
            producer.signals = vec![barrier];
            producer.signals_barriers = true;
            spawn_prestart(env, producer);
        });
        assert_eq!(
            *order.lock(),
            vec!["producer-signals", "consumer-after-barrier"]
        );
    }

    /// An injected event cycle is reported as a *named* wait-for cycle:
    /// the simulator is deterministic, so the whole rendering is exact.
    #[test]
    #[should_panic(expected = "wait-for cycle: A -[needs-B]-> B -[needs-A]-> A")]
    fn injected_event_cycle_is_named_in_the_panic() {
        run_sim(SimConfig::new(2), |env| {
            let ea = env.new_event_named(EventClass::Handled, "needs-A");
            let eb = env.new_event_named(EventClass::Handled, "needs-B");
            for (name, my, other) in [("A", ea, eb), ("B", eb, ea)] {
                let env2 = Arc::clone(env);
                let mut t = TaskDesc::new(
                    name,
                    TaskKind::ProcParse,
                    Box::new(move || {
                        env2.wait(other);
                        env2.signal(my);
                    }),
                );
                t.signals = vec![my];
                t.may_wait = WaitSet {
                    events: vec![other],
                    all_def_scopes: false,
                    any_barrier: false,
                };
                spawn_prestart(env, t);
            }
        });
    }

    /// A gated task whose avoided prereq nobody signals: no cycle, but
    /// the wedge report names the blocked task and the event it awaits.
    #[test]
    #[should_panic(expected = "gated awaits [never-signaled]")]
    fn unsignaled_gate_names_the_blocked_task() {
        run_sim(SimConfig::new(1), |env| {
            let gate = env.new_event_named(EventClass::Avoided, "never-signaled");
            let mut t = TaskDesc::new("gated", TaskKind::Lexor, Box::new(|| {}));
            t.prereqs = vec![gate];
            spawn_prestart(env, t);
        });
    }

    /// Recover mode: an injected task panic is caught, its declared
    /// signals still fire, and the run completes with the panic in the
    /// report.
    #[test]
    fn sim_recovered_panic_completes_run() {
        let plan = Arc::new(FaultPlan::single("task:victim", FaultKind::Panic));
        let ran = Arc::new(AtomicUsize::new(0));
        let report = run_sim_with(
            SimConfig::new(2),
            Robustness::degrading(Some(plan), None),
            |env| {
                let done = env.new_event_named(EventClass::Avoided, "victim-done");
                let mut victim = TaskDesc::new(
                    "victim",
                    TaskKind::ProcParse,
                    Box::new(|| unreachable!("injection fires before the body")),
                );
                victim.signals = vec![done];
                spawn_prestart(env, victim);
                let r = Arc::clone(&ran);
                let mut dep = TaskDesc::new(
                    "dependent",
                    TaskKind::ShortCodeGen,
                    Box::new(move || {
                        r.fetch_add(1, Ordering::Relaxed);
                    }),
                );
                dep.prereqs = vec![done];
                spawn_prestart(env, dep);
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 1, "dependent ran");
        assert_eq!(report.task_panics.len(), 1);
        assert_eq!(report.task_panics[0].0, "victim");
        assert!(report.task_panics[0].1.contains("injected fault"));
    }

    /// Recover mode: a lost signal wedges the waiter; the watchdog
    /// force-releases it and records the diagnosis instead of panicking.
    #[test]
    fn sim_lost_signal_is_force_released() {
        let plan = Arc::new(FaultPlan::single("signal:gate", FaultKind::LoseSignal));
        let post = Arc::new(AtomicUsize::new(0));
        let report = run_sim_with(
            SimConfig::new(2),
            Robustness::degrading(Some(plan), None),
            |env| {
                let gate = env.new_event_named(EventClass::Handled, "gate");
                let env1 = Arc::clone(env);
                let p = Arc::clone(&post);
                let mut waiter = TaskDesc::new(
                    "waiter",
                    TaskKind::ProcParse,
                    Box::new(move || {
                        env1.wait(gate);
                        p.fetch_add(1, Ordering::Relaxed);
                    }),
                );
                waiter.may_wait = WaitSet {
                    events: vec![gate],
                    all_def_scopes: false,
                    any_barrier: false,
                };
                spawn_prestart(env, waiter);
                let env2 = Arc::clone(env);
                let mut signaler = TaskDesc::new(
                    "signaler",
                    TaskKind::ShortCodeGen,
                    Box::new(move || env2.signal(gate)),
                );
                signaler.signals = vec![gate];
                spawn_prestart(env, signaler);
            },
        );
        assert_eq!(post.load(Ordering::Relaxed), 1, "waiter released");
        assert!(
            report.stalls.iter().any(|s| s.contains("released wedge")),
            "wedge release must be diagnosed; got: {:?}",
            report.stalls
        );
    }

    /// An injected stall advances virtual time and trips the virtual
    /// deadline watchdog deterministically.
    #[test]
    fn sim_injected_stall_trips_virtual_deadline() {
        let plan = Arc::new(FaultPlan::single(
            "task:stalling",
            FaultKind::Stall { units: 5_000 },
        ));
        let report = run_sim_with(
            SimConfig::new(1),
            Robustness::degrading(Some(plan), Some(1_000)),
            |env| {
                let env1 = Arc::clone(env);
                spawn_prestart(
                    env,
                    TaskDesc::new(
                        "stalling",
                        TaskKind::ProcParse,
                        Box::new(move || env1.charge(Work::Parse, 10)),
                    ),
                );
            },
        );
        assert_eq!(report.tasks_run, 1);
        assert_eq!(report.virtual_time, Some(5_010));
        assert!(
            report
                .stalls
                .iter()
                .any(|s| s.contains("stalling") && s.contains("deadline")),
            "stall diagnosis expected; got: {:?}",
            report.stalls
        );
    }

    /// Supervised recovery: a transient fault (exact-match site, so it
    /// fires on attempt 0 only) is retried; the retried attempt runs
    /// the body, signals dependents, and leaves no degradation record.
    #[test]
    fn sim_transient_fault_is_retried_and_recovers() {
        let run = || {
            let plan = Arc::new(FaultPlan::single("task:victim", FaultKind::Panic));
            let ran = Arc::new(AtomicUsize::new(0));
            let dep_ran = Arc::new(AtomicUsize::new(0));
            let report = run_sim_with(
                SimConfig::new(2),
                Robustness::supervised(Some(Arc::clone(&plan)), None, 2),
                |env| {
                    let done = env.new_event_named(EventClass::Avoided, "victim-done");
                    let r = Arc::clone(&ran);
                    let env1 = Arc::clone(env);
                    let mut victim = TaskDesc::new(
                        "victim",
                        TaskKind::ProcParse,
                        Box::new(move || {
                            env1.charge(Work::Parse, 10);
                            r.fetch_add(1, Ordering::Relaxed);
                        }),
                    );
                    victim.signals = vec![done];
                    spawn_prestart(env, victim);
                    let d = Arc::clone(&dep_ran);
                    let mut dep = TaskDesc::new(
                        "dependent",
                        TaskKind::ShortCodeGen,
                        Box::new(move || {
                            d.fetch_add(1, Ordering::Relaxed);
                        }),
                    );
                    dep.prereqs = vec![done];
                    spawn_prestart(env, dep);
                },
            );
            assert_eq!(ran.load(Ordering::Relaxed), 1, "body ran exactly once");
            assert_eq!(dep_ran.load(Ordering::Relaxed), 1, "dependent ran");
            assert!(report.task_panics.is_empty(), "{:?}", report.task_panics);
            assert!(report.stalls.is_empty(), "{:?}", report.stalls);
            assert_eq!(report.recoveries, vec![("victim".to_string(), 1)]);
            assert!(plan.fired().iter().any(|f| f.contains("task:victim")));
            report.virtual_time
        };
        assert_eq!(run(), run(), "recovery is virtual-time deterministic");
    }

    /// A persistent fault (trailing glob matches every `#r{k}` retry
    /// site) exhausts the retry budget and then degrades exactly as an
    /// unsupervised fault would.
    #[test]
    fn sim_persistent_fault_exhausts_retries_and_degrades() {
        let plan = Arc::new(FaultPlan::single("task:victim*", FaultKind::Panic));
        let report = run_sim_with(
            SimConfig::new(1),
            Robustness::supervised(Some(Arc::clone(&plan)), None, 2),
            |env| {
                spawn_prestart(
                    env,
                    TaskDesc::new(
                        "victim",
                        TaskKind::ProcParse,
                        Box::new(|| unreachable!("every attempt faults")),
                    ),
                );
            },
        );
        assert_eq!(report.task_panics.len(), 1);
        assert_eq!(report.task_panics[0].0, "victim");
        assert!(report.recoveries.is_empty());
        let fired = plan.fired();
        assert!(
            fired.iter().any(|f| f.contains("task:victim#r2")),
            "all retry attempts were dispatched: {fired:?}"
        );
    }

    /// A stall long enough to blow the virtual deadline is fatal and
    /// retried; the wasted dispatch is charged (cut off at the
    /// deadline) and no stall is diagnosed.
    #[test]
    fn sim_fatal_stall_is_retried_and_charged_up_to_deadline() {
        let plan = Arc::new(FaultPlan::single(
            "task:victim",
            FaultKind::Stall { units: 5_000 },
        ));
        let report = run_sim_with(
            SimConfig::new(1),
            Robustness::supervised(Some(plan), Some(1_000), 1),
            |env| {
                let env1 = Arc::clone(env);
                spawn_prestart(
                    env,
                    TaskDesc::new(
                        "victim",
                        TaskKind::ProcParse,
                        Box::new(move || env1.charge(Work::Parse, 10)),
                    ),
                );
            },
        );
        assert_eq!(report.recoveries, vec![("victim".to_string(), 1)]);
        assert!(report.stalls.is_empty(), "{:?}", report.stalls);
        assert_eq!(
            report.virtual_time,
            Some(1_010),
            "deadline-truncated stall penalty + clean attempt's work"
        );
    }

    /// Structural tasks (not stream-retryable) degrade immediately even
    /// with a retry budget: re-running them would replay spawns already
    /// observed by the rest of the run.
    #[test]
    fn sim_structural_tasks_are_not_retried() {
        let plan = Arc::new(FaultPlan::single("task:lexor", FaultKind::Panic));
        let report = run_sim_with(
            SimConfig::new(1),
            Robustness::supervised(Some(plan), None, 3),
            |env| {
                spawn_prestart(
                    env,
                    TaskDesc::new("lexor", TaskKind::Lexor, Box::new(|| {})),
                );
            },
        );
        assert_eq!(report.task_panics.len(), 1);
        assert!(report.recoveries.is_empty());
    }

    /// Budget-aware retry scheduling: a retried stream requeues with a
    /// rank boost, so a near-budget retry runs ahead of fresh same-class
    /// work instead of going to the back of its class. The trace pins
    /// the order: the victim's (successful) retry attempt runs before
    /// every competitor spawned after it — with the original-priority
    /// requeue it would run last.
    #[test]
    fn sim_near_budget_retry_jumps_ahead_of_fresh_same_class_work() {
        let plan = Arc::new(FaultPlan::single("task:victim", FaultKind::Panic));
        let report = run_sim_with(
            SimConfig::new(1),
            Robustness::supervised(Some(plan), None, 1),
            |env| {
                let env1 = Arc::clone(env);
                spawn_prestart(
                    env,
                    TaskDesc::new(
                        "victim",
                        TaskKind::ShortCodeGen,
                        Box::new(move || env1.charge(Work::CodeGen, 10)),
                    ),
                );
                for i in 0..3 {
                    let envc = Arc::clone(env);
                    spawn_prestart(
                        env,
                        TaskDesc::new(
                            format!("comp{i}"),
                            TaskKind::ShortCodeGen,
                            Box::new(move || envc.charge(Work::CodeGen, 10)),
                        ),
                    );
                }
            },
        );
        assert_eq!(report.recoveries, vec![("victim".to_string(), 1)]);
        let seg = |name: &str| {
            report
                .trace
                .segments
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("no segment for {name}"))
        };
        let victim = seg("victim");
        for i in 0..3 {
            let comp = seg(&format!("comp{i}"));
            assert!(
                victim.start < comp.start,
                "boosted retry must run before comp{i} \
                 (victim at {}, comp{i} at {})",
                victim.start,
                comp.start
            );
        }
    }

    /// The hint mechanism works in the simulator too.
    #[test]
    fn sim_hint_finds_undeclared_signaler() {
        let mut cfg = SimConfig::new(1);
        cfg.reschedule_blocked = true;
        let report = run_sim(cfg, |env| {
            let dynamic_ev = env.new_event(EventClass::Handled);
            let scope_ev = env.new_event(EventClass::Handled);
            let env1 = Arc::clone(env);
            let mut w = TaskDesc::new(
                "waiter",
                TaskKind::DefModParse,
                Box::new(move || {
                    env1.charge(Work::DeclAnalyze, 10);
                    env1.wait_hinted(dynamic_ev, Some(scope_ev));
                }),
            );
            w.signals_def_scope = true;
            w.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: true,
                any_barrier: false,
            };
            spawn_prestart(env, w);
            let env2 = Arc::clone(env);
            let mut resolver = TaskDesc::new(
                "resolver",
                TaskKind::DefModParse,
                Box::new(move || {
                    env2.charge(Work::DeclAnalyze, 20);
                    env2.signal(dynamic_ev);
                    env2.signal(scope_ev);
                }),
            );
            resolver.signals = vec![scope_ev];
            resolver.signals_def_scope = true;
            resolver.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: true,
                any_barrier: false,
            };
            spawn_prestart(env, resolver);
        });
        assert_eq!(report.tasks_run, 2);
    }
}
