//! Tasks: the atomic unit of parallelism (paper §2.3.1).
//!
//! Each compiler stream is partitioned into 2–5 tasks (Figure 5). Tasks
//! declare, at creation time:
//!
//! * their **kind** — which fixes their priority-queue position per the
//!   §2.3.4 search order (Lexor first, … , long codegen before short);
//! * their **prereqs** — the *avoided* events that must occur before the
//!   task may be assigned to a worker at all;
//! * their **signals** and **may-wait set** — used by the §2.3.4
//!   stack-eligibility rule: a blocked worker may only nest a task that
//!   cannot wait on an event that would be signaled by a task suspended
//!   beneath it on the same worker (otherwise deadlock).

use ccm2_support::ids::EventId;

/// The priority classes of paper §2.3.4, in exactly the queue-search
/// order listed there.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TaskKind {
    /// 1. Lexor tasks.
    Lexor,
    /// 2. The splitter task.
    Splitter,
    /// Cache-splice tasks: an incremental-cache hit replaces a stream's
    /// parse + codegen tasks with one cheap splice feeding the cached
    /// unit into the merge. High priority (just below the splitter) so
    /// the scope-completion events it signals unblock DKY waiters as
    /// early as possible.
    CacheSplice,
    /// 3. Importer tasks.
    Importer,
    /// 4. Definition-module parser / declarations-analyzer tasks.
    DefModParse,
    /// 5. The (main) module parser / declarations-analyzer task.
    ModuleParse,
    /// 6. Procedure parser / declarations-analyzer tasks.
    ProcParse,
    /// 7. Source-level dataflow-analysis (lint) tasks: between statement
    ///    analysis and code generation in the §2.3.4 queue order.
    Analyze,
    /// 8. Long procedure statement-analyzer / code-generator tasks.
    LongCodeGen,
    /// 9. Short procedure statement-analyzer / code-generator tasks.
    ShortCodeGen,
    /// The merge task (tiny; lowest priority).
    Merge,
}

impl TaskKind {
    /// All kinds in priority order.
    pub const ALL: [TaskKind; 11] = [
        TaskKind::Lexor,
        TaskKind::Splitter,
        TaskKind::CacheSplice,
        TaskKind::Importer,
        TaskKind::DefModParse,
        TaskKind::ModuleParse,
        TaskKind::ProcParse,
        TaskKind::Analyze,
        TaskKind::LongCodeGen,
        TaskKind::ShortCodeGen,
        TaskKind::Merge,
    ];

    /// Queue rank (0 = highest priority).
    pub fn rank(&self) -> usize {
        Self::ALL
            .iter()
            .position(|k| k == self)
            .expect("known kind")
    }

    /// Whether a fatally faulted dispatch of this kind may be retried
    /// by the supervised-recovery plane. Per-stream tasks qualify: they
    /// are independent of sibling streams and — because faults fire at
    /// dispatch, before the body runs — a fresh attempt restarts the
    /// stream from scratch with no partial state to discard. Structural
    /// tasks (Lexor, Splitter, Importer, parsers of whole modules, the
    /// Merge) do not: re-running them would replay spawns and signals
    /// already observed by the rest of the run.
    pub fn stream_retryable(&self) -> bool {
        matches!(
            self,
            TaskKind::ProcParse
                | TaskKind::Analyze
                | TaskKind::LongCodeGen
                | TaskKind::ShortCodeGen
        )
    }

    /// Short label for traces (WatchTool rendering).
    pub fn label(&self) -> &'static str {
        match self {
            TaskKind::Lexor => "lex",
            TaskKind::Splitter => "split",
            TaskKind::CacheSplice => "splice",
            TaskKind::Importer => "import",
            TaskKind::DefModParse => "defparse",
            TaskKind::ModuleParse => "modparse",
            TaskKind::ProcParse => "procparse",
            TaskKind::Analyze => "analyze",
            TaskKind::LongCodeGen => "codegen+",
            TaskKind::ShortCodeGen => "codegen",
            TaskKind::Merge => "merge",
        }
    }
}

/// The set of events a task might block on, declared conservatively at
/// creation (input to the stack-eligibility rule).
#[derive(Clone, Debug, Default)]
pub struct WaitSet {
    /// Specific events (ancestor-scope completions).
    pub events: Vec<EventId>,
    /// The task may wait on *any* definition-module scope completion
    /// (qualified names / FROM imports can reach every interface).
    pub all_def_scopes: bool,
    /// The task may park on token-block barrier events (stream
    /// consumers: parsers, the splitter, importers).
    pub any_barrier: bool,
}

impl WaitSet {
    /// A task that never blocks (Lexor tasks — §2.3.3 relies on this).
    pub fn none() -> WaitSet {
        WaitSet::default()
    }

    /// Returns `true` if this wait-set might include an event that only
    /// the described signaler-set can produce.
    pub fn intersects(
        &self,
        signals: &[EventId],
        signals_def_scope: bool,
        signals_barriers: bool,
    ) -> bool {
        (self.all_def_scopes && signals_def_scope)
            || (self.any_barrier && signals_barriers)
            || self.events.iter().any(|e| signals.contains(e))
    }
}

/// The work a task performs.
pub type TaskBody = Box<dyn FnOnce() + Send + 'static>;

/// A schedulable task.
pub struct TaskDesc {
    /// Display name (`Lexor(Main)`, `CodeGen(M.Sort)` …).
    pub name: String,
    /// Priority class.
    pub kind: TaskKind,
    /// Avoided events (§2.3.3): the task is not placed on the ready queue
    /// until all have occurred.
    pub prereqs: Vec<EventId>,
    /// Events this task will signal before finishing.
    pub signals: Vec<EventId>,
    /// Whether one of its signals is a definition-module scope completion.
    pub signals_def_scope: bool,
    /// Whether this task produces token blocks (signals barrier events):
    /// Lexor and Splitter tasks.
    pub signals_barriers: bool,
    /// Conservative set of events the task might block on.
    pub may_wait: WaitSet,
    /// Size estimate — long code-generation tasks are scheduled before
    /// short ones to avoid the sequential tail (§2.3.4).
    pub weight: u64,
    /// Per-task retry budget: when set, this task may be re-dispatched
    /// after a fatal fault at most this many times, overriding the
    /// executor-wide `max_stream_retries` (0 pins the task to a single
    /// attempt even when the global budget allows retries).
    pub retry_budget: Option<u32>,
    /// The body. Runs exactly once on some worker.
    pub body: TaskBody,
}

impl std::fmt::Debug for TaskDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskDesc")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("prereqs", &self.prereqs)
            .field("signals", &self.signals)
            .field("weight", &self.weight)
            .finish_non_exhaustive()
    }
}

impl TaskDesc {
    /// Creates a minimal task with no events and default weight.
    pub fn new(name: impl Into<String>, kind: TaskKind, body: TaskBody) -> TaskDesc {
        TaskDesc {
            name: name.into(),
            kind,
            prereqs: Vec::new(),
            signals: Vec::new(),
            signals_def_scope: false,
            signals_barriers: false,
            may_wait: WaitSet::none(),
            weight: 0,
            retry_budget: None,
            body,
        }
    }
}

/// Priority ordering key: kind rank ascending, weight descending,
/// insertion order ascending. Lower keys are popped first.
pub fn priority_key(kind: TaskKind, weight: u64, seq: u64) -> (usize, std::cmp::Reverse<u64>, u64) {
    (kind.rank(), std::cmp::Reverse(weight), seq)
}

/// Priority key for a supervised-retry requeue: the original key with a
/// budget-aware rank boost. A retried stream that requeues at its
/// original priority sits behind every queued task of its class, and a
/// near-budget retry can starve there until its deadline lapses —
/// wasting the attempts already charged for it. Each consumed attempt
/// therefore lifts the task one rank; a retry on its *last* budgeted
/// attempt jumps to just below [`TaskKind::CacheSplice`], ahead of all
/// ordinary parse/analyze/codegen work. Structural tasks (Lexor,
/// Splitter, CacheSplice) always keep absolute priority — a retry never
/// preempts the tasks whose signals the rest of the run is gated on.
pub fn retry_priority_key(
    kind: TaskKind,
    weight: u64,
    seq: u64,
    attempt: u32,
    budget: u32,
) -> (usize, std::cmp::Reverse<u64>, u64) {
    let floor = TaskKind::CacheSplice.rank() + 1;
    let remaining = budget.saturating_sub(attempt);
    let rank = if remaining == 0 {
        floor // last chance: ahead of everything non-structural
    } else {
        kind.rank().saturating_sub(attempt as usize).max(floor)
    };
    (rank, std::cmp::Reverse(weight), seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_ranks_follow_paper_order() {
        assert!(TaskKind::Lexor.rank() < TaskKind::Splitter.rank());
        assert!(TaskKind::Splitter.rank() < TaskKind::CacheSplice.rank());
        assert!(TaskKind::CacheSplice.rank() < TaskKind::Importer.rank());
        assert!(TaskKind::Importer.rank() < TaskKind::DefModParse.rank());
        assert!(TaskKind::DefModParse.rank() < TaskKind::ModuleParse.rank());
        assert!(TaskKind::ModuleParse.rank() < TaskKind::ProcParse.rank());
        assert!(TaskKind::ProcParse.rank() < TaskKind::Analyze.rank());
        assert!(TaskKind::Analyze.rank() < TaskKind::LongCodeGen.rank());
        assert!(TaskKind::LongCodeGen.rank() < TaskKind::ShortCodeGen.rank());
    }

    #[test]
    fn long_codegen_pops_before_short_weight() {
        let a = priority_key(TaskKind::LongCodeGen, 10, 5);
        let b = priority_key(TaskKind::LongCodeGen, 100, 6);
        assert!(b < a, "heavier task first within a class");
        let c = priority_key(TaskKind::Lexor, 0, 100);
        assert!(c < b, "higher class first regardless of weight");
    }

    #[test]
    fn retry_key_boosts_with_consumed_budget() {
        let fresh = priority_key(TaskKind::ShortCodeGen, 10, 50);
        // One consumed attempt with budget to spare: one rank up.
        let once = retry_priority_key(TaskKind::ShortCodeGen, 10, 51, 1, 3);
        assert!(once < fresh, "a retry outranks its own class");
        assert_eq!(once.0, TaskKind::ShortCodeGen.rank() - 1);
        // The final budgeted attempt jumps to the boost floor.
        let last = retry_priority_key(TaskKind::ShortCodeGen, 10, 52, 3, 3);
        assert_eq!(last.0, TaskKind::CacheSplice.rank() + 1);
        assert!(last < once);
        // The boost never overtakes structural tasks or cache splices.
        assert!(priority_key(TaskKind::CacheSplice, 0, 99) < last);
        assert!(priority_key(TaskKind::Lexor, 0, 99) < last);
        let deep = retry_priority_key(TaskKind::ProcParse, 0, 53, 30, 100);
        assert_eq!(deep.0, TaskKind::CacheSplice.rank() + 1, "boost clamps");
    }

    #[test]
    fn wait_set_intersection() {
        let ws = WaitSet {
            events: vec![EventId(1), EventId(2)],
            all_def_scopes: false,
            any_barrier: false,
        };
        assert!(ws.intersects(&[EventId(2)], false, false));
        assert!(!ws.intersects(&[EventId(3)], false, false));
        let all = WaitSet {
            events: vec![],
            all_def_scopes: true,
            any_barrier: false,
        };
        assert!(all.intersects(&[], true, false));
        assert!(!all.intersects(&[EventId(9)], false, false));
        let barrier = WaitSet {
            events: vec![],
            all_def_scopes: false,
            any_barrier: true,
        };
        assert!(barrier.intersects(&[], false, true));
        assert!(!barrier.intersects(&[], true, false));
    }
}
